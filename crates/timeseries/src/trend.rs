//! Trend classification and step-change anomaly detection.
//!
//! Two detectors run over a site's recent RMS window:
//!
//! * **Slope** — ordinary least-squares over the last `window` points,
//!   normalized by the window's mean level so "regressing" means the
//!   same thing at RMS 5 and RMS 500 (a fractional change per time
//!   step). This is the Fig 6 question: is the blocked count decaying
//!   after a fix, or climbing?
//! * **Z-score** — the newest point against the mean/stddev of the
//!   points before it. A step change (a deploy that introduces a leak)
//!   fires long before the regression slope crosses its threshold.
//!
//! Both are pure functions of the persisted points, so the offline
//! backtest reproduces the online verdicts exactly.

use serde::{Deserialize, Serialize};

/// Trend verdict for one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrendClass {
    /// Level is decaying (e.g. blocked goroutines draining post-fix).
    Improving,
    /// No significant slope either way.
    Flat,
    /// Level is growing — the leak signature.
    Regressing,
}

impl TrendClass {
    /// Lower-case label used in `/health` JSON, CSVs, and reports.
    pub fn label(&self) -> &'static str {
        match self {
            TrendClass::Improving => "improving",
            TrendClass::Flat => "flat",
            TrendClass::Regressing => "regressing",
        }
    }
}

impl std::fmt::Display for TrendClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Detector tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendConfig {
    /// Points considered (the newest `window` of the series).
    pub window: usize,
    /// Below this many points everything classifies as flat — slope
    /// over two or three points is noise, not a trend.
    pub min_points: usize,
    /// Relative slope (fraction of mean level per time step) at or
    /// above which the series is regressing.
    pub rel_slope_regress: f64,
    /// Relative slope at or below which it is improving (negative).
    pub rel_slope_improve: f64,
    /// |z| of the newest point vs the prior window that flags a step
    /// change.
    pub z_threshold: f64,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            window: 8,
            min_points: 4,
            rel_slope_regress: 0.04,
            rel_slope_improve: -0.04,
            z_threshold: 3.0,
        }
    }
}

/// The result of analyzing one series window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trend {
    /// The verdict.
    pub class: TrendClass,
    /// Absolute OLS slope (value units per time step).
    pub slope: f64,
    /// Slope normalized by the window's mean level.
    pub rel_slope: f64,
    /// Z-score of the newest point against the prior points.
    pub z: f64,
    /// True when `|z|` crossed the threshold (step change).
    pub anomaly: bool,
    /// Mean level of the window.
    pub mean: f64,
    /// Newest value.
    pub last: f64,
    /// Points actually analyzed.
    pub points: usize,
}

impl Trend {
    /// The trend of an empty series: flat, all zeros.
    pub fn empty() -> Trend {
        Trend {
            class: TrendClass::Flat,
            slope: 0.0,
            rel_slope: 0.0,
            z: 0.0,
            anomaly: false,
            mean: 0.0,
            last: 0.0,
            points: 0,
        }
    }
}

/// Analyzes the newest `config.window` of `points` (time-ordered
/// `(t, value)` pairs; earlier points are ignored).
pub fn analyze_trend(points: &[(u64, f64)], config: &TrendConfig) -> Trend {
    let skip = points.len().saturating_sub(config.window.max(2));
    let window = &points[skip..];
    if window.is_empty() {
        return Trend::empty();
    }
    let n = window.len();
    let last = window[n - 1].1;
    let mean = window.iter().map(|(_, v)| v).sum::<f64>() / n as f64;
    if n < config.min_points.max(2) {
        return Trend {
            class: TrendClass::Flat,
            slope: 0.0,
            rel_slope: 0.0,
            z: 0.0,
            anomaly: false,
            mean,
            last,
            points: n,
        };
    }

    // OLS slope over (t, v). Time gaps count: a series appended every
    // cycle regresses per cycle; one appended sparsely still measures
    // change per time unit.
    let t_mean = window.iter().map(|(t, _)| *t as f64).sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (t, v) in window {
        let dt = *t as f64 - t_mean;
        cov += dt * (v - mean);
        var += dt * dt;
    }
    let slope = if var > 0.0 { cov / var } else { 0.0 };
    // Normalize by level with a floor of 1.0 so near-zero series (a
    // site with RMS ~0) don't classify on microscopic absolute drift.
    let rel_slope = slope / mean.abs().max(1.0);

    // Z-score of the newest point against the points before it.
    let prior = &window[..n - 1];
    let p_mean = prior.iter().map(|(_, v)| v).sum::<f64>() / prior.len() as f64;
    let p_var = prior
        .iter()
        .map(|(_, v)| (v - p_mean) * (v - p_mean))
        .sum::<f64>()
        / prior.len() as f64;
    // Stddev floor: 5% of level or 1.0, whichever is larger, so a
    // perfectly-constant healthy series doesn't alarm on +1.
    let sigma = p_var.sqrt().max(p_mean.abs() * 0.05).max(1.0);
    let z = (last - p_mean) / sigma;
    let anomaly = z.abs() >= config.z_threshold;

    let class = if rel_slope >= config.rel_slope_regress {
        TrendClass::Regressing
    } else if rel_slope <= config.rel_slope_improve {
        TrendClass::Improving
    } else {
        TrendClass::Flat
    };
    Trend {
        class,
        slope,
        rel_slope,
        z,
        anomaly,
        mean,
        last,
        points: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f64]) -> Vec<(u64, f64)> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u64, *v))
            .collect()
    }

    #[test]
    fn flat_series_is_flat() {
        let t = analyze_trend(&series(&[50.0; 10]), &TrendConfig::default());
        assert_eq!(t.class, TrendClass::Flat);
        assert_eq!(t.slope, 0.0);
        assert!(!t.anomaly);
    }

    #[test]
    fn growth_is_regressing_and_decay_improving() {
        let growth: Vec<f64> = (0..10).map(|i| 100.0 + 10.0 * i as f64).collect();
        let t = analyze_trend(&series(&growth), &TrendConfig::default());
        assert_eq!(t.class, TrendClass::Regressing);
        assert!(t.slope > 9.0 && t.slope < 11.0);

        let decay: Vec<f64> = (0..10).map(|i| 200.0 - 10.0 * i as f64).collect();
        let t = analyze_trend(&series(&decay), &TrendConfig::default());
        assert_eq!(t.class, TrendClass::Improving);
    }

    #[test]
    fn step_change_fires_the_anomaly_before_the_slope() {
        // Seven flat points then a 4x step: the OLS window still mostly
        // sees the plateau, but z catches the jump immediately.
        let mut vals = vec![40.0; 7];
        vals.push(160.0);
        let t = analyze_trend(&series(&vals), &TrendConfig::default());
        assert!(t.anomaly, "z = {}", t.z);
        assert!(t.z > 3.0);
    }

    #[test]
    fn short_series_stay_flat() {
        let t = analyze_trend(&series(&[1.0, 100.0]), &TrendConfig::default());
        assert_eq!(t.class, TrendClass::Flat);
        assert_eq!(t.points, 2);
        assert_eq!(analyze_trend(&[], &TrendConfig::default()), Trend::empty());
    }

    #[test]
    fn constant_series_with_tiny_noise_does_not_alarm() {
        let vals = [50.0, 50.0, 51.0, 50.0, 49.0, 50.0, 50.0, 51.0];
        let t = analyze_trend(&series(&vals), &TrendConfig::default());
        assert_eq!(t.class, TrendClass::Flat);
        assert!(!t.anomaly, "z = {}", t.z);
    }

    #[test]
    fn window_limits_the_lookback() {
        // Old history grows steeply, the recent window is flat: only
        // the window matters.
        let mut vals: Vec<f64> = (0..20).map(|i| 10.0 * i as f64).collect();
        vals.extend([200.0; 8]);
        let t = analyze_trend(&series(&vals), &TrendConfig::default());
        assert_eq!(t.class, TrendClass::Flat);
    }
}
