//! Property tests for the flame trie's algebra.
//!
//! Flame tries are folded bottom-up across the fleet — per-instance
//! into per-shard into fleet-wide — so `merge` has to be commutative
//! and associative for the result to be independent of shard layout
//! and poll order (the same discipline `FleetAccumulator::merge`
//! guarantees for the ranking itself). The folded-stack text is the
//! interchange format, so serialize → parse must round-trip exactly.

use obs::FlameGraph;
use proptest::prelude::*;

/// Arbitrary stacks: short paths over a tiny label alphabet, so merges
/// collide on shared prefixes often (the interesting case).
fn stacks() -> impl Strategy<Value = Vec<(Vec<String>, u64)>> {
    let label = prop_oneof![
        Just("main.main".to_string()),
        Just("pay.Handle pay/h.go:10".to_string()),
        Just("geo.Lookup geo/l.go:7".to_string()),
        Just("runtime.chansend1".to_string()),
        Just("runtime.gopark".to_string()),
        "[a-z]{1,8}",
    ];
    proptest::collection::vec(
        (proptest::collection::vec(label, 1..6), 0u64..1_000_000),
        0..24,
    )
}

fn graph_from(stacks: &[(Vec<String>, u64)]) -> FlameGraph {
    let mut g = FlameGraph::new();
    for (path, w) in stacks {
        g.add(path, *w);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(a, b) == merge(b, a).
    #[test]
    fn merge_is_commutative(xs in stacks(), ys in stacks()) {
        let (a, b) = (graph_from(&xs), graph_from(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.to_folded(), ba.to_folded());
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)).
    #[test]
    fn merge_is_associative(xs in stacks(), ys in stacks(), zs in stacks()) {
        let (a, b, c) = (graph_from(&xs), graph_from(&ys), graph_from(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging equals adding the concatenated stacks directly, and the
    /// total is the sum of the weights.
    #[test]
    fn merge_matches_bulk_add(xs in stacks(), ys in stacks()) {
        let mut merged = graph_from(&xs);
        merged.merge(&graph_from(&ys));
        let mut all = xs.clone();
        all.extend(ys.iter().cloned());
        prop_assert_eq!(&merged, &graph_from(&all));
        let want: u64 = all.iter().map(|(_, w)| w).sum();
        prop_assert_eq!(merged.total(), want);
    }

    /// to_folded → from_folded reproduces the graph exactly (labels are
    /// sanitized on add, so every graph built through the public API is
    /// representable).
    #[test]
    fn folded_text_round_trips(xs in stacks()) {
        let g = graph_from(&xs);
        let folded = g.to_folded();
        let back = FlameGraph::from_folded(&folded).expect("own output parses");
        prop_assert_eq!(&back, &g);
        prop_assert_eq!(back.to_folded(), folded);
    }
}
