//! Property tests for the latency histogram's algebra.
//!
//! The tracer folds spans into per-stage histograms from several places
//! (per-cycle drains, dashboard merges across snapshots), so the
//! operations need to commute: `merge` must be associative and
//! commutative, and quantiles must be monotone in `q` so p50 ≤ p99 is a
//! structural guarantee rather than a coincidence of the data.

use obs::LatencyHistogram;
use proptest::prelude::*;

fn hist_from(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &us in samples {
        h.record_us(us);
    }
    h
}

fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..10_000_000, 0..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// merge(a, b) == merge(b, a).
    #[test]
    fn merge_is_commutative(xs in samples(), ys in samples()) {
        let (a, b) = (hist_from(&xs), hist_from(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)).
    #[test]
    fn merge_is_associative(xs in samples(), ys in samples(), zs in samples()) {
        let (a, b, c) = (hist_from(&xs), hist_from(&ys), hist_from(&zs));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging equals recording the concatenated samples directly.
    #[test]
    fn merge_matches_bulk_record(xs in samples(), ys in samples()) {
        let mut merged = hist_from(&xs);
        merged.merge(&hist_from(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        prop_assert_eq!(merged, hist_from(&all));
    }

    /// quantile_us is monotone non-decreasing in q.
    #[test]
    fn quantiles_are_monotone_in_q(
        xs in proptest::collection::vec(0u64..10_000_000, 1..64),
        qs in proptest::collection::vec(0u64..1_001, 2..8),
    ) {
        let h = hist_from(&xs);
        let mut qs = qs.clone();
        qs.sort_unstable();
        let mut prev = 0u64;
        for q in qs {
            let v = h.quantile_us(q as f64 / 1_000.0);
            prop_assert!(v >= prev, "quantile({q}/1000) = {v} < previous {prev}");
            prev = v;
        }
    }

    /// Every quantile of a non-empty histogram is bounded by twice the
    /// max (bucket upper bounds never overshoot a sample by more than
    /// one power of two) and count/mean stay consistent.
    #[test]
    fn quantiles_and_moments_bracket_samples(
        xs in proptest::collection::vec(1u64..10_000_000, 1..64)
    ) {
        let h = hist_from(&xs);
        let max = *xs.iter().max().expect("non-empty");
        let sum: u64 = xs.iter().sum();
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.max_us(), max);
        prop_assert_eq!(h.mean_us(), sum / xs.len() as u64);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = h.quantile_us(q);
            prop_assert!(v <= max.max(1) * 2, "quantile({q}) = {v} > 2*max {max}");
        }
        prop_assert!(h.p50_us() <= h.p99_us());
    }
}
