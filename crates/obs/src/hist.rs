//! The log2-bucketed latency histogram shared across the workspace:
//! scrape health counters, per-stage span summaries, and the `top`
//! dashboard all aggregate through it.
//!
//! This type used to live in `collector::stats`; it moved here so the
//! tracing layer can histogram stage latencies without a dependency
//! cycle (`collector` depends on `obs`, never the reverse).
//! `collector::stats` re-exports it, so existing imports keep working.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Number of log2 latency buckets (1 µs up to ~2^47 µs).
const BUCKETS: usize = 48;

/// A log2-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` µs; quantiles are
/// reported as the upper bound of the containing bucket, which is enough
/// resolution for scrape-health dashboards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.record_us(us);
    }

    /// Records one observation already expressed in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest recorded observation, in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Sum of all recorded observations, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Cumulative bucket counts in Prometheus histogram form:
    /// `(le_us, observations ≤ le_us)` for every bucket up to the
    /// highest non-empty one (bucket `i` has upper bound `2^(i+1)` µs).
    /// The implicit `+Inf` bucket equals [`LatencyHistogram::count`]
    /// and is left to the exposition layer to emit.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let Some(last) = self.buckets.iter().rposition(|&c| c > 0) else {
            return Vec::new();
        };
        let mut cum = 0;
        self.buckets[..=last]
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                cum += c;
                (1u64 << (i + 1), cum)
            })
            .collect()
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in `[0,1]`.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        self.max_us
    }

    /// Median latency upper bound in microseconds.
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th-percentile latency upper bound in microseconds.
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        // p50 falls in the 100 µs bucket [64,128): upper bound 128.
        assert_eq!(h.p50_us(), 128);
        // p99 still lands in the 100 µs bulk; the max reflects the spike.
        assert!(h.p99_us() <= 128);
        assert!(h.max_us() >= 50_000);
        assert!(h.quantile_us(1.0) >= 50_000 / 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max_us() >= 1000);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_cover_the_count() {
        let mut h = LatencyHistogram::new();
        assert!(h.cumulative_buckets().is_empty());
        for us in [1, 3, 100, 100, 5_000] {
            h.record_us(us);
        }
        let buckets = h.cumulative_buckets();
        // Highest observation 5000 µs lands in [4096, 8192): le 8192.
        assert_eq!(buckets.last().unwrap(), &(8192, h.count()));
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds ascend");
            assert!(w[0].1 <= w[1].1, "counts are cumulative");
        }
        assert_eq!(h.sum_us(), 1 + 3 + 100 + 100 + 5_000);
    }

    #[test]
    fn record_us_matches_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(777));
        b.record_us(777);
        assert_eq!(a, b);
    }
}
