//! Cross-process trace context: the W3C-`traceparent`-style header that
//! carries a trace across every HTTP hop in the fleet.
//!
//! A [`TraceContext`] names one distributed trace (a 128-bit trace id
//! rendered as 32 lowercase hex digits), the span on the sending side
//! that caused this request (the *parent* of whatever the receiver
//! records), and a sampling bit. The wire form is the `traceparent`
//! header's `00-<trace-id>-<parent-id>-<flags>` layout, so exported
//! traces interoperate with anything that already speaks it.
//!
//! Parsing is deliberately forgiving in exactly one way: any malformed
//! or missing header yields `None`, and the receiver mints a fresh root
//! trace. Propagation is an optimization, never a correctness
//! dependency — a daemon behind a header-mangling proxy still traces,
//! its spans just land in a local trace instead of the fleet-wide one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use gosim::rng::SplitMix64;

/// The HTTP header name trace context travels under (W3C Trace Context).
pub const TRACEPARENT: &str = "traceparent";

/// One hop's worth of distributed-trace identity: which trace this
/// process's spans belong to, and which remote span they hang under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id as 32 lowercase hex digits; never all zeros.
    pub trace_id: String,
    /// The sending side's span id for this hop (the receiver's remote
    /// parent); never zero on a well-formed header.
    pub parent_span: u64,
    /// Sampling decision: whether downstream should retain full detail.
    pub sampled: bool,
}

/// Process-wide uniqueness salt for minted ids: two contexts minted in
/// the same nanosecond still differ.
static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

fn mint_rng() -> SplitMix64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let salt = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id() as u64;
    SplitMix64::new(nanos ^ salt.rotate_left(32) ^ pid.rotate_left(17))
}

/// Mints a random non-zero span id, suitable as the hop id stamped on
/// an outgoing request. Hop ids are drawn from the full 64-bit space so
/// they are globally unique in practice — which is what lets stitching
/// match a client span to the server span it caused without any
/// cross-process id coordination.
pub fn mint_span_id() -> u64 {
    let mut rng = mint_rng();
    loop {
        let id = rng.next_u64();
        if id != 0 {
            return id;
        }
    }
}

impl TraceContext {
    /// Mints a fresh sampled root context with a random trace id.
    pub fn mint() -> TraceContext {
        let mut rng = mint_rng();
        let (mut hi, mut lo) = (rng.next_u64(), rng.next_u64());
        if hi == 0 && lo == 0 {
            hi = 1;
            lo = rng.next_u64();
        }
        TraceContext {
            trace_id: format!("{hi:016x}{lo:016x}"),
            parent_span: mint_span_id(),
            sampled: true,
        }
    }

    /// Parses a `traceparent` header value. Returns `None` — never an
    /// error — for anything malformed: wrong version, wrong field
    /// widths, non-hex digits, or the all-zero trace/span ids the spec
    /// forbids. Callers treat `None` as "start a fresh root".
    pub fn parse(header: &str) -> Option<TraceContext> {
        let mut parts = header.trim().split('-');
        let version = parts.next()?;
        let trace_id = parts.next()?;
        let parent = parts.next()?;
        let flags = parts.next()?;
        if parts.next().is_some() {
            return None;
        }
        // Version ff is forbidden; future versions may append fields,
        // but this parser only speaks 00's four-field layout.
        if version.len() != 2 || version != "00" {
            return None;
        }
        if trace_id.len() != 32 || !is_lower_hex(trace_id) || trace_id.bytes().all(|b| b == b'0') {
            return None;
        }
        if parent.len() != 16 || !is_lower_hex(parent) {
            return None;
        }
        let parent_span = u64::from_str_radix(parent, 16).ok()?;
        if parent_span == 0 {
            return None;
        }
        if flags.len() != 2 || !is_lower_hex(flags) {
            return None;
        }
        let flags = u8::from_str_radix(flags, 16).ok()?;
        Some(TraceContext {
            trace_id: trace_id.to_string(),
            parent_span,
            sampled: flags & 0x01 != 0,
        })
    }

    /// Renders the context as a `traceparent` header value.
    pub fn to_header(&self) -> String {
        format!(
            "00-{}-{:016x}-{}",
            self.trace_id,
            self.parent_span,
            if self.sampled { "01" } else { "00" }
        )
    }

    /// The same trace, re-parented under a different sending span —
    /// what each outgoing hop sends so the receiver hangs under *this*
    /// request, not whatever span minted the trace.
    pub fn with_parent(&self, parent_span: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id.clone(),
            parent_span,
            sampled: self.sampled,
        }
    }
}

fn is_lower_hex(s: &str) -> bool {
    s.bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let ctx = TraceContext::mint();
        assert_eq!(ctx.trace_id.len(), 32);
        assert_ne!(ctx.parent_span, 0);
        assert!(ctx.sampled);
        let parsed = TraceContext::parse(&ctx.to_header()).expect("own header must parse");
        assert_eq!(parsed, ctx);

        let unsampled = TraceContext {
            sampled: false,
            ..ctx.clone()
        };
        let parsed = TraceContext::parse(&unsampled.to_header()).unwrap();
        assert!(!parsed.sampled);
    }

    #[test]
    fn minted_contexts_are_distinct() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, b.trace_id, "two mints must not collide");
        assert_ne!(mint_span_id(), mint_span_id());
    }

    #[test]
    fn malformed_headers_parse_to_none_never_panic() {
        let good = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01";
        assert!(TraceContext::parse(good).is_some());
        for bad in [
            "",
            "garbage",
            "00",
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
            "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", // bad version
            "0-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
            "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01", // uppercase
            "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01",   // short trace id
            "00-00000000000000000000000000000000-b7ad6b7169203331-01", // zero trace id
            "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", // zero parent
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01",   // short parent
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-1",  // short flags
            "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz", // non-hex flags
            "00-0af7651916cd43dd8448eb211c80319x-b7ad6b7169203331-01", // non-hex trace
        ] {
            assert!(
                TraceContext::parse(bad).is_none(),
                "must reject {bad:?} without panicking"
            );
        }
    }

    #[test]
    fn with_parent_keeps_trace_identity() {
        let ctx = TraceContext::mint();
        let hop = ctx.with_parent(0xdead_beef);
        assert_eq!(hop.trace_id, ctx.trace_id);
        assert_eq!(hop.parent_span, 0xdead_beef);
        assert_eq!(hop.sampled, ctx.sampled);
    }
}
