//! Lightweight spans and the per-cycle [`Tracer`].
//!
//! A span is deliberately small: numeric id and parent id, a static
//! stage label, an optional target string, a monotonic start offset and
//! a µs duration, plus a handful of string attributes. Spans are
//! recorded by dropping a [`SpanGuard`], which pushes the finished span
//! into the tracer's lock-free [`Ring`] — the hot path takes no locks.
//!
//! Once per cycle the daemon driver calls [`Tracer::finish_cycle`],
//! which drains the ring into a [`CycleTrace`] (retained for the last
//! `keep_cycles` cycles) and folds every span's duration into that
//! stage's [`LatencyHistogram`]. `/trace` serves the retained cycle
//! traces; `/status` and `leakprofd top` read the stage summaries.

use crate::context::{mint_span_id, TraceContext};
use crate::hist::LatencyHistogram;
use crate::ring::Ring;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Canonical stage labels used across the daemon pipeline. Using shared
/// constants keeps `/trace` output, histograms, and the dashboard
/// agreeing on names.
pub mod stage {
    /// Root span covering one whole daemon cycle.
    pub const CYCLE: &str = "cycle";
    /// The fleet-wide scrape fan-out (all targets).
    pub const SCRAPE: &str = "scrape";
    /// One target's fetch+parse attempt (child of `scrape`).
    pub const TARGET: &str = "target";
    /// Appending the cycle's report to the write-ahead log.
    pub const WAL_APPEND: &str = "wal_append";
    /// Folding scraped profiles into the fleet accumulator.
    pub const INGEST: &str = "ingest";
    /// Static-analysis tier sync (parse-once cache refresh).
    pub const STATIC_SYNC: &str = "static_sync";
    /// Ranking suspects from the accumulator.
    pub const ANALYZE: &str = "analyze";
    /// Applying the ranked report to the dedup ledger.
    pub const LEDGER: &str = "ledger";
    /// Appending per-site counts to the trend history.
    pub const HISTORY: &str = "history";
    /// Committing a durable snapshot to disk.
    pub const SNAPSHOT: &str = "snapshot";
    /// Appending the cycle's telemetry points to the time-series store.
    pub const TS_APPEND: &str = "ts_append";
    /// Trend classification + adaptive-interval decision.
    pub const TREND: &str = "trend";
    /// Root span covering one fleet-aggregator poll cycle over all
    /// shard daemons.
    pub const FLEET: &str = "fleet";
    /// Folding per-shard state (accumulators, ledgers, ts stores) into
    /// the fleet-wide view.
    pub const MERGE: &str = "merge";
    /// Draining the push-ingest tier's coalesced profiles at cycle end
    /// (child of `cycle`; carries admission-counter attrs).
    pub const PUSH: &str = "push";
    /// Serving one inbound HTTP request that carried a remote trace
    /// context (the receiver side of a cross-process hop).
    pub const SERVE: &str = "serve";
    /// A pusher's backoff/Retry-After sleep between shed attempts.
    pub const BACKOFF: &str = "backoff";

    /// Every pipeline stage, in pipeline order. Used by the dashboard
    /// so rows render in execution order rather than alphabetically.
    pub const ALL: [&str; 17] = [
        CYCLE,
        SCRAPE,
        TARGET,
        PUSH,
        BACKOFF,
        SERVE,
        WAL_APPEND,
        INGEST,
        STATIC_SYNC,
        ANALYZE,
        LEDGER,
        HISTORY,
        TS_APPEND,
        TREND,
        SNAPSHOT,
        FLEET,
        MERGE,
    ];
}

/// One finished span.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Span {
    /// Unique (per tracer) span id; ids start at 1 (0 means "no parent").
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Stage label, normally one of the [`stage`] constants.
    pub stage: String,
    /// What the span operated on (instance id, path, ...); empty when
    /// the stage label says it all.
    pub target: String,
    /// Start offset in µs since the tracer was created (monotonic).
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Free-form key/value attributes (attempt counts, byte sizes, ...).
    pub attrs: Vec<(String, String)>,
    /// The distributed trace id (32 hex digits) this span is pinned to.
    /// `None` for purely local spans, which inherit their trace through
    /// the parent chain at stitch time. Cross-process spans — cycle
    /// roots, serve spans, client-side hop spans — carry it explicitly
    /// so tail-sampling can always keep the cross-process skeleton.
    pub trace: Option<String>,
    /// For a serve span: the remote (sender-side) hop id this span
    /// hangs under. Stitching draws the flow arrow from the client span
    /// carrying the matching `hop` attribute to this span.
    pub remote_parent: Option<u64>,
}

/// All spans recorded during one daemon cycle.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct CycleTrace {
    /// The daemon cycle number these spans belong to.
    pub cycle: u64,
    /// Spans in ring (i.e. completion) order; the root `cycle` span
    /// finishes last.
    pub spans: Vec<Span>,
}

/// Aggregate latency numbers for one stage, across all retained cycles.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage label.
    pub stage: String,
    /// Number of spans folded in.
    pub count: u64,
    /// Median duration upper bound, µs.
    pub p50_us: u64,
    /// 99th-percentile duration upper bound, µs.
    pub p99_us: u64,
    /// Largest observed duration, µs.
    pub max_us: u64,
    /// Mean duration, µs.
    pub mean_us: u64,
}

/// What `/trace` serves: retained cycle traces plus aggregate stage
/// summaries and recording counters.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The most recent cycles' span trees, oldest first.
    pub cycles: Vec<CycleTrace>,
    /// Per-stage latency summaries since daemon start.
    pub stages: Vec<StageSummary>,
    /// Total spans recorded since daemon start.
    pub spans_recorded: u64,
    /// Spans dropped because the ring was full.
    pub spans_dropped: u64,
    /// Who recorded these spans (e.g. `leakprofd shard 0/3`); stitched
    /// exports use it as the Perfetto process name.
    pub service: String,
    /// The recording process's crate version.
    pub version: String,
    /// Wall-clock µs since the Unix epoch when this tracer was created;
    /// stitching aligns per-process monotonic offsets through it.
    pub epoch_unix_us: u64,
}

/// Tracer configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch; a disabled tracer is a no-op (spans cost one
    /// branch and no allocation).
    pub enabled: bool,
    /// Ring capacity in spans (rounded up to a power of two). Must
    /// exceed the span count of one cycle or spans will be dropped and
    /// counted.
    pub ring_capacity: usize,
    /// How many finished cycle traces `/trace` retains.
    pub keep_cycles: usize,
    /// Tail-sampling: when on, full span detail is retained only for
    /// cycles that were flagged (errors/sheds) or slow relative to the
    /// running mean; other cycles keep just the cross-process skeleton
    /// (spans carrying a trace id). Stage histograms always fold every
    /// span either way.
    pub tail_sample: bool,
    /// A cycle is "slow" when its root duration exceeds this multiple
    /// of the running mean cycle duration.
    pub tail_slow_factor: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: 4096,
            keep_cycles: 8,
            tail_sample: false,
            tail_slow_factor: 2.0,
        }
    }
}

struct TracerInner {
    epoch: Instant,
    epoch_unix_us: u64,
    ring: Ring<Span>,
    next_id: AtomicU64,
    /// Ambient parent id used when a span is started without an explicit
    /// parent. Set by the driver around the cycle root; worker threads
    /// starting `target` spans pass parents explicitly.
    ambient: AtomicU64,
    recorded: AtomicU64,
    retained: Mutex<Retained>,
    keep_cycles: usize,
    tail_sample: bool,
    tail_slow_factor: f64,
    /// Process identity stamped into snapshots: (service, version).
    identity: Mutex<(String, String)>,
    /// The distributed trace context the in-progress (or most recent)
    /// cycle runs under.
    current: Mutex<Option<TraceContext>>,
    /// A remote context adopted mid-cycle; consumed by the next
    /// [`Tracer::begin_cycle`], so the next cycle parents under it.
    pending: Mutex<Option<TraceContext>>,
}

struct Retained {
    cycles: VecDeque<CycleTrace>,
    stages: BTreeMap<String, LatencyHistogram>,
    /// Running mean state for the tail-sampling slowness test.
    cycle_count: u64,
    cycle_dur_sum_us: u64,
    /// Recent (cycle, root duration, trace id) triples backing the
    /// worst-cycle exemplar.
    recent_roots: VecDeque<WorstCycle>,
}

/// The slowest recent cycle and the distributed trace that explains it
/// — the exemplar `/metrics` and report pages link to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorstCycle {
    /// Cycle number.
    pub cycle: u64,
    /// Root span duration, µs.
    pub dur_us: u64,
    /// Distributed trace id active during that cycle.
    pub trace_id: String,
}

/// How many recent cycles the worst-cycle exemplar is chosen over.
const WORST_WINDOW: usize = 32;

/// Records spans for the daemon pipeline. Cheap to clone (an `Arc`
/// internally); a tracer built with [`Tracer::disabled`] makes every
/// operation a no-op so instrumented code needs no `if` guards.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Default for Tracer {
    /// The default tracer is disabled: instrumented types can embed one
    /// unconditionally and stay zero-cost until a real tracer is set.
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// Builds a tracer from `cfg`; `cfg.enabled == false` yields the
    /// no-op tracer.
    pub fn new(cfg: &TraceConfig) -> Tracer {
        if !cfg.enabled {
            return Tracer::disabled();
        }
        let epoch_unix_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                epoch_unix_us,
                ring: Ring::new(cfg.ring_capacity),
                next_id: AtomicU64::new(1),
                ambient: AtomicU64::new(0),
                recorded: AtomicU64::new(0),
                retained: Mutex::new(Retained {
                    cycles: VecDeque::new(),
                    stages: BTreeMap::new(),
                    cycle_count: 0,
                    cycle_dur_sum_us: 0,
                    recent_roots: VecDeque::new(),
                }),
                keep_cycles: cfg.keep_cycles.max(1),
                tail_sample: cfg.tail_sample,
                tail_slow_factor: cfg.tail_slow_factor,
                identity: Mutex::new(("leakprofd".to_string(), String::new())),
                current: Mutex::new(None),
                pending: Mutex::new(None),
            })),
        }
    }

    /// The no-op tracer: every span is free, every query returns empty.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether spans are actually recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a span under the current ambient parent (see
    /// [`Tracer::set_ambient`]).
    pub fn start(&self, stage: &str, target: &str) -> SpanGuard {
        let parent = self
            .inner
            .as_ref()
            .map(|i| i.ambient.load(Ordering::Relaxed))
            .unwrap_or(0);
        self.start_with(stage, target, parent)
    }

    /// Starts a span with an explicit parent id (0 = root). Use this
    /// from worker threads, where the ambient parent would race.
    pub fn start_with(&self, stage: &str, target: &str, parent: u64) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { state: None },
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                // Root spans carry the cycle's distributed trace id so
                // tail-sampling and stitching always see them; children
                // inherit it through the parent chain.
                let trace = if parent == 0 {
                    inner
                        .current
                        .lock()
                        .expect("trace ctx poisoned")
                        .as_ref()
                        .map(|c| c.trace_id.clone())
                } else {
                    None
                };
                SpanGuard {
                    state: Some(GuardState {
                        tracer: Arc::clone(inner),
                        span: Span {
                            id,
                            parent,
                            stage: stage.to_string(),
                            target: target.to_string(),
                            start_us: inner.epoch.elapsed().as_micros() as u64,
                            dur_us: 0,
                            attrs: Vec::new(),
                            trace,
                            remote_parent: None,
                        },
                        started: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Starts a root span parented under a *remote* trace context — the
    /// receiving side of a cross-process hop. The span is pinned to the
    /// remote trace id and records the sender's hop id so stitching can
    /// draw the flow arrow.
    pub fn start_remote(&self, stage: &str, target: &str, ctx: &TraceContext) -> SpanGuard {
        let mut guard = self.start_with(stage, target, 0);
        if let Some(s) = &mut guard.state {
            s.span.trace = Some(ctx.trace_id.clone());
            s.span.remote_parent = Some(ctx.parent_span);
        }
        guard
    }

    /// Names this tracer's process in snapshots (service + version).
    /// Stitched Chrome exports render it as the process name, so shard
    /// identity belongs in `service`.
    pub fn set_service(&self, service: &str, version: &str) {
        if let Some(inner) = &self.inner {
            *inner.identity.lock().expect("identity poisoned") =
                (service.to_string(), version.to_string());
        }
    }

    /// Adopts a remote trace context: the *next* [`Tracer::begin_cycle`]
    /// joins that trace instead of minting a fresh root. A daemon calls
    /// this when the fleet aggregator's poll arrives, so its following
    /// cycle nests under the fleet trace.
    pub fn adopt_remote(&self, ctx: &TraceContext) {
        if let Some(inner) = &self.inner {
            *inner.pending.lock().expect("pending ctx poisoned") = Some(ctx.clone());
        }
    }

    /// Opens the distributed trace context for a new cycle: the pending
    /// adopted context if a remote hop arrived since the last cycle,
    /// otherwise a freshly minted root. Returns the context (None on a
    /// disabled tracer). Root spans started afterwards carry its trace
    /// id.
    pub fn begin_cycle(&self) -> Option<TraceContext> {
        let inner = self.inner.as_ref()?;
        let ctx = inner
            .pending
            .lock()
            .expect("pending ctx poisoned")
            .take()
            .unwrap_or_else(TraceContext::mint);
        *inner.current.lock().expect("trace ctx poisoned") = Some(ctx.clone());
        Some(ctx)
    }

    /// The distributed trace context of the in-progress (or most
    /// recent) cycle.
    pub fn current_context(&self) -> Option<TraceContext> {
        self.inner
            .as_ref()?
            .current
            .lock()
            .expect("trace ctx poisoned")
            .clone()
    }

    /// The trace id of the in-progress (or most recent) cycle.
    pub fn current_trace_id(&self) -> Option<String> {
        self.current_context().map(|c| c.trace_id)
    }

    /// Prepares an outgoing cross-process hop under `guard`: mints a
    /// hop id, stamps it (and the trace id) onto the guard so stitching
    /// can start the flow arrow here, and returns the context to send
    /// as the request's `traceparent` header. `None` when disabled or
    /// when no cycle context is open — then send no header.
    pub fn hop(&self, guard: &mut SpanGuard) -> Option<TraceContext> {
        let ctx = self.current_context()?;
        let hop_id = mint_span_id();
        if let Some(s) = &mut guard.state {
            s.span.trace = Some(ctx.trace_id.clone());
            s.span
                .attrs
                .push(("hop".to_string(), format!("{hop_id:016x}")));
        }
        Some(ctx.with_parent(hop_id))
    }

    /// Sets the ambient parent id for spans started with [`Tracer::start`].
    /// The driver sets this to the cycle root's id at the top of a cycle
    /// and clears it (0) when the cycle ends.
    pub fn set_ambient(&self, parent: u64) {
        if let Some(inner) = &self.inner {
            inner.ambient.store(parent, Ordering::Relaxed);
        }
    }

    /// Drains all spans recorded since the last call into a
    /// [`CycleTrace`] tagged `cycle`, retains it, and folds durations
    /// into the per-stage histograms. Call this *after* dropping the
    /// cycle root guard, or the root span lands in the next cycle.
    /// Equivalent to [`Tracer::finish_cycle_flagged`] with `flagged =
    /// false`.
    pub fn finish_cycle(&self, cycle: u64) {
        self.finish_cycle_flagged(cycle, false);
    }

    /// [`Tracer::finish_cycle`] with an explicit interestingness flag
    /// for tail-sampling. Histograms always fold every span. With
    /// `tail_sample` on, full span detail is retained only when the
    /// cycle was `flagged` (errors, sheds) or slow (root duration >
    /// `tail_slow_factor` × the running mean); otherwise only the
    /// cross-process skeleton — spans carrying a trace id — survives,
    /// so stitched fleet traces stay whole under sampling.
    pub fn finish_cycle_flagged(&self, cycle: u64, flagged: bool) {
        let Some(inner) = &self.inner else { return };
        let mut spans = Vec::new();
        while let Some(s) = inner.ring.pop() {
            spans.push(s);
        }
        let root_dur_us = spans
            .iter()
            .filter(|s| s.parent == 0)
            .map(|s| s.dur_us)
            .max()
            .unwrap_or(0);
        let trace_id = self.current_trace_id();
        let mut retained = inner.retained.lock().unwrap();
        for s in &spans {
            retained
                .stages
                .entry(s.stage.clone())
                .or_default()
                .record_us(s.dur_us);
        }
        let mean_us = if retained.cycle_count > 0 {
            retained.cycle_dur_sum_us as f64 / retained.cycle_count as f64
        } else {
            0.0
        };
        retained.cycle_count += 1;
        retained.cycle_dur_sum_us += root_dur_us;
        if let Some(trace_id) = trace_id {
            retained.recent_roots.push_back(WorstCycle {
                cycle,
                dur_us: root_dur_us,
                trace_id,
            });
            while retained.recent_roots.len() > WORST_WINDOW {
                retained.recent_roots.pop_front();
            }
        }
        let slow = root_dur_us as f64 > inner.tail_slow_factor * mean_us;
        let keep_full = !inner.tail_sample || flagged || slow;
        let spans = if keep_full {
            spans
        } else {
            spans.into_iter().filter(|s| s.trace.is_some()).collect()
        };
        retained.cycles.push_back(CycleTrace { cycle, spans });
        while retained.cycles.len() > inner.keep_cycles {
            retained.cycles.pop_front();
        }
    }

    /// The slowest cycle in the recent window, with the trace id that
    /// explains it — the exemplar surfaced in `/metrics` and reports.
    pub fn worst_cycle(&self) -> Option<WorstCycle> {
        let inner = self.inner.as_ref()?;
        let retained = inner.retained.lock().unwrap();
        retained
            .recent_roots
            .iter()
            .max_by_key(|w| w.dur_us)
            .cloned()
    }

    /// A copy of everything `/trace` serves.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot {
                cycles: Vec::new(),
                stages: Vec::new(),
                spans_recorded: 0,
                spans_dropped: 0,
                service: String::new(),
                version: String::new(),
                epoch_unix_us: 0,
            },
            Some(inner) => {
                let (service, version) = inner.identity.lock().expect("identity poisoned").clone();
                let retained = inner.retained.lock().unwrap();
                TraceSnapshot {
                    cycles: retained.cycles.iter().cloned().collect(),
                    stages: summarize(&retained.stages),
                    spans_recorded: inner.recorded.load(Ordering::Relaxed),
                    spans_dropped: inner.ring.dropped(),
                    service,
                    version,
                    epoch_unix_us: inner.epoch_unix_us,
                }
            }
        }
    }

    /// Per-stage latency summaries since daemon start.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => summarize(&inner.retained.lock().unwrap().stages),
        }
    }

    /// Per-stage latency histograms since daemon start (stage →
    /// histogram), for layers that need the raw log2 buckets rather
    /// than [`StageSummary`] quantiles — Prometheus `_bucket` lines and
    /// the daemon's self-flame both feed from here.
    pub fn stage_histograms(&self) -> Vec<(String, LatencyHistogram)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .retained
                .lock()
                .unwrap()
                .stages
                .iter()
                .map(|(stage, h)| (stage.clone(), h.clone()))
                .collect(),
        }
    }

    /// Total spans recorded since daemon start.
    pub fn spans_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.recorded.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Spans dropped because the ring was full.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.ring.dropped()).unwrap_or(0)
    }
}

fn summarize(stages: &BTreeMap<String, LatencyHistogram>) -> Vec<StageSummary> {
    stages
        .iter()
        .map(|(stage, h)| StageSummary {
            stage: stage.clone(),
            count: h.count(),
            p50_us: h.p50_us(),
            p99_us: h.p99_us(),
            max_us: h.max_us(),
            mean_us: h.mean_us(),
        })
        .collect()
}

struct GuardState {
    tracer: Arc<TracerInner>,
    span: Span,
    started: Instant,
}

/// An in-flight span; records itself into the tracer's ring on drop.
#[must_use = "a span measures the scope it lives in; dropping it immediately records a zero-length span"]
pub struct SpanGuard {
    state: Option<GuardState>,
}

impl SpanGuard {
    /// This span's id, for use as an explicit parent of child spans
    /// started on other threads. Returns 0 for a no-op guard.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map(|s| s.span.id).unwrap_or(0)
    }

    /// Attaches a key/value attribute.
    pub fn attr(&mut self, key: &str, value: impl ToString) {
        if let Some(s) = &mut self.state {
            s.span.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Finishes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut s) = self.state.take() {
            s.span.dur_us = s.started.elapsed().as_micros() as u64;
            if s.tracer.ring.push(s.span) {
                s.tracer.recorded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_noop() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut g = t.start(stage::CYCLE, "");
        g.attr("k", "v");
        assert_eq!(g.id(), 0);
        drop(g);
        t.finish_cycle(1);
        let snap = t.snapshot();
        assert!(snap.cycles.is_empty());
        assert_eq!(snap.spans_recorded, 0);
    }

    #[test]
    fn spans_form_a_tree_and_fold_into_stage_histograms() {
        let t = Tracer::new(&TraceConfig::default());
        let root = t.start(stage::CYCLE, "");
        let root_id = root.id();
        t.set_ambient(root_id);
        {
            let scrape = t.start(stage::SCRAPE, "");
            assert_eq!(scrape.span_parent(), root_id);
            let tgt = t.start_with(stage::TARGET, "svc-a", scrape.id());
            assert_eq!(tgt.span_parent(), scrape.id());
            drop(tgt);
            drop(scrape);
        }
        t.set_ambient(0);
        drop(root);
        t.finish_cycle(7);

        let snap = t.snapshot();
        assert_eq!(snap.cycles.len(), 1);
        assert_eq!(snap.cycles[0].cycle, 7);
        assert_eq!(snap.cycles[0].spans.len(), 3);
        // Root finishes last (ring order is completion order).
        assert_eq!(snap.cycles[0].spans[2].stage, stage::CYCLE);
        assert_eq!(snap.cycles[0].spans[2].parent, 0);
        assert_eq!(snap.spans_recorded, 3);
        assert_eq!(snap.spans_dropped, 0);

        let stages: Vec<&str> = snap.stages.iter().map(|s| s.stage.as_str()).collect();
        assert!(stages.contains(&stage::CYCLE));
        assert!(stages.contains(&stage::SCRAPE));
        assert!(stages.contains(&stage::TARGET));
    }

    #[test]
    fn keep_cycles_bounds_retention() {
        let cfg = TraceConfig {
            keep_cycles: 2,
            ..TraceConfig::default()
        };
        let t = Tracer::new(&cfg);
        for c in 0..5 {
            t.start(stage::CYCLE, "").finish();
            t.finish_cycle(c);
        }
        let snap = t.snapshot();
        assert_eq!(snap.cycles.len(), 2);
        assert_eq!(snap.cycles[0].cycle, 3);
        assert_eq!(snap.cycles[1].cycle, 4);
        // Histograms keep accumulating past retention.
        let cycle_stage = snap
            .stages
            .iter()
            .find(|s| s.stage == stage::CYCLE)
            .unwrap();
        assert_eq!(cycle_stage.count, 5);
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let cfg = TraceConfig {
            ring_capacity: 4,
            ..TraceConfig::default()
        };
        let t = Tracer::new(&cfg);
        for _ in 0..10 {
            t.start(stage::TARGET, "x").finish();
        }
        t.finish_cycle(1);
        let snap = t.snapshot();
        assert_eq!(snap.spans_recorded, 4);
        assert_eq!(snap.spans_dropped, 6);
        assert_eq!(snap.cycles[0].spans.len(), 4);
    }

    #[test]
    fn attrs_survive_into_the_trace() {
        let t = Tracer::new(&TraceConfig::default());
        let mut g = t.start(stage::TARGET, "svc-b");
        g.attr("attempts", 2);
        g.attr("bytes", 512);
        drop(g);
        t.finish_cycle(1);
        let snap = t.snapshot();
        let span = &snap.cycles[0].spans[0];
        assert_eq!(span.target, "svc-b");
        assert_eq!(
            span.attrs,
            vec![
                ("attempts".to_string(), "2".to_string()),
                ("bytes".to_string(), "512".to_string())
            ]
        );
    }

    impl SpanGuard {
        fn span_parent(&self) -> u64 {
            self.state.as_ref().map(|s| s.span.parent).unwrap_or(0)
        }
    }

    #[test]
    fn begin_cycle_mints_then_adopts_remote_context() {
        let t = Tracer::new(&TraceConfig::default());
        let minted = t.begin_cycle().expect("enabled tracer yields a context");
        assert_eq!(
            t.current_trace_id().as_deref(),
            Some(minted.trace_id.as_str())
        );

        // A root span opened under the cycle carries its trace id.
        let root = t.start(stage::CYCLE, "");
        drop(root);
        t.finish_cycle(1);
        let snap = t.snapshot();
        assert_eq!(
            snap.cycles[0].spans[0].trace.as_deref(),
            Some(minted.trace_id.as_str())
        );

        // Adopting a remote context re-parents the *next* cycle.
        let remote = TraceContext::mint();
        t.adopt_remote(&remote);
        let joined = t.begin_cycle().unwrap();
        assert_eq!(joined.trace_id, remote.trace_id);
        // And with nothing pending the cycle after mints fresh again.
        let fresh = t.begin_cycle().unwrap();
        assert_ne!(fresh.trace_id, remote.trace_id);
    }

    #[test]
    fn serve_span_records_remote_parent_and_hop_stamps_the_client_span() {
        let t = Tracer::new(&TraceConfig::default());
        let ctx = t.begin_cycle().unwrap();
        let mut client = t.start(stage::TARGET, "peer-0");
        let hop_ctx = t.hop(&mut client).expect("open cycle yields a hop");
        assert_eq!(hop_ctx.trace_id, ctx.trace_id);
        assert_ne!(hop_ctx.parent_span, 0);
        drop(client);

        // The receiver parents its serve span under the hop context.
        let server = Tracer::new(&TraceConfig::default());
        let g = server.start_remote(stage::SERVE, "/api/snapshot", &hop_ctx);
        drop(g);
        server.finish_cycle(1);
        t.finish_cycle(1);

        let client_span = &t.snapshot().cycles[0].spans[0];
        assert_eq!(client_span.trace.as_deref(), Some(ctx.trace_id.as_str()));
        let hop_hex = client_span
            .attrs
            .iter()
            .find(|(k, _)| k == "hop")
            .map(|(_, v)| v.clone())
            .expect("hop attr stamped");
        assert_eq!(hop_hex, format!("{:016x}", hop_ctx.parent_span));

        let serve_span = &server.snapshot().cycles[0].spans[0];
        assert_eq!(serve_span.parent, 0);
        assert_eq!(serve_span.trace.as_deref(), Some(ctx.trace_id.as_str()));
        assert_eq!(serve_span.remote_parent, Some(hop_ctx.parent_span));

        // A disabled tracer (or no open cycle) yields no hop at all.
        let idle = Tracer::new(&TraceConfig::default());
        let mut g = idle.start(stage::TARGET, "x");
        assert!(idle.hop(&mut g).is_none());
        g.finish();
    }

    #[test]
    fn tail_sampling_keeps_flagged_slow_and_skeleton_spans() {
        let cfg = TraceConfig {
            tail_sample: true,
            tail_slow_factor: 1_000_000.0, // nothing is "slow" in a unit test
            ..TraceConfig::default()
        };
        let t = Tracer::new(&cfg);

        // Cycle 1: mean is still 0, so the first cycle counts as slow
        // and keeps full detail (the sleep guarantees a nonzero root
        // duration — a 0µs root would not beat the 0 mean).
        t.begin_cycle();
        let root = t.start(stage::CYCLE, "");
        let child = t.start_with(stage::SCRAPE, "", root.id());
        drop(child);
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(root);
        t.finish_cycle(1);

        // Cycle 2: quiet — only the skeleton (trace-carrying root)
        // survives, but histograms still folded the child.
        t.begin_cycle();
        let root = t.start(stage::CYCLE, "");
        let child = t.start_with(stage::SCRAPE, "", root.id());
        drop(child);
        drop(root);
        t.finish_cycle(2);

        // Cycle 3: flagged — full detail again.
        t.begin_cycle();
        let root = t.start(stage::CYCLE, "");
        let child = t.start_with(stage::SCRAPE, "", root.id());
        drop(child);
        drop(root);
        t.finish_cycle_flagged(3, true);

        let snap = t.snapshot();
        assert_eq!(snap.cycles[0].spans.len(), 2, "first cycle keeps detail");
        let sampled = &snap.cycles[1];
        assert_eq!(
            sampled.spans.len(),
            1,
            "quiet cycle keeps only the skeleton"
        );
        assert_eq!(sampled.spans[0].stage, stage::CYCLE);
        assert!(sampled.spans[0].trace.is_some());
        assert_eq!(snap.cycles[2].spans.len(), 2, "flagged cycle keeps detail");
        let scrape = snap
            .stages
            .iter()
            .find(|s| s.stage == stage::SCRAPE)
            .unwrap();
        assert_eq!(scrape.count, 3, "histograms fold sampled-away spans too");
    }

    #[test]
    fn worst_cycle_exemplar_tracks_the_slowest_recent_root() {
        let t = Tracer::new(&TraceConfig::default());
        assert!(t.worst_cycle().is_none());
        let mut worst_trace = String::new();
        for cycle in 1..=3u64 {
            let ctx = t.begin_cycle().unwrap();
            let root = t.start(stage::CYCLE, "");
            if cycle == 2 {
                worst_trace = ctx.trace_id.clone();
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            drop(root);
            t.finish_cycle(cycle);
        }
        let worst = t.worst_cycle().expect("cycles ran");
        assert_eq!(worst.cycle, 2);
        assert_eq!(worst.trace_id, worst_trace);
        assert!(worst.dur_us >= 5_000);
    }

    #[test]
    fn snapshot_carries_service_identity() {
        let t = Tracer::new(&TraceConfig::default());
        t.set_service("leakprofd shard 1/3", "1.2.3");
        let snap = t.snapshot();
        assert_eq!(snap.service, "leakprofd shard 1/3");
        assert_eq!(snap.version, "1.2.3");
        assert!(snap.epoch_unix_us > 0);
        let disabled = Tracer::disabled().snapshot();
        assert_eq!(disabled.epoch_unix_us, 0);
    }
}
