//! Lightweight spans and the per-cycle [`Tracer`].
//!
//! A span is deliberately small: numeric id and parent id, a static
//! stage label, an optional target string, a monotonic start offset and
//! a µs duration, plus a handful of string attributes. Spans are
//! recorded by dropping a [`SpanGuard`], which pushes the finished span
//! into the tracer's lock-free [`Ring`] — the hot path takes no locks.
//!
//! Once per cycle the daemon driver calls [`Tracer::finish_cycle`],
//! which drains the ring into a [`CycleTrace`] (retained for the last
//! `keep_cycles` cycles) and folds every span's duration into that
//! stage's [`LatencyHistogram`]. `/trace` serves the retained cycle
//! traces; `/status` and `leakprofd top` read the stage summaries.

use crate::hist::LatencyHistogram;
use crate::ring::Ring;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Canonical stage labels used across the daemon pipeline. Using shared
/// constants keeps `/trace` output, histograms, and the dashboard
/// agreeing on names.
pub mod stage {
    /// Root span covering one whole daemon cycle.
    pub const CYCLE: &str = "cycle";
    /// The fleet-wide scrape fan-out (all targets).
    pub const SCRAPE: &str = "scrape";
    /// One target's fetch+parse attempt (child of `scrape`).
    pub const TARGET: &str = "target";
    /// Appending the cycle's report to the write-ahead log.
    pub const WAL_APPEND: &str = "wal_append";
    /// Folding scraped profiles into the fleet accumulator.
    pub const INGEST: &str = "ingest";
    /// Static-analysis tier sync (parse-once cache refresh).
    pub const STATIC_SYNC: &str = "static_sync";
    /// Ranking suspects from the accumulator.
    pub const ANALYZE: &str = "analyze";
    /// Applying the ranked report to the dedup ledger.
    pub const LEDGER: &str = "ledger";
    /// Appending per-site counts to the trend history.
    pub const HISTORY: &str = "history";
    /// Committing a durable snapshot to disk.
    pub const SNAPSHOT: &str = "snapshot";
    /// Appending the cycle's telemetry points to the time-series store.
    pub const TS_APPEND: &str = "ts_append";
    /// Trend classification + adaptive-interval decision.
    pub const TREND: &str = "trend";
    /// Root span covering one fleet-aggregator poll cycle over all
    /// shard daemons.
    pub const FLEET: &str = "fleet";
    /// Folding per-shard state (accumulators, ledgers, ts stores) into
    /// the fleet-wide view.
    pub const MERGE: &str = "merge";
    /// Draining the push-ingest tier's coalesced profiles at cycle end
    /// (child of `cycle`; carries admission-counter attrs).
    pub const PUSH: &str = "push";

    /// Every pipeline stage, in pipeline order. Used by the dashboard
    /// so rows render in execution order rather than alphabetically.
    pub const ALL: [&str; 15] = [
        CYCLE,
        SCRAPE,
        TARGET,
        PUSH,
        WAL_APPEND,
        INGEST,
        STATIC_SYNC,
        ANALYZE,
        LEDGER,
        HISTORY,
        TS_APPEND,
        TREND,
        SNAPSHOT,
        FLEET,
        MERGE,
    ];
}

/// One finished span.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Span {
    /// Unique (per tracer) span id; ids start at 1 (0 means "no parent").
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Stage label, normally one of the [`stage`] constants.
    pub stage: String,
    /// What the span operated on (instance id, path, ...); empty when
    /// the stage label says it all.
    pub target: String,
    /// Start offset in µs since the tracer was created (monotonic).
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Free-form key/value attributes (attempt counts, byte sizes, ...).
    pub attrs: Vec<(String, String)>,
}

/// All spans recorded during one daemon cycle.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct CycleTrace {
    /// The daemon cycle number these spans belong to.
    pub cycle: u64,
    /// Spans in ring (i.e. completion) order; the root `cycle` span
    /// finishes last.
    pub spans: Vec<Span>,
}

/// Aggregate latency numbers for one stage, across all retained cycles.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage label.
    pub stage: String,
    /// Number of spans folded in.
    pub count: u64,
    /// Median duration upper bound, µs.
    pub p50_us: u64,
    /// 99th-percentile duration upper bound, µs.
    pub p99_us: u64,
    /// Largest observed duration, µs.
    pub max_us: u64,
    /// Mean duration, µs.
    pub mean_us: u64,
}

/// What `/trace` serves: retained cycle traces plus aggregate stage
/// summaries and recording counters.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The most recent cycles' span trees, oldest first.
    pub cycles: Vec<CycleTrace>,
    /// Per-stage latency summaries since daemon start.
    pub stages: Vec<StageSummary>,
    /// Total spans recorded since daemon start.
    pub spans_recorded: u64,
    /// Spans dropped because the ring was full.
    pub spans_dropped: u64,
}

/// Tracer configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch; a disabled tracer is a no-op (spans cost one
    /// branch and no allocation).
    pub enabled: bool,
    /// Ring capacity in spans (rounded up to a power of two). Must
    /// exceed the span count of one cycle or spans will be dropped and
    /// counted.
    pub ring_capacity: usize,
    /// How many finished cycle traces `/trace` retains.
    pub keep_cycles: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            ring_capacity: 4096,
            keep_cycles: 8,
        }
    }
}

struct TracerInner {
    epoch: Instant,
    ring: Ring<Span>,
    next_id: AtomicU64,
    /// Ambient parent id used when a span is started without an explicit
    /// parent. Set by the driver around the cycle root; worker threads
    /// starting `target` spans pass parents explicitly.
    ambient: AtomicU64,
    recorded: AtomicU64,
    retained: Mutex<Retained>,
    keep_cycles: usize,
}

struct Retained {
    cycles: VecDeque<CycleTrace>,
    stages: BTreeMap<String, LatencyHistogram>,
}

/// Records spans for the daemon pipeline. Cheap to clone (an `Arc`
/// internally); a tracer built with [`Tracer::disabled`] makes every
/// operation a no-op so instrumented code needs no `if` guards.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Default for Tracer {
    /// The default tracer is disabled: instrumented types can embed one
    /// unconditionally and stay zero-cost until a real tracer is set.
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// Builds a tracer from `cfg`; `cfg.enabled == false` yields the
    /// no-op tracer.
    pub fn new(cfg: &TraceConfig) -> Tracer {
        if !cfg.enabled {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                ring: Ring::new(cfg.ring_capacity),
                next_id: AtomicU64::new(1),
                ambient: AtomicU64::new(0),
                recorded: AtomicU64::new(0),
                retained: Mutex::new(Retained {
                    cycles: VecDeque::new(),
                    stages: BTreeMap::new(),
                }),
                keep_cycles: cfg.keep_cycles.max(1),
            })),
        }
    }

    /// The no-op tracer: every span is free, every query returns empty.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether spans are actually recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts a span under the current ambient parent (see
    /// [`Tracer::set_ambient`]).
    pub fn start(&self, stage: &str, target: &str) -> SpanGuard {
        let parent = self
            .inner
            .as_ref()
            .map(|i| i.ambient.load(Ordering::Relaxed))
            .unwrap_or(0);
        self.start_with(stage, target, parent)
    }

    /// Starts a span with an explicit parent id (0 = root). Use this
    /// from worker threads, where the ambient parent would race.
    pub fn start_with(&self, stage: &str, target: &str, parent: u64) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { state: None },
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                SpanGuard {
                    state: Some(GuardState {
                        tracer: Arc::clone(inner),
                        span: Span {
                            id,
                            parent,
                            stage: stage.to_string(),
                            target: target.to_string(),
                            start_us: inner.epoch.elapsed().as_micros() as u64,
                            dur_us: 0,
                            attrs: Vec::new(),
                        },
                        started: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Sets the ambient parent id for spans started with [`Tracer::start`].
    /// The driver sets this to the cycle root's id at the top of a cycle
    /// and clears it (0) when the cycle ends.
    pub fn set_ambient(&self, parent: u64) {
        if let Some(inner) = &self.inner {
            inner.ambient.store(parent, Ordering::Relaxed);
        }
    }

    /// Drains all spans recorded since the last call into a
    /// [`CycleTrace`] tagged `cycle`, retains it, and folds durations
    /// into the per-stage histograms. Call this *after* dropping the
    /// cycle root guard, or the root span lands in the next cycle.
    pub fn finish_cycle(&self, cycle: u64) {
        let Some(inner) = &self.inner else { return };
        let mut spans = Vec::new();
        while let Some(s) = inner.ring.pop() {
            spans.push(s);
        }
        let mut retained = inner.retained.lock().unwrap();
        for s in &spans {
            retained
                .stages
                .entry(s.stage.clone())
                .or_default()
                .record_us(s.dur_us);
        }
        retained.cycles.push_back(CycleTrace { cycle, spans });
        while retained.cycles.len() > inner.keep_cycles {
            retained.cycles.pop_front();
        }
    }

    /// A copy of everything `/trace` serves.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot {
                cycles: Vec::new(),
                stages: Vec::new(),
                spans_recorded: 0,
                spans_dropped: 0,
            },
            Some(inner) => {
                let retained = inner.retained.lock().unwrap();
                TraceSnapshot {
                    cycles: retained.cycles.iter().cloned().collect(),
                    stages: summarize(&retained.stages),
                    spans_recorded: inner.recorded.load(Ordering::Relaxed),
                    spans_dropped: inner.ring.dropped(),
                }
            }
        }
    }

    /// Per-stage latency summaries since daemon start.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => summarize(&inner.retained.lock().unwrap().stages),
        }
    }

    /// Total spans recorded since daemon start.
    pub fn spans_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.recorded.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Spans dropped because the ring was full.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.as_ref().map(|i| i.ring.dropped()).unwrap_or(0)
    }
}

fn summarize(stages: &BTreeMap<String, LatencyHistogram>) -> Vec<StageSummary> {
    stages
        .iter()
        .map(|(stage, h)| StageSummary {
            stage: stage.clone(),
            count: h.count(),
            p50_us: h.p50_us(),
            p99_us: h.p99_us(),
            max_us: h.max_us(),
            mean_us: h.mean_us(),
        })
        .collect()
}

struct GuardState {
    tracer: Arc<TracerInner>,
    span: Span,
    started: Instant,
}

/// An in-flight span; records itself into the tracer's ring on drop.
#[must_use = "a span measures the scope it lives in; dropping it immediately records a zero-length span"]
pub struct SpanGuard {
    state: Option<GuardState>,
}

impl SpanGuard {
    /// This span's id, for use as an explicit parent of child spans
    /// started on other threads. Returns 0 for a no-op guard.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map(|s| s.span.id).unwrap_or(0)
    }

    /// Attaches a key/value attribute.
    pub fn attr(&mut self, key: &str, value: impl ToString) {
        if let Some(s) = &mut self.state {
            s.span.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Finishes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut s) = self.state.take() {
            s.span.dur_us = s.started.elapsed().as_micros() as u64;
            if s.tracer.ring.push(s.span) {
                s.tracer.recorded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_noop() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let mut g = t.start(stage::CYCLE, "");
        g.attr("k", "v");
        assert_eq!(g.id(), 0);
        drop(g);
        t.finish_cycle(1);
        let snap = t.snapshot();
        assert!(snap.cycles.is_empty());
        assert_eq!(snap.spans_recorded, 0);
    }

    #[test]
    fn spans_form_a_tree_and_fold_into_stage_histograms() {
        let t = Tracer::new(&TraceConfig::default());
        let root = t.start(stage::CYCLE, "");
        let root_id = root.id();
        t.set_ambient(root_id);
        {
            let scrape = t.start(stage::SCRAPE, "");
            assert_eq!(scrape.span_parent(), root_id);
            let tgt = t.start_with(stage::TARGET, "svc-a", scrape.id());
            assert_eq!(tgt.span_parent(), scrape.id());
            drop(tgt);
            drop(scrape);
        }
        t.set_ambient(0);
        drop(root);
        t.finish_cycle(7);

        let snap = t.snapshot();
        assert_eq!(snap.cycles.len(), 1);
        assert_eq!(snap.cycles[0].cycle, 7);
        assert_eq!(snap.cycles[0].spans.len(), 3);
        // Root finishes last (ring order is completion order).
        assert_eq!(snap.cycles[0].spans[2].stage, stage::CYCLE);
        assert_eq!(snap.cycles[0].spans[2].parent, 0);
        assert_eq!(snap.spans_recorded, 3);
        assert_eq!(snap.spans_dropped, 0);

        let stages: Vec<&str> = snap.stages.iter().map(|s| s.stage.as_str()).collect();
        assert!(stages.contains(&stage::CYCLE));
        assert!(stages.contains(&stage::SCRAPE));
        assert!(stages.contains(&stage::TARGET));
    }

    #[test]
    fn keep_cycles_bounds_retention() {
        let cfg = TraceConfig {
            keep_cycles: 2,
            ..TraceConfig::default()
        };
        let t = Tracer::new(&cfg);
        for c in 0..5 {
            t.start(stage::CYCLE, "").finish();
            t.finish_cycle(c);
        }
        let snap = t.snapshot();
        assert_eq!(snap.cycles.len(), 2);
        assert_eq!(snap.cycles[0].cycle, 3);
        assert_eq!(snap.cycles[1].cycle, 4);
        // Histograms keep accumulating past retention.
        let cycle_stage = snap
            .stages
            .iter()
            .find(|s| s.stage == stage::CYCLE)
            .unwrap();
        assert_eq!(cycle_stage.count, 5);
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let cfg = TraceConfig {
            ring_capacity: 4,
            ..TraceConfig::default()
        };
        let t = Tracer::new(&cfg);
        for _ in 0..10 {
            t.start(stage::TARGET, "x").finish();
        }
        t.finish_cycle(1);
        let snap = t.snapshot();
        assert_eq!(snap.spans_recorded, 4);
        assert_eq!(snap.spans_dropped, 6);
        assert_eq!(snap.cycles[0].spans.len(), 4);
    }

    #[test]
    fn attrs_survive_into_the_trace() {
        let t = Tracer::new(&TraceConfig::default());
        let mut g = t.start(stage::TARGET, "svc-b");
        g.attr("attempts", 2);
        g.attr("bytes", 512);
        drop(g);
        t.finish_cycle(1);
        let snap = t.snapshot();
        let span = &snap.cycles[0].spans[0];
        assert_eq!(span.target, "svc-b");
        assert_eq!(
            span.attrs,
            vec![
                ("attempts".to_string(), "2".to_string()),
                ("bytes".to_string(), "512".to_string())
            ]
        );
    }

    impl SpanGuard {
        fn span_parent(&self) -> u64 {
            self.state.as_ref().map(|s| s.span.parent).unwrap_or(0)
        }
    }
}
