//! Weighted stack-prefix trie and flamegraph rendering.
//!
//! The fleet's ranking answers *which* sites leak; the flamegraph
//! answers *where in the call tree* the blocked goroutines sit. A
//! [`FlameGraph`] folds stack signatures (root-first frame labels) into
//! a prefix trie whose node weights are blocked-goroutine counts; its
//! [`FlameGraph::merge`] is exact — commutative and associative, the
//! same algebra `FleetAccumulator::merge` obeys — so per-instance →
//! per-shard → fleet aggregation produces byte-identical folded output
//! no matter how the fleet was partitioned.
//!
//! Two export surfaces:
//!
//! * [`FlameGraph::to_folded`] — collapsed folded-stack text
//!   (`frame;frame;frame weight` per line), the interchange format the
//!   inferno / speedscope / FlameGraph tooling lineage consumes, and
//!   the byte-comparable artifact the differential tests pin.
//! * [`FlameGraph::render_html`] — a self-contained, zero-dependency
//!   SVG-in-HTML flamegraph: frame width ∝ blocked-goroutine weight,
//!   fill color keyed to the site's `/health` trend verdict
//!   (improving / flat / regressing) when one is supplied, hover
//!   tooltips via `<title>`, no scripts and no external fetches.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One node of the weighted stack-prefix trie.
///
/// `self_weight` counts stacks that *terminate* at this frame; the
/// node's displayed width is `self_weight` plus every descendant's.
/// Children are keyed by frame label in a [`BTreeMap`] so iteration —
/// and therefore folded output and rendering — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlameNode {
    /// Weight of stacks ending exactly at this frame.
    pub self_weight: u64,
    /// Child frames, keyed by sanitized label.
    pub children: BTreeMap<String, FlameNode>,
}

impl FlameNode {
    /// Total weight of this node: stacks ending here plus everything
    /// below.
    pub fn total(&self) -> u64 {
        self.self_weight + self.children.values().map(FlameNode::total).sum::<u64>()
    }

    fn merge(&mut self, other: &FlameNode) {
        self.self_weight += other.self_weight;
        for (label, child) in &other.children {
            self.children.entry(label.clone()).or_default().merge(child);
        }
    }

    fn max_depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FlameNode::max_depth)
            .max()
            .unwrap_or(0)
    }

    fn node_count(&self) -> usize {
        1 + self
            .children
            .values()
            .map(FlameNode::node_count)
            .sum::<usize>()
    }
}

/// A weighted stack-prefix trie of blocked-goroutine stacks.
///
/// The root is synthetic (it never appears in folded output); every
/// inserted stack hangs off it root-first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlameGraph {
    /// The synthetic root; its `total()` is the graph's total weight.
    pub root: FlameNode,
}

/// Replaces the characters that would corrupt folded-stack lines:
/// `;` separates frames and the line is newline-terminated.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| match c {
            ';' => ':',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect()
}

impl FlameGraph {
    /// An empty graph.
    pub fn new() -> FlameGraph {
        FlameGraph::default()
    }

    /// Adds one stack (root-first frame labels) with `weight`. A zero
    /// weight or an empty path is a no-op, so the trie never holds
    /// weightless leaves (which keeps `from_folded(to_folded(g)) == g`
    /// exact).
    pub fn add<I, S>(&mut self, path: I, weight: u64)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        if weight == 0 {
            return;
        }
        let mut node = &mut self.root;
        let mut any = false;
        for frame in path {
            any = true;
            node = node
                .children
                .entry(sanitize_label(frame.as_ref()))
                .or_default();
        }
        if any {
            node.self_weight += weight;
        }
    }

    /// Total blocked-goroutine weight in the graph.
    pub fn total(&self) -> u64 {
        self.root.total()
    }

    /// Deepest stack in the graph (0 for an empty graph).
    pub fn max_depth(&self) -> usize {
        self.root.max_depth() - 1
    }

    /// Number of frames in the trie (excluding the synthetic root).
    pub fn node_count(&self) -> usize {
        self.root.node_count() - 1
    }

    /// Folds another graph into this one by summing weights per path.
    ///
    /// This is an exact merge: addition per node is commutative and
    /// associative and the key set is a plain union, so
    /// `merge(a, merge(b, c)) == merge(merge(a, b), c)` and
    /// `merge(a, b) == merge(b, a)` — byte-identically, via
    /// [`FlameGraph::to_folded`]. The shard and fleet tiers rely on
    /// this the same way they rely on `FleetAccumulator::merge`.
    pub fn merge(&mut self, other: &FlameGraph) {
        self.root.merge(&other.root);
    }

    /// Serializes to collapsed folded-stack text: one
    /// `frame;frame;frame weight` line per trie node with non-zero
    /// `self_weight`, parents before children, siblings in label order.
    /// The output is a pure function of the trie's contents —
    /// insertion order never shows.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<&str> = Vec::new();
        fn walk<'a>(node: &'a FlameNode, path: &mut Vec<&'a str>, out: &mut String) {
            use std::fmt::Write as _;
            if node.self_weight > 0 && !path.is_empty() {
                let _ = writeln!(out, "{} {}", path.join(";"), node.self_weight);
            }
            for (label, child) in &node.children {
                path.push(label);
                walk(child, path, out);
                path.pop();
            }
        }
        walk(&self.root, &mut path, &mut out);
        out
    }

    /// Parses collapsed folded-stack text (the [`FlameGraph::to_folded`]
    /// format; blank lines ignored). Weights on repeated paths sum.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line (missing or
    /// non-integer weight, empty stack).
    pub fn from_folded(text: &str) -> Result<FlameGraph, String> {
        let mut g = FlameGraph::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (stack, weight) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no weight field: {line:?}", i + 1))?;
            let weight: u64 = weight
                .parse()
                .map_err(|_| format!("line {}: weight is not a u64: {weight:?}", i + 1))?;
            if stack.is_empty() {
                return Err(format!("line {}: empty stack", i + 1));
            }
            g.add(stack.split(';'), weight);
        }
        Ok(g)
    }
}

/// Rendering knobs for [`FlameGraph::render_html`].
#[derive(Debug, Clone)]
pub struct FlameOptions {
    /// Page `<title>` and heading.
    pub title: String,
    /// Subtitle line under the heading (e.g. the differential window).
    pub subtitle: String,
    /// Canvas width in pixels.
    pub width_px: u32,
    /// Health verdict per stack-path prefix: maps a `;`-joined
    /// root-first path to `improving` / `flat` / `regressing`. The
    /// matching node **and its whole subtree** take the verdict color,
    /// so a regressing site's runtime frames light up with it.
    pub verdicts: BTreeMap<String, String>,
}

impl Default for FlameOptions {
    fn default() -> Self {
        FlameOptions {
            title: "leakprofd flamegraph".into(),
            subtitle: String::new(),
            width_px: 1200,
            verdicts: BTreeMap::new(),
        }
    }
}

/// Row height of one frame in the rendered SVG, px.
const ROW_PX: f64 = 18.0;
/// Frames narrower than this many px are culled from the SVG (their
/// weight still shows in ancestors' widths and tooltips).
const MIN_FRAME_PX: f64 = 0.4;

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic warm fill for frames without a verdict: a hash of the
/// label picks a hue in the classic flamegraph orange band, so the same
/// frame gets the same color on every daemon.
fn default_fill(label: &str) -> String {
    let mut h: u32 = 2166136261;
    for b in label.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(16777619);
    }
    let r = 205 + (h % 50);
    let g = 90 + ((h >> 8) % 90);
    let b = 30 + ((h >> 16) % 40);
    format!("rgb({r},{g},{b})")
}

fn verdict_fill(class: &str) -> Option<&'static str> {
    match class {
        "regressing" => Some("#d64541"),
        "improving" => Some("#4fa35a"),
        "flat" => Some("#c9b458"),
        _ => None,
    }
}

impl FlameGraph {
    /// Renders the graph as one self-contained HTML page wrapping a
    /// static SVG — no scripts, no stylesheets, no external fetches, so
    /// the output can be saved, mailed, or served from an air-gapped
    /// daemon as-is. Hover shows the full frame label, weight, and
    /// share via `<title>` tooltips. Frames under a verdict path prefix
    /// (see [`FlameOptions::verdicts`]) carry a `data-health` attribute
    /// and the verdict color, which is what the smoke tests grep for.
    pub fn render_html(&self, opts: &FlameOptions) -> String {
        use std::fmt::Write as _;
        let total = self.total();
        let depth = self.max_depth();
        let width = opts.width_px.max(200) as f64;
        let height = (depth.max(1) as f64) * ROW_PX + 2.0;
        let mut svg = String::new();
        if total > 0 {
            let mut path: Vec<String> = Vec::new();
            render_children(
                &self.root, &mut path, 0.0, width, 0, total, opts, None, &mut svg,
            );
        }
        let mut out = String::new();
        let _ = writeln!(out, "<!DOCTYPE html>");
        let _ = writeln!(
            out,
            "<html><head><meta charset=\"utf-8\"><title>{}</title></head>",
            escape_xml(&opts.title)
        );
        let _ = writeln!(
            out,
            "<body style=\"font-family:monospace;background:#fdfdfd;color:#222\">"
        );
        let _ = writeln!(out, "<h2>{}</h2>", escape_xml(&opts.title));
        if !opts.subtitle.is_empty() {
            let _ = writeln!(out, "<p>{}</p>", escape_xml(&opts.subtitle));
        }
        let _ = writeln!(
            out,
            "<p>total weight {total} · {} frame(s) · depth {depth} · \
             color: <span style=\"color:#d64541\">regressing</span> / \
             <span style=\"color:#c9b458\">flat</span> / \
             <span style=\"color:#4fa35a\">improving</span> / orange = no verdict</p>",
            self.node_count()
        );
        let _ = writeln!(
            out,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             font-size=\"11\" font-family=\"monospace\">",
            width as u32, height as u32
        );
        out.push_str(&svg);
        let _ = writeln!(out, "</svg></body></html>");
        out
    }
}

/// Recursively emits `<g><rect><title><text></g>` rows for `node`'s
/// children across `[x0, x0+w)`, depth-first. `inherited` is the
/// verdict class covering this subtree, if an ancestor matched one.
#[allow(clippy::too_many_arguments)]
fn render_children(
    node: &FlameNode,
    path: &mut Vec<String>,
    x0: f64,
    w: f64,
    depth: usize,
    total: u64,
    opts: &FlameOptions,
    inherited: Option<&str>,
    out: &mut String,
) {
    use std::fmt::Write as _;
    let node_total = node.total();
    if node_total == 0 {
        return;
    }
    // Children are laid out after the node's own terminating weight, in
    // label order — the same order `to_folded` walks.
    let mut x = x0 + w * (node.self_weight as f64 / node_total as f64);
    for (label, child) in &node.children {
        let child_total = child.total();
        let cw = w * (child_total as f64 / node_total as f64);
        path.push(label.clone());
        let joined = path.join(";");
        let class = opts.verdicts.get(&joined).map(String::as_str).or(inherited);
        if cw >= MIN_FRAME_PX {
            let fill = class
                .and_then(verdict_fill)
                .map(str::to_string)
                .unwrap_or_else(|| default_fill(label));
            let y = depth as f64 * ROW_PX + 1.0;
            let pct = 100.0 * child_total as f64 / total as f64;
            let _ = write!(
                out,
                "<g{}><rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
                 fill=\"{}\" stroke=\"#fdfdfd\" stroke-width=\"0.5\"/>\
                 <title>{} — {} blocked ({:.2}%){}</title>",
                class
                    .map(|c| format!(" data-health=\"{c}\""))
                    .unwrap_or_default(),
                x,
                y,
                cw,
                ROW_PX - 1.0,
                fill,
                escape_xml(label),
                child_total,
                pct,
                class.map(|c| format!(" — trend: {c}")).unwrap_or_default(),
            );
            if cw >= 60.0 {
                // Clip the label roughly to the frame width (monospace
                // ≈ 6.6 px/char at font-size 11).
                let max_chars = ((cw - 6.0) / 6.6) as usize;
                let shown: String = if label.chars().count() > max_chars {
                    label
                        .chars()
                        .take(max_chars.saturating_sub(1))
                        .collect::<String>()
                        + "…"
                } else {
                    label.clone()
                };
                let _ = write!(
                    out,
                    "<text x=\"{:.2}\" y=\"{:.2}\" fill=\"#1a1a1a\">{}</text>",
                    x + 3.0,
                    depth as f64 * ROW_PX + ROW_PX - 5.0,
                    escape_xml(&shown)
                );
            }
            let _ = writeln!(out, "</g>");
        }
        render_children(child, path, x, cw, depth + 1, total, opts, class, out);
        path.pop();
        x += cw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlameGraph {
        let mut g = FlameGraph::new();
        g.add(["main", "pay.Handle", "runtime.gopark"], 7);
        g.add(["main", "pay.Handle", "runtime.chansend1"], 3);
        g.add(["main", "geo.Handle"], 2);
        g
    }

    #[test]
    fn totals_follow_the_trie() {
        let g = sample();
        assert_eq!(g.total(), 12);
        assert_eq!(g.max_depth(), 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.root.children["main"].total(), 12);
        assert_eq!(g.root.children["main"].children["pay.Handle"].total(), 10);
    }

    #[test]
    fn folded_output_is_deterministic_and_round_trips() {
        let g = sample();
        let folded = g.to_folded();
        assert_eq!(
            folded,
            "main;geo.Handle 2\n\
             main;pay.Handle;runtime.chansend1 3\n\
             main;pay.Handle;runtime.gopark 7\n"
        );
        let back = FlameGraph::from_folded(&folded).unwrap();
        assert_eq!(back, g);

        // Insertion order must not show in the output.
        let mut g2 = FlameGraph::new();
        g2.add(["main", "geo.Handle"], 2);
        g2.add(["main", "pay.Handle", "runtime.gopark"], 7);
        g2.add(["main", "pay.Handle", "runtime.chansend1"], 3);
        assert_eq!(g2.to_folded(), folded);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = sample();
        let mut b = FlameGraph::new();
        b.add(["main", "pay.Handle", "runtime.gopark"], 5);
        b.add(["init"], 1);
        let mut ab = a.clone();
        ab.merge(&b);
        b.merge(&a);
        assert_eq!(ab.to_folded(), b.to_folded());
        a.merge(&FlameGraph::new());
        assert_eq!(a, sample(), "empty graph is the merge identity");
    }

    #[test]
    fn zero_weights_and_empty_paths_are_noops() {
        let mut g = FlameGraph::new();
        g.add(["main"], 0);
        g.add(Vec::<&str>::new(), 9);
        assert_eq!(g, FlameGraph::new());
    }

    #[test]
    fn labels_are_sanitized() {
        let mut g = FlameGraph::new();
        g.add(["a;b\nc"], 1);
        assert_eq!(g.to_folded(), "a:b c 1\n");
        assert_eq!(FlameGraph::from_folded("a:b c 1\n").unwrap(), g);
    }

    #[test]
    fn malformed_folded_lines_are_rejected() {
        assert!(FlameGraph::from_folded("main;f").is_err());
        assert!(FlameGraph::from_folded("main;f twelve").is_err());
        assert!(FlameGraph::from_folded(" 3").is_err());
        assert!(FlameGraph::from_folded("\n\n").unwrap().total() == 0);
    }

    #[test]
    fn html_render_carries_verdict_colors() {
        let g = sample();
        let mut opts = FlameOptions {
            title: "t".into(),
            ..FlameOptions::default()
        };
        opts.verdicts
            .insert("main;pay.Handle".into(), "regressing".into());
        let html = g.render_html(&opts);
        assert!(html.contains("<svg"), "self-contained SVG");
        assert!(!html.contains("<script"), "zero-dependency: no scripts");
        assert!(!html.contains("http-equiv"), "no refresh tricks");
        // The verdict node and its runtime children inherit the class.
        assert_eq!(html.matches("data-health=\"regressing\"").count(), 3);
        assert!(html.contains("trend: regressing"));
        // Unverdicted frames fall back to the deterministic palette.
        let again = g.render_html(&opts);
        assert_eq!(html, again, "render is a pure function of the trie");
    }
}
