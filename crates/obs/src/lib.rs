//! Deep observability for the `leakprofd` pipeline.
//!
//! The paper's whole argument is that production systems cannot be
//! debugged without continuous profiles; this crate applies the same
//! standard to our own daemon. It provides four pieces, deliberately
//! free of collector dependencies so every layer can use them:
//!
//! * [`hist`] — the log2-bucketed [`LatencyHistogram`] shared by scrape
//!   health counters and per-stage span summaries.
//! * [`ring`] — a fixed-capacity lock-free MPMC ring buffer with drop
//!   counting; span recording never blocks and never allocates beyond
//!   the span itself.
//! * [`span`] — lightweight spans (id, parent, stage, target, monotonic
//!   start, µs duration, string attributes) and the [`Tracer`] that
//!   records them per cycle and folds them into per-stage histograms.
//! * [`context`] — the W3C-`traceparent`-style [`TraceContext`] that
//!   carries a trace id across HTTP hops, so spans recorded in one
//!   process parent under a request made by another.
//! * [`events`] — a bounded structured [`EventLog`] (level, target,
//!   message, ambient trace/span), the replacement for ad-hoc stderr
//!   prints, served at `/logs`.
//! * [`chrome`] — export of trace snapshots to the Chrome trace-event
//!   format (`chrome://tracing`, Perfetto), plus the minimal parser the
//!   round-trip tests use, and [`to_chrome_stitched`] which merges
//!   snapshots from several processes into one timeline with flow
//!   arrows across hops.
//! * [`selfprof`] — the dogfood loop: a worker-state board tracking
//!   where the daemon's own threads block (idle / connect / read /
//!   parse / analyze), rendered as a [`gosim::GoroutineProfile`] in the
//!   *same JSON format the scraped instances serve*, so the daemon can
//!   be scraped and leak-ranked by its own pipeline.
//! * [`flame`] — the weighted stack-prefix trie ([`FlameGraph`]) behind
//!   `/flame`: exact commutative/associative merge (the accumulator's
//!   discipline applied to stacks), collapsed folded-stack text, and a
//!   self-contained SVG/HTML flamegraph renderer with health-verdict
//!   coloring.

#![warn(missing_docs)]

pub mod chrome;
pub mod context;
pub mod events;
pub mod flame;
pub mod hist;
pub mod ring;
pub mod selfprof;
pub mod span;

pub use chrome::{from_chrome, to_chrome, to_chrome_stitched};
pub use context::{mint_span_id, TraceContext, TRACEPARENT};
pub use events::{Event, EventConfig, EventLog, Level};
pub use flame::{FlameGraph, FlameNode, FlameOptions};
pub use hist::LatencyHistogram;
pub use ring::Ring;
pub use selfprof::{Site, WorkerBoard, WorkerHandle, WorkerState};
pub use span::{
    stage, CycleTrace, Span, SpanGuard, StageSummary, TraceConfig, TraceSnapshot, Tracer,
    WorstCycle,
};
