//! Deep observability for the `leakprofd` pipeline.
//!
//! The paper's whole argument is that production systems cannot be
//! debugged without continuous profiles; this crate applies the same
//! standard to our own daemon. It provides four pieces, deliberately
//! free of collector dependencies so every layer can use them:
//!
//! * [`hist`] — the log2-bucketed [`LatencyHistogram`] shared by scrape
//!   health counters and per-stage span summaries.
//! * [`ring`] — a fixed-capacity lock-free MPMC ring buffer with drop
//!   counting; span recording never blocks and never allocates beyond
//!   the span itself.
//! * [`span`] — lightweight spans (id, parent, stage, target, monotonic
//!   start, µs duration, string attributes) and the [`Tracer`] that
//!   records them per cycle and folds them into per-stage histograms.
//! * [`chrome`] — export of trace snapshots to the Chrome trace-event
//!   format (`chrome://tracing`, Perfetto), plus the minimal parser the
//!   round-trip tests use.
//! * [`selfprof`] — the dogfood loop: a worker-state board tracking
//!   where the daemon's own threads block (idle / connect / read /
//!   parse / analyze), rendered as a [`gosim::GoroutineProfile`] in the
//!   *same JSON format the scraped instances serve*, so the daemon can
//!   be scraped and leak-ranked by its own pipeline.

#![warn(missing_docs)]

pub mod chrome;
pub mod hist;
pub mod ring;
pub mod selfprof;
pub mod span;

pub use chrome::{from_chrome, to_chrome};
pub use hist::LatencyHistogram;
pub use ring::Ring;
pub use selfprof::{Site, WorkerBoard, WorkerHandle, WorkerState};
pub use span::{
    stage, CycleTrace, Span, SpanGuard, StageSummary, TraceConfig, TraceSnapshot, Tracer,
};
