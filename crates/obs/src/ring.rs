//! A fixed-capacity lock-free MPMC ring buffer with drop counting.
//!
//! Span recording sits on the scraper's hot path, where worker threads
//! finish spans concurrently; a mutex there would serialize the very
//! fan-out the spans are measuring. This is the classic bounded MPMC
//! queue (Vyukov): each slot carries a sequence number that encodes
//! whose turn it is, producers claim slots with a CAS on the enqueue
//! cursor, and consumers mirror the protocol on the dequeue cursor. No
//! operation ever blocks.
//!
//! Overflow policy: when the ring is full, [`Ring::push`] **drops the
//! new value** and increments a drop counter instead of overwriting
//! history or spinning. The tracer drains the ring once per cycle, so
//! drops only occur when a single cycle produces more spans than the
//! configured capacity — and the counter makes that visible in
//! `/metrics` rather than silent.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot<T> {
    /// Turn indicator: `pos` means "free for the producer claiming
    /// `pos`", `pos + 1` means "holds the value enqueued at `pos`".
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// The lock-free bounded MPMC ring. See the module docs for the
/// protocol and the overflow policy.
pub struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are handed off between threads through the acquire/
// release protocol on `seq`; a value is only touched by the single
// thread that successfully claimed its position.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    /// Creates a ring holding at most `capacity` values (rounded up to
    /// the next power of two, minimum 2).
    pub fn new(capacity: usize) -> Ring<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues `value`; returns `false` (and counts a drop) when the
    /// ring is full. Never blocks.
    pub fn push(&self, value: T) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            match dif.cmp(&0) {
                std::cmp::Ordering::Equal => {
                    match self.enqueue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gave this thread exclusive
                            // ownership of the slot until the release
                            // store below publishes it.
                            unsafe { (*slot.val.get()).write(value) };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return true;
                        }
                        Err(p) => pos = p,
                    }
                }
                std::cmp::Ordering::Less => {
                    // The slot still holds a value a full lap behind:
                    // the ring is full.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                std::cmp::Ordering::Greater => {
                    pos = self.enqueue_pos.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Dequeues the oldest value, or `None` when the ring is empty.
    /// Never blocks.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            match dif.cmp(&0) {
                std::cmp::Ordering::Equal => {
                    match self.dequeue_pos.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS gave this thread exclusive
                            // ownership of the initialized value.
                            let value = unsafe { (*slot.val.get()).assume_init_read() };
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(p) => pos = p,
                    }
                }
                std::cmp::Ordering::Less => return None,
                std::cmp::Ordering::Greater => {
                    pos = self.dequeue_pos.load(Ordering::Relaxed);
                }
            }
        }
    }

    /// Values discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Drain remaining values so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let r: Ring<u32> = Ring::new(8);
        for i in 0..5 {
            assert!(r.push(i));
        }
        for i in 0..5 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let r: Ring<u32> = Ring::new(4);
        for i in 0..4 {
            assert!(r.push(i));
        }
        assert!(!r.push(99));
        assert!(!r.push(100));
        assert_eq!(r.dropped(), 2);
        // Draining frees slots again.
        assert_eq!(r.pop(), Some(0));
        assert!(r.push(101));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let r: Ring<u8> = Ring::new(5);
        assert_eq!(r.capacity(), 8);
        let r: Ring<u8> = Ring::new(0);
        assert_eq!(r.capacity(), 2);
    }

    #[test]
    fn concurrent_producers_lose_nothing_below_capacity() {
        let r: Arc<Ring<u64>> = Arc::new(Ring::new(1 << 12));
        let threads = 8;
        let per = 256;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for i in 0..per {
                        assert!(r.push((t * per + i) as u64));
                    }
                });
            }
        });
        let mut seen = Vec::new();
        while let Some(v) = r.pop() {
            seen.push(v);
        }
        seen.sort_unstable();
        let expect: Vec<u64> = (0..(threads * per) as u64).collect();
        assert_eq!(seen, expect);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn drops_are_freed_not_leaked() {
        // Box payloads: drop glue must run for rejected + drained values.
        let r: Ring<Box<u64>> = Ring::new(2);
        assert!(r.push(Box::new(1)));
        assert!(r.push(Box::new(2)));
        assert!(!r.push(Box::new(3)));
        drop(r); // drains the two live boxes
    }
}
