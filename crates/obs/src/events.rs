//! Bounded structured event log: the daemon's replacement for ad-hoc
//! stderr prints.
//!
//! Every entry carries a level, a target (which subsystem spoke), the
//! message, and — when the process is inside a traced cycle — the
//! distributed trace id and ambient span id, so a `/logs` line links
//! straight back to the stitched timeline that explains it. Entries go
//! through the same lock-free [`Ring`] the tracer uses (drop-newest,
//! counted), then into a bounded retained deque served at `/logs`;
//! nothing here can block or grow without bound. Warnings and errors
//! still echo to stderr so an operator tailing the process loses
//! nothing by the migration.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::ring::Ring;

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics.
    Debug,
    /// Normal operational milestones.
    Info,
    /// Degraded but self-healing conditions.
    Warn,
    /// Failures that lost work.
    Error,
}

impl Level {
    /// The lowercase wire form used in serialized events.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses the wire form back into a level (case-insensitive);
    /// `None` for anything that is not one of the four names.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// One structured log entry.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-process sequence number (gaps = ring drops).
    pub seq: u64,
    /// Microseconds since the log was created.
    pub ts_us: u64,
    /// Severity as its lowercase name (`debug`/`info`/`warn`/`error`).
    pub level: String,
    /// Which subsystem emitted the event (e.g. `daemon`, `fleet`).
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Distributed trace id active when the event fired, if any.
    pub trace: Option<String>,
    /// Ambient span id active when the event fired (0 = none).
    pub span: u64,
}

/// Event-log tuning knobs.
#[derive(Debug, Clone)]
pub struct EventConfig {
    /// Whether events are recorded at all.
    pub enabled: bool,
    /// Lock-free staging ring capacity (drop-newest beyond this).
    pub ring_capacity: usize,
    /// Most recent entries retained for `/logs`.
    pub keep: usize,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            enabled: true,
            ring_capacity: 1024,
            keep: 256,
        }
    }
}

struct EventInner {
    epoch: Instant,
    ring: Ring<Event>,
    seq: AtomicU64,
    recorded: AtomicU64,
    keep: usize,
    /// (trace id, ambient span) stamped onto subsequent events.
    ctx: Mutex<(Option<String>, u64)>,
    retained: Mutex<VecDeque<Event>>,
}

/// The bounded structured event log. Cheap to clone (`Arc` inside);
/// a disabled log records nothing and allocates nothing per call
/// beyond the formatted message the caller already built.
#[derive(Clone, Default)]
pub struct EventLog {
    inner: Option<Arc<EventInner>>,
}

impl EventLog {
    /// Creates a log from `config` (disabled config ⇒ no-op log).
    pub fn new(config: EventConfig) -> EventLog {
        if !config.enabled {
            return EventLog::disabled();
        }
        EventLog {
            inner: Some(Arc::new(EventInner {
                epoch: Instant::now(),
                ring: Ring::new(config.ring_capacity),
                seq: AtomicU64::new(0),
                recorded: AtomicU64::new(0),
                keep: config.keep.max(1),
                ctx: Mutex::new((None, 0)),
                retained: Mutex::new(VecDeque::new()),
            })),
        }
    }

    /// A log that records nothing.
    pub fn disabled() -> EventLog {
        EventLog { inner: None }
    }

    /// Whether this log records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the trace context stamped onto subsequent events (the
    /// daemon calls this when a cycle begins, and clears it at cycle
    /// end with `(None, 0)`).
    pub fn set_context(&self, trace: Option<String>, span: u64) {
        if let Some(inner) = &self.inner {
            *inner.ctx.lock().expect("event ctx poisoned") = (trace, span);
        }
    }

    /// Records one event. Warnings and errors also echo to stderr so
    /// operators tailing the process keep their signal.
    pub fn log(&self, level: Level, target: &str, message: impl Into<String>) {
        let message = message.into();
        if level >= Level::Warn {
            eprintln!("{target}: {message}");
        }
        let Some(inner) = &self.inner else {
            return;
        };
        let (trace, span) = inner.ctx.lock().expect("event ctx poisoned").clone();
        let event = Event {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: inner.epoch.elapsed().as_micros() as u64,
            level: level.as_str().to_string(),
            target: target.to_string(),
            message,
            trace,
            span,
        };
        if inner.ring.push(event) {
            inner.recorded.fetch_add(1, Ordering::Relaxed);
        }
        self.fold();
    }

    /// Records a debug event.
    pub fn debug(&self, target: &str, message: impl Into<String>) {
        self.log(Level::Debug, target, message);
    }

    /// Records an info event.
    pub fn info(&self, target: &str, message: impl Into<String>) {
        self.log(Level::Info, target, message);
    }

    /// Records a warning (also echoed to stderr).
    pub fn warn(&self, target: &str, message: impl Into<String>) {
        self.log(Level::Warn, target, message);
    }

    /// Records an error (also echoed to stderr).
    pub fn error(&self, target: &str, message: impl Into<String>) {
        self.log(Level::Error, target, message);
    }

    /// Drains the staging ring into the bounded retained deque.
    fn fold(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut retained = inner.retained.lock().expect("event retained poisoned");
        while let Some(e) = inner.ring.pop() {
            if retained.len() >= inner.keep {
                retained.pop_front();
            }
            retained.push_back(e);
        }
    }

    /// The most recent retained events, oldest first (the `/logs`
    /// document).
    pub fn recent(&self) -> Vec<Event> {
        self.fold();
        match &self.inner {
            Some(inner) => inner
                .retained
                .lock()
                .expect("event retained poisoned")
                .iter()
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Retained events at or above `min`, capped to the most recent
    /// `limit`, oldest first — `/logs?level=&limit=`, so operators can
    /// pull only Warn+ without scraping the whole retained deque. An
    /// event whose level string does not parse (foreign producer) is
    /// conservatively kept.
    pub fn recent_filtered(&self, min: Level, limit: usize) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .recent()
            .into_iter()
            .filter(|e| Level::parse(&e.level).is_none_or(|l| l >= min))
            .collect();
        if events.len() > limit {
            events.drain(..events.len() - limit);
        }
        events
    }

    /// Events recorded (admitted to the ring) so far.
    pub fn recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.recorded.load(Ordering::Relaxed))
    }

    /// Events dropped because the staging ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_is_noop() {
        let log = EventLog::disabled();
        log.info("daemon", "ignored");
        log.error("daemon", "also ignored (but echoed)");
        assert!(!log.enabled());
        assert!(log.recent().is_empty());
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn events_carry_levels_and_trace_context() {
        let log = EventLog::new(EventConfig::default());
        log.info("daemon", "cycle started");
        log.set_context(Some("aa".repeat(16)), 7);
        log.warn("scrape", "target x timed out");
        log.set_context(None, 0);
        log.debug("daemon", "cycle ended");

        let events = log.recent();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].level, "info");
        assert_eq!(events[0].trace, None);
        assert_eq!(events[1].level, "warn");
        assert_eq!(events[1].target, "scrape");
        assert_eq!(events[1].trace.as_deref(), Some(&*"aa".repeat(16)));
        assert_eq!(events[1].span, 7);
        assert_eq!(events[2].trace, None);
        assert_eq!(events[2].span, 0);
        // Sequence numbers are contiguous when nothing dropped.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn retention_is_bounded_and_drops_are_counted() {
        let log = EventLog::new(EventConfig {
            enabled: true,
            ring_capacity: 1024,
            keep: 4,
        });
        for i in 0..10 {
            log.info("t", format!("e{i}"));
        }
        let events = log.recent();
        assert_eq!(events.len(), 4, "retention caps at keep");
        assert_eq!(events[0].message, "e6");
        assert_eq!(events[3].message, "e9");

        // A tiny ring that is never folded must drop, visibly. The log
        // folds on every `log` call, so drops require pushing directly.
        let tiny = EventLog::new(EventConfig {
            enabled: true,
            ring_capacity: 2,
            keep: 8,
        });
        let inner = tiny.inner.as_ref().unwrap();
        for i in 0..5u64 {
            let _ = inner.ring.push(Event {
                seq: i,
                ts_us: 0,
                level: "info".into(),
                target: "t".into(),
                message: String::new(),
                trace: None,
                span: 0,
            });
        }
        assert_eq!(tiny.dropped(), 3);
    }

    #[test]
    fn level_parse_round_trips_and_orders() {
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("fatal"), None);
        assert!(Level::Warn > Level::Info);
    }

    #[test]
    fn recent_filtered_drops_below_min_and_caps_to_newest() {
        let log = EventLog::new(EventConfig::default());
        log.debug("t", "d0");
        log.info("t", "i0");
        log.warn("t", "w0");
        log.error("t", "e0");
        log.warn("t", "w1");

        let warns = log.recent_filtered(Level::Warn, usize::MAX);
        assert_eq!(
            warns.iter().map(|e| e.message.as_str()).collect::<Vec<_>>(),
            vec!["w0", "e0", "w1"],
            "oldest first, Warn and above only"
        );
        let capped = log.recent_filtered(Level::Warn, 2);
        assert_eq!(
            capped
                .iter()
                .map(|e| e.message.as_str())
                .collect::<Vec<_>>(),
            vec!["e0", "w1"],
            "limit keeps the newest matches"
        );
        assert_eq!(log.recent_filtered(Level::Debug, usize::MAX).len(), 5);
        assert!(log.recent_filtered(Level::Error, 0).is_empty());
    }

    #[test]
    fn events_serialize_round_trip() {
        let log = EventLog::new(EventConfig::default());
        log.set_context(Some("bb".repeat(16)), 3);
        log.error("wal", "append failed: disk full");
        let events = log.recent();
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<Event> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }
}
