//! Chrome trace-event export for [`TraceSnapshot`]s.
//!
//! `leakprofd trace --out cycles.json` writes the format that
//! `chrome://tracing` and Perfetto load directly: a JSON array of
//! complete (`"ph": "X"`) duration events. The mapping is:
//!
//! * `pid` — the daemon cycle number, so each retained cycle renders as
//!   its own process group in the viewer.
//! * `tid` — lane 0 for driver-side pipeline stages; each scrape target
//!   gets its own lane (assigned in first-seen order) so the fan-out is
//!   visible as parallel tracks.
//! * `ts` / `dur` — the span's start offset and duration in µs, which is
//!   the unit the trace-event format already uses.
//! * `args` — span id, parent id, target, then the span's own
//!   attributes. `id`, `parent`, and `target` are reserved keys; the
//!   tracer never emits attributes under those names.
//!
//! [`from_chrome`] is the inverse, reconstructing [`CycleTrace`]s from
//! exported JSON. It exists so tests can prove the export is lossless
//! (`from_chrome(to_chrome(snap)) == snap.cycles`), and accepts only
//! what [`to_chrome`] emits — it is not a general trace-event parser.

use crate::span::{CycleTrace, Span, TraceSnapshot};
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// Keys in `args` that carry span identity rather than user attributes.
const RESERVED: [&str; 3] = ["id", "parent", "target"];

/// Renders the snapshot's retained cycles as a Chrome trace-event JSON
/// array (see the module docs for the mapping).
pub fn to_chrome(snapshot: &TraceSnapshot) -> String {
    let mut lanes: BTreeMap<&str, u64> = BTreeMap::new();
    let mut next_lane = 1u64;
    let mut events = Vec::new();
    for cycle in &snapshot.cycles {
        for span in &cycle.spans {
            let tid = if span.target.is_empty() {
                0
            } else {
                *lanes.entry(span.target.as_str()).or_insert_with(|| {
                    let lane = next_lane;
                    next_lane += 1;
                    lane
                })
            };
            let mut args = Map::new();
            args.insert("id", Value::U64(span.id));
            args.insert("parent", Value::U64(span.parent));
            args.insert("target", Value::Str(span.target.clone()));
            for (k, v) in &span.attrs {
                args.insert(k.clone(), Value::Str(v.clone()));
            }
            let mut ev = Map::new();
            ev.insert("name", Value::Str(span.stage.clone()));
            ev.insert("cat", Value::Str("leakprofd".to_string()));
            ev.insert("ph", Value::Str("X".to_string()));
            ev.insert("ts", Value::U64(span.start_us));
            ev.insert("dur", Value::U64(span.dur_us));
            ev.insert("pid", Value::U64(cycle.cycle));
            ev.insert("tid", Value::U64(tid));
            ev.insert("args", Value::Object(args));
            events.push(Value::Object(ev));
        }
    }
    serde_json::to_string(&Value::Array(events)).expect("trace events serialize")
}

/// Parses JSON produced by [`to_chrome`] back into cycle traces,
/// grouped by `pid` in first-seen order with span order preserved.
pub fn from_chrome(json: &str) -> Result<Vec<CycleTrace>, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let Value::Array(events) = value else {
        return Err("trace export must be a JSON array".to_string());
    };
    let mut cycles: Vec<CycleTrace> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let Value::Object(ev) = ev else {
            return Err(at("not an object"));
        };
        let str_field = |key: &str| -> Result<String, String> {
            ev.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| at(&format!("missing string field {key:?}")))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            ev.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| at(&format!("missing integer field {key:?}")))
        };
        if str_field("ph")? != "X" {
            return Err(at("only complete (ph=X) events are supported"));
        }
        let Some(Value::Object(args)) = ev.get("args") else {
            return Err(at("missing args object"));
        };
        let arg_u64 = |key: &str| -> Result<u64, String> {
            args.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| at(&format!("missing integer arg {key:?}")))
        };
        let target = args
            .get("target")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing string arg \"target\""))?
            .to_string();
        let mut attrs = Vec::new();
        for (k, v) in args.iter() {
            if RESERVED.contains(&k.as_str()) {
                continue;
            }
            let v = v
                .as_str()
                .ok_or_else(|| at(&format!("attribute {k:?} is not a string")))?;
            attrs.push((k.clone(), v.to_string()));
        }
        let span = Span {
            id: arg_u64("id")?,
            parent: arg_u64("parent")?,
            stage: str_field("name")?,
            target,
            start_us: u64_field("ts")?,
            dur_us: u64_field("dur")?,
            attrs,
        };
        let cycle = u64_field("pid")?;
        match cycles.last_mut() {
            Some(c) if c.cycle == cycle => c.spans.push(span),
            _ => cycles.push(CycleTrace {
                cycle,
                spans: vec![span],
            }),
        }
    }
    Ok(cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{stage, TraceConfig, Tracer};

    fn sample_snapshot() -> TraceSnapshot {
        let t = Tracer::new(&TraceConfig::default());
        for cycle in 1..=2 {
            let root = t.start(stage::CYCLE, "");
            t.set_ambient(root.id());
            let scrape = t.start(stage::SCRAPE, "");
            for target in ["svc-a", "svc-b"] {
                let mut g = t.start_with(stage::TARGET, target, scrape.id());
                g.attr("attempts", 1);
            }
            drop(scrape);
            t.start(stage::ANALYZE, "").finish();
            t.set_ambient(0);
            drop(root);
            t.finish_cycle(cycle);
        }
        t.snapshot()
    }

    #[test]
    fn export_round_trips() {
        let snap = sample_snapshot();
        let json = to_chrome(&snap);
        let cycles = from_chrome(&json).expect("parse own export");
        assert_eq!(cycles, snap.cycles);
    }

    #[test]
    fn targets_get_stable_lanes_and_stages_lane_zero() {
        let snap = sample_snapshot();
        let json = to_chrome(&snap);
        let value: Value = serde_json::from_str(&json).unwrap();
        let Value::Array(events) = value else {
            panic!("not an array")
        };
        let mut lane_by_target: BTreeMap<String, u64> = BTreeMap::new();
        for ev in &events {
            let Value::Object(ev) = ev else { panic!() };
            let tid = ev.get("tid").unwrap().as_u64().unwrap();
            let Some(Value::Object(args)) = ev.get("args") else {
                panic!()
            };
            let target = args.get("target").unwrap().as_str().unwrap().to_string();
            if target.is_empty() {
                assert_eq!(tid, 0, "stage spans ride lane 0");
            } else {
                assert_ne!(tid, 0, "target spans get their own lanes");
                let prev = lane_by_target.entry(target).or_insert(tid);
                assert_eq!(*prev, tid, "same target, same lane across cycles");
            }
        }
        assert_eq!(lane_by_target.len(), 2);
    }

    #[test]
    fn rejects_non_array_and_wrong_phase() {
        assert!(from_chrome("{}").is_err());
        let ev = r#"[{"name":"x","ph":"B","ts":0,"dur":0,"pid":1,"tid":0,"args":{"id":1,"parent":0,"target":""}}]"#;
        assert!(from_chrome(ev).is_err());
    }
}
