//! Chrome trace-event export for [`TraceSnapshot`]s.
//!
//! `leakprofd trace --out cycles.json` writes the format that
//! `chrome://tracing` and Perfetto load directly: a JSON array of
//! complete (`"ph": "X"`) duration events. The mapping is:
//!
//! * `pid` — the daemon cycle number, so each retained cycle renders as
//!   its own process group in the viewer.
//! * `tid` — lane 0 for driver-side pipeline stages; each scrape target
//!   gets its own lane (assigned in first-seen order) so the fan-out is
//!   visible as parallel tracks.
//! * `ts` / `dur` — the span's start offset and duration in µs, which is
//!   the unit the trace-event format already uses.
//! * `args` — span id, parent id, target, then the span's own
//!   attributes. `id`, `parent`, `target`, `trace`, and `remote_parent`
//!   are reserved keys; the tracer never emits attributes under those
//!   names.
//!
//! [`from_chrome`] is the inverse, reconstructing [`CycleTrace`]s from
//! exported JSON. It exists so tests can prove the export is lossless
//! (`from_chrome(to_chrome(snap)) == snap.cycles`), and accepts only
//! what [`to_chrome`] emits — it is not a general trace-event parser.
//!
//! [`to_chrome_stitched`] merges snapshots from *several processes* into
//! one timeline: each snapshot becomes its own `pid` lane (named via
//! `process_name` metadata from the snapshot's service + version), span
//! timestamps are normalized onto a shared wall clock through each
//! snapshot's `epoch_unix_us`, and cross-process hops render as flow
//! arrows — a `ph:"s"` event at the client span that minted the hop id
//! and a `ph:"f"` event at the server span that recorded it as its
//! remote parent.

use crate::span::{CycleTrace, Span, TraceSnapshot};
use serde_json::{Map, Value};
use std::collections::BTreeMap;

/// Keys in `args` that carry span identity rather than user attributes.
const RESERVED: [&str; 5] = ["id", "parent", "target", "trace", "remote_parent"];

/// Renders the snapshot's retained cycles as a Chrome trace-event JSON
/// array (see the module docs for the mapping).
pub fn to_chrome(snapshot: &TraceSnapshot) -> String {
    let mut lanes: BTreeMap<&str, u64> = BTreeMap::new();
    let mut next_lane = 1u64;
    let mut events = Vec::new();
    for cycle in &snapshot.cycles {
        for span in &cycle.spans {
            let tid = if span.target.is_empty() {
                0
            } else {
                *lanes.entry(span.target.as_str()).or_insert_with(|| {
                    let lane = next_lane;
                    next_lane += 1;
                    lane
                })
            };
            let mut args = Map::new();
            args.insert("id", Value::U64(span.id));
            args.insert("parent", Value::U64(span.parent));
            args.insert("target", Value::Str(span.target.clone()));
            if let Some(trace) = &span.trace {
                args.insert("trace", Value::Str(trace.clone()));
            }
            if let Some(rp) = span.remote_parent {
                args.insert("remote_parent", Value::Str(format!("{rp:016x}")));
            }
            for (k, v) in &span.attrs {
                args.insert(k.clone(), Value::Str(v.clone()));
            }
            let mut ev = Map::new();
            ev.insert("name", Value::Str(span.stage.clone()));
            ev.insert("cat", Value::Str("leakprofd".to_string()));
            ev.insert("ph", Value::Str("X".to_string()));
            ev.insert("ts", Value::U64(span.start_us));
            ev.insert("dur", Value::U64(span.dur_us));
            ev.insert("pid", Value::U64(cycle.cycle));
            ev.insert("tid", Value::U64(tid));
            ev.insert("args", Value::Object(args));
            events.push(Value::Object(ev));
        }
    }
    serde_json::to_string(&Value::Array(events)).expect("trace events serialize")
}

/// Parses JSON produced by [`to_chrome`] back into cycle traces,
/// grouped by `pid` in first-seen order with span order preserved.
pub fn from_chrome(json: &str) -> Result<Vec<CycleTrace>, String> {
    let value: Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let Value::Array(events) = value else {
        return Err("trace export must be a JSON array".to_string());
    };
    let mut cycles: Vec<CycleTrace> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let Value::Object(ev) = ev else {
            return Err(at("not an object"));
        };
        let str_field = |key: &str| -> Result<String, String> {
            ev.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| at(&format!("missing string field {key:?}")))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            ev.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| at(&format!("missing integer field {key:?}")))
        };
        if str_field("ph")? != "X" {
            return Err(at("only complete (ph=X) events are supported"));
        }
        let Some(Value::Object(args)) = ev.get("args") else {
            return Err(at("missing args object"));
        };
        let arg_u64 = |key: &str| -> Result<u64, String> {
            args.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| at(&format!("missing integer arg {key:?}")))
        };
        let target = args
            .get("target")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing string arg \"target\""))?
            .to_string();
        let mut attrs = Vec::new();
        for (k, v) in args.iter() {
            if RESERVED.contains(&k.as_str()) {
                continue;
            }
            let v = v
                .as_str()
                .ok_or_else(|| at(&format!("attribute {k:?} is not a string")))?;
            attrs.push((k.clone(), v.to_string()));
        }
        let trace = match args.get("trace") {
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| at("arg \"trace\" is not a string"))?
                    .to_string(),
            ),
            None => None,
        };
        let remote_parent = match args.get("remote_parent") {
            Some(v) => {
                let hex = v
                    .as_str()
                    .ok_or_else(|| at("arg \"remote_parent\" is not a string"))?;
                Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| at("arg \"remote_parent\" is not hex"))?,
                )
            }
            None => None,
        };
        let span = Span {
            id: arg_u64("id")?,
            parent: arg_u64("parent")?,
            stage: str_field("name")?,
            target,
            start_us: u64_field("ts")?,
            dur_us: u64_field("dur")?,
            trace,
            remote_parent,
            attrs,
        };
        let cycle = u64_field("pid")?;
        match cycles.last_mut() {
            Some(c) if c.cycle == cycle => c.spans.push(span),
            _ => cycles.push(CycleTrace {
                cycle,
                spans: vec![span],
            }),
        }
    }
    Ok(cycles)
}

/// Merges per-process [`TraceSnapshot`]s into one Chrome trace-event
/// JSON array with per-process lanes and cross-process flow arrows.
///
/// Unlike [`to_chrome`] (whose `pid` is the cycle number, one viewer
/// process group per retained cycle), the stitched export assigns each
/// snapshot `pid = index + 1`, names it with `process_name` metadata
/// built from the snapshot's service and version, and moves the cycle
/// number into `args` so all of one process's cycles share a lane.
/// Timestamps are normalized onto a shared wall clock: each span's
/// `ts` becomes `epoch_unix_us − min(epoch_unix_us) + start_us`, so
/// processes line up the way they actually overlapped.
///
/// Cross-process hops become flow arrows bound on the hop id: every
/// span carrying a `hop` attribute (stamped by `Tracer::hop` on the
/// client side) emits a `ph:"s"` flow-start, and every span with a
/// `remote_parent` (recorded by `Tracer::start_remote` on the server
/// side) emits a `ph:"f"` flow-finish with `bp:"e"`, both under
/// `cat:"hop"` with `id` set to the 16-hex hop id.
pub fn to_chrome_stitched(snapshots: &[TraceSnapshot]) -> String {
    let min_epoch = snapshots
        .iter()
        .map(|s| s.epoch_unix_us)
        .filter(|&e| e > 0)
        .min()
        .unwrap_or(0);
    let mut events = Vec::new();
    for (i, snap) in snapshots.iter().enumerate() {
        let pid = i as u64 + 1;
        let base = snap.epoch_unix_us.saturating_sub(min_epoch);
        let name = if snap.version.is_empty() {
            snap.service.clone()
        } else {
            format!("{} v{}", snap.service, snap.version)
        };
        let mut meta_args = Map::new();
        meta_args.insert("name", Value::Str(name));
        let mut meta = Map::new();
        meta.insert("name", Value::Str("process_name".to_string()));
        meta.insert("ph", Value::Str("M".to_string()));
        meta.insert("pid", Value::U64(pid));
        meta.insert("tid", Value::U64(0));
        meta.insert("args", Value::Object(meta_args));
        events.push(Value::Object(meta));

        let mut lanes: BTreeMap<&str, u64> = BTreeMap::new();
        let mut next_lane = 1u64;
        for cycle in &snap.cycles {
            for span in &cycle.spans {
                let tid = if span.target.is_empty() {
                    0
                } else {
                    *lanes.entry(span.target.as_str()).or_insert_with(|| {
                        let lane = next_lane;
                        next_lane += 1;
                        lane
                    })
                };
                let ts = base + span.start_us;
                let mut args = Map::new();
                args.insert("id", Value::U64(span.id));
                args.insert("parent", Value::U64(span.parent));
                args.insert("target", Value::Str(span.target.clone()));
                args.insert("cycle", Value::U64(cycle.cycle));
                if let Some(trace) = &span.trace {
                    args.insert("trace", Value::Str(trace.clone()));
                }
                if let Some(rp) = span.remote_parent {
                    args.insert("remote_parent", Value::Str(format!("{rp:016x}")));
                }
                let mut hop_out = None;
                for (k, v) in &span.attrs {
                    if k == "hop" {
                        hop_out = Some(v.clone());
                    }
                    args.insert(k.clone(), Value::Str(v.clone()));
                }
                let mut ev = Map::new();
                ev.insert("name", Value::Str(span.stage.clone()));
                ev.insert("cat", Value::Str("leakprofd".to_string()));
                ev.insert("ph", Value::Str("X".to_string()));
                ev.insert("ts", Value::U64(ts));
                ev.insert("dur", Value::U64(span.dur_us));
                ev.insert("pid", Value::U64(pid));
                ev.insert("tid", Value::U64(tid));
                ev.insert("args", Value::Object(args));
                events.push(Value::Object(ev));

                if let Some(hop) = hop_out {
                    events.push(flow_event("s", &hop, pid, tid, ts));
                }
                if let Some(rp) = span.remote_parent {
                    let mut f = flow_event("f", &format!("{rp:016x}"), pid, tid, ts);
                    if let Value::Object(f) = &mut f {
                        f.insert("bp", Value::Str("e".to_string()));
                    }
                    events.push(f);
                }
            }
        }
    }
    serde_json::to_string(&Value::Array(events)).expect("trace events serialize")
}

/// One flow event (`ph:"s"` or `ph:"f"`) binding on a hex hop id.
fn flow_event(ph: &str, id: &str, pid: u64, tid: u64, ts: u64) -> Value {
    let mut ev = Map::new();
    ev.insert("name", Value::Str("hop".to_string()));
    ev.insert("cat", Value::Str("hop".to_string()));
    ev.insert("ph", Value::Str(ph.to_string()));
    ev.insert("id", Value::Str(id.to_string()));
    ev.insert("ts", Value::U64(ts));
    ev.insert("pid", Value::U64(pid));
    ev.insert("tid", Value::U64(tid));
    Value::Object(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{stage, TraceConfig, Tracer};

    fn sample_snapshot() -> TraceSnapshot {
        let t = Tracer::new(&TraceConfig::default());
        for cycle in 1..=2 {
            let root = t.start(stage::CYCLE, "");
            t.set_ambient(root.id());
            let scrape = t.start(stage::SCRAPE, "");
            for target in ["svc-a", "svc-b"] {
                let mut g = t.start_with(stage::TARGET, target, scrape.id());
                g.attr("attempts", 1);
            }
            drop(scrape);
            t.start(stage::ANALYZE, "").finish();
            t.set_ambient(0);
            drop(root);
            t.finish_cycle(cycle);
        }
        t.snapshot()
    }

    #[test]
    fn export_round_trips() {
        let snap = sample_snapshot();
        let json = to_chrome(&snap);
        let cycles = from_chrome(&json).expect("parse own export");
        assert_eq!(cycles, snap.cycles);
    }

    #[test]
    fn targets_get_stable_lanes_and_stages_lane_zero() {
        let snap = sample_snapshot();
        let json = to_chrome(&snap);
        let value: Value = serde_json::from_str(&json).unwrap();
        let Value::Array(events) = value else {
            panic!("not an array")
        };
        let mut lane_by_target: BTreeMap<String, u64> = BTreeMap::new();
        for ev in &events {
            let Value::Object(ev) = ev else { panic!() };
            let tid = ev.get("tid").unwrap().as_u64().unwrap();
            let Some(Value::Object(args)) = ev.get("args") else {
                panic!()
            };
            let target = args.get("target").unwrap().as_str().unwrap().to_string();
            if target.is_empty() {
                assert_eq!(tid, 0, "stage spans ride lane 0");
            } else {
                assert_ne!(tid, 0, "target spans get their own lanes");
                let prev = lane_by_target.entry(target).or_insert(tid);
                assert_eq!(*prev, tid, "same target, same lane across cycles");
            }
        }
        assert_eq!(lane_by_target.len(), 2);
    }

    #[test]
    fn rejects_non_array_and_wrong_phase() {
        assert!(from_chrome("{}").is_err());
        let ev = r#"[{"name":"x","ph":"B","ts":0,"dur":0,"pid":1,"tid":0,"args":{"id":1,"parent":0,"target":""}}]"#;
        assert!(from_chrome(ev).is_err());
    }

    #[test]
    fn export_round_trips_trace_identity() {
        let t = Tracer::new(&TraceConfig::default());
        let ctx = t.begin_cycle().unwrap();
        let mut client = t.start(stage::TARGET, "peer");
        let hop = t.hop(&mut client).unwrap();
        drop(client);
        let serve = t.start_remote(stage::SERVE, "/api/push", &hop);
        drop(serve);
        t.finish_cycle(1);
        let snap = t.snapshot();
        let cycles = from_chrome(&to_chrome(&snap)).expect("parse own export");
        assert_eq!(cycles, snap.cycles, "trace + remote_parent survive");
        assert_eq!(
            cycles[0].spans[0].trace.as_deref(),
            Some(ctx.trace_id.as_str())
        );
        assert_eq!(cycles[0].spans[1].remote_parent, Some(hop.parent_span));
    }

    /// Two processes linked by one hop stitch into one timeline with
    /// per-process lanes and a matched flow-arrow pair.
    #[test]
    fn stitched_export_has_process_lanes_and_flow_arrows() {
        let client = Tracer::new(&TraceConfig::default());
        client.set_service("fleet", "0.9");
        let ctx = client.begin_cycle().unwrap();
        let mut poll = client.start(stage::TARGET, "shard-0");
        let hop = client.hop(&mut poll).unwrap();
        drop(poll);
        client.finish_cycle(7);

        let server = Tracer::new(&TraceConfig::default());
        server.set_service("leakprofd shard 0/3", "0.9");
        let g = server.start_remote(stage::SERVE, "/api/snapshot", &hop);
        drop(g);
        server.finish_cycle(3);

        let json = to_chrome_stitched(&[client.snapshot(), server.snapshot()]);
        let Value::Array(events) = serde_json::from_str(&json).unwrap() else {
            panic!("not an array")
        };

        // Process-name metadata names each pid lane.
        let mut names: BTreeMap<u64, String> = BTreeMap::new();
        for ev in &events {
            let Value::Object(ev) = ev else { panic!() };
            if ev.get("ph").unwrap().as_str() == Some("M") {
                let pid = ev.get("pid").unwrap().as_u64().unwrap();
                let Some(Value::Object(args)) = ev.get("args") else {
                    panic!()
                };
                names.insert(pid, args.get("name").unwrap().as_str().unwrap().to_string());
            }
        }
        assert_eq!(names.get(&1).map(String::as_str), Some("fleet v0.9"));
        assert_eq!(
            names.get(&2).map(String::as_str),
            Some("leakprofd shard 0/3 v0.9")
        );

        // Exactly one matched s/f flow pair, crossing process lanes.
        let flows: Vec<&Map> = events
            .iter()
            .filter_map(|ev| match ev {
                Value::Object(ev) if ev.get("cat").and_then(Value::as_str) == Some("hop") => {
                    Some(ev)
                }
                _ => None,
            })
            .collect();
        assert_eq!(flows.len(), 2);
        let start = flows
            .iter()
            .find(|f| f.get("ph").unwrap().as_str() == Some("s"))
            .expect("flow start");
        let finish = flows
            .iter()
            .find(|f| f.get("ph").unwrap().as_str() == Some("f"))
            .expect("flow finish");
        assert_eq!(start.get("id"), finish.get("id"));
        assert_eq!(
            start.get("id").unwrap().as_str().unwrap(),
            format!("{:016x}", hop.parent_span)
        );
        assert_eq!(start.get("pid").unwrap().as_u64(), Some(1));
        assert_eq!(finish.get("pid").unwrap().as_u64(), Some(2));
        assert_eq!(finish.get("bp").unwrap().as_str(), Some("e"));

        // Span events: pid marks the process, the cycle moved to args,
        // and both sides carry the shared trace id.
        let xs: Vec<&Map> = events
            .iter()
            .filter_map(|ev| match ev {
                Value::Object(ev) if ev.get("ph").unwrap().as_str() == Some("X") => Some(ev),
                _ => None,
            })
            .collect();
        assert_eq!(xs.len(), 2);
        for x in &xs {
            let Some(Value::Object(args)) = x.get("args") else {
                panic!()
            };
            assert_eq!(
                args.get("trace").unwrap().as_str(),
                Some(ctx.trace_id.as_str())
            );
        }
        let Some(Value::Object(args)) = xs[0].get("args") else {
            panic!()
        };
        assert_eq!(args.get("cycle").unwrap().as_u64(), Some(7));
    }
}
