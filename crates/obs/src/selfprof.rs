//! The dogfood loop: leakprofd profiles itself in the format it scrapes.
//!
//! The daemon's worker threads register on a [`WorkerBoard`] and report
//! which state they are in (idle / connect / read / parse / analyze)
//! and at which source site. [`WorkerBoard::self_profile`] renders the
//! board as a [`gosim::GoroutineProfile`] — the *same* JSON document the
//! scraped instances serve at `/debug/pprof/goroutine` — so pointing
//! `leakprofd scrape-once` at a running daemon's `/debug/self` endpoint
//! produces a leak ranking over the daemon's own blocking sites.
//!
//! The mapping is a Go-equivalence argument, not a fake: each Rust wait
//! is rendered as the channel operation an equivalent Go daemon would
//! block on, with the synthetic `runtime.gopark` + discriminator frames
//! that `leakprof::signature::blocked_op` keys on:
//!
//! * [`WorkerState::Idle`] — parked on a ticker/queue receive →
//!   `chan receive` (`runtime.chanrecv1`): a Go worker waiting on its
//!   work channel.
//! * [`WorkerState::Connect`] / [`WorkerState::Read`] — blocked in the
//!   network with a timeout → `select` over {I/O ready, timer}
//!   (`runtime.selectgo`, 2 cases): exactly how Go code waits on a conn
//!   with a deadline.
//! * [`WorkerState::Parse`] / [`WorkerState::Analyze`] — on-CPU →
//!   `Running`, no runtime frames; the leak analyzer ignores these,
//!   which is correct: a thread crunching data is not leaked.
//!
//! Sites are captured with the [`site!`] macro (`file!()` / `line!()`),
//! so the ranking points at real lines in this repository.

use gosim::{Frame, Gid, GoStatus, GoroutineProfile, GoroutineRecord, Loc};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A source site a worker can block at. Built with the [`site!`] macro
/// so `file`/`line` are the real Rust source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Function-style label rendered as the profile's user frame, e.g.
    /// `collector::scrape::scrape_target`.
    pub func: &'static str,
    /// Source file (from `file!()`).
    pub file: &'static str,
    /// Source line (from `line!()`).
    pub line: u32,
}

/// Captures a [`Site`] at the macro invocation's `file!()`/`line!()`.
#[macro_export]
macro_rules! site {
    ($func:expr) => {
        $crate::selfprof::Site {
            func: $func,
            file: file!(),
            line: line!(),
        }
    };
}

/// What a registered worker is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Parked waiting for work (queue receive, ticker sleep).
    Idle,
    /// Blocked establishing an outbound connection.
    Connect,
    /// Blocked reading from a connection.
    Read,
    /// On-CPU parsing a fetched profile.
    Parse,
    /// On-CPU analyzing / ranking.
    Analyze,
}

struct Entry {
    name: String,
    created_by: Site,
    state: WorkerState,
    site: Site,
    since: Instant,
}

struct BoardInner {
    next_gid: AtomicU64,
    entries: Mutex<BTreeMap<u64, Entry>>,
    epoch: Instant,
}

/// Registry of the daemon's own worker threads and their wait states.
/// Cheap to clone; all clones share one board.
#[derive(Clone)]
pub struct WorkerBoard {
    inner: Arc<BoardInner>,
}

impl Default for WorkerBoard {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerBoard {
    /// Creates an empty board.
    pub fn new() -> WorkerBoard {
        WorkerBoard {
            inner: Arc::new(BoardInner {
                next_gid: AtomicU64::new(1),
                entries: Mutex::new(BTreeMap::new()),
                epoch: Instant::now(),
            }),
        }
    }

    /// Registers a worker thread. `name` is the goroutine-style root
    /// function name; `spawned_at` is where the thread was spawned
    /// (rendered as the profile's `created by` frame). The worker starts
    /// [`WorkerState::Idle`] at `spawned_at`; drop the handle to
    /// deregister.
    pub fn register(&self, name: &str, spawned_at: Site) -> WorkerHandle {
        let gid = self.inner.next_gid.fetch_add(1, Ordering::Relaxed);
        self.inner.entries.lock().unwrap().insert(
            gid,
            Entry {
                name: name.to_string(),
                created_by: spawned_at,
                state: WorkerState::Idle,
                site: spawned_at,
                since: Instant::now(),
            },
        );
        WorkerHandle {
            board: Arc::clone(&self.inner),
            gid,
        }
    }

    /// Number of currently registered workers.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().unwrap().len()
    }

    /// True when no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots the board as a goroutine profile for `instance` — the
    /// same document shape scraped instances serve (see module docs for
    /// the state → status mapping).
    pub fn self_profile(&self, instance: &str) -> GoroutineProfile {
        let entries = self.inner.entries.lock().unwrap();
        let captured_at = self.inner.epoch.elapsed().as_micros() as u64;
        let goroutines = entries
            .iter()
            .map(|(&gid, e)| {
                let user = Frame::new(e.func_label(), Loc::new(e.site.file, e.site.line));
                let (status, stack) = match e.state {
                    WorkerState::Idle => (
                        GoStatus::ChanReceive { nil_chan: false },
                        vec![
                            Frame::runtime("runtime.gopark"),
                            Frame::runtime("runtime.chanrecv1"),
                            user,
                        ],
                    ),
                    WorkerState::Connect | WorkerState::Read => (
                        GoStatus::Select { ncases: 2 },
                        vec![
                            Frame::runtime("runtime.gopark"),
                            Frame::runtime("runtime.selectgo"),
                            user,
                        ],
                    ),
                    WorkerState::Parse | WorkerState::Analyze => (GoStatus::Running, vec![user]),
                };
                GoroutineRecord {
                    gid: Gid(gid),
                    name: e.name.clone(),
                    status,
                    stack,
                    created_by: Frame::new(
                        format!("{}::spawn", e.name),
                        Loc::new(e.created_by.file, e.created_by.line),
                    ),
                    wait_ticks: e.since.elapsed().as_micros() as u64,
                    retained_bytes: 0,
                }
            })
            .collect();
        GoroutineProfile {
            instance: instance.to_string(),
            captured_at,
            goroutines,
        }
    }
}

impl Entry {
    fn func_label(&self) -> String {
        let verb = match self.state {
            WorkerState::Idle => "idle",
            WorkerState::Connect => "connect",
            WorkerState::Read => "read",
            WorkerState::Parse => "parse",
            WorkerState::Analyze => "analyze",
        };
        format!("{}.{}", self.site.func, verb)
    }
}

/// One registered worker's handle; report state transitions through it.
/// Dropping the handle removes the worker from the board.
pub struct WorkerHandle {
    board: Arc<BoardInner>,
    gid: u64,
}

impl WorkerHandle {
    /// Records that this worker entered `state` at `site` now.
    pub fn set(&self, state: WorkerState, site: Site) {
        if let Some(e) = self.board.entries.lock().unwrap().get_mut(&self.gid) {
            e.state = state;
            e.site = site;
            e.since = Instant::now();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.board.entries.lock().unwrap().remove(&self.gid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakprof::signature::{blocked_op, ChanOpKind};

    #[test]
    fn idle_worker_ranks_as_chan_receive_at_its_site() {
        let board = WorkerBoard::new();
        let spawn = site!("test::spawn_loop");
        let h = board.register("test::worker", spawn);
        let wait = site!("test::worker_loop");
        h.set(WorkerState::Idle, wait);

        let prof = board.self_profile("leakprofd");
        assert_eq!(prof.goroutines.len(), 1);
        let rec = &prof.goroutines[0];
        assert_eq!(rec.status, GoStatus::ChanReceive { nil_chan: false });
        let op = blocked_op(rec).expect("idle worker must match the leak signature");
        assert_eq!(op.kind, ChanOpKind::Recv);
        assert_eq!(op.loc.line, wait.line);
        assert!(op.loc.file.contains("selfprof.rs"));
        assert_eq!(rec.created_by.loc.line, spawn.line);
    }

    #[test]
    fn io_states_rank_as_select_and_cpu_states_do_not_rank() {
        let board = WorkerBoard::new();
        let h = board.register("w", site!("test::spawn"));
        for (state, want) in [
            (WorkerState::Connect, Some(ChanOpKind::Select)),
            (WorkerState::Read, Some(ChanOpKind::Select)),
            (WorkerState::Parse, None),
            (WorkerState::Analyze, None),
        ] {
            h.set(state, site!("test::op"));
            let prof = board.self_profile("leakprofd");
            let got = blocked_op(&prof.goroutines[0]).map(|op| op.kind);
            assert_eq!(got, want, "state {state:?}");
        }
    }

    #[test]
    fn profile_round_trips_through_json_like_a_scraped_instance() {
        let board = WorkerBoard::new();
        let h = board.register("w", site!("test::spawn"));
        h.set(WorkerState::Idle, site!("test::recv"));
        let prof = board.self_profile("leakprofd");
        let json = serde_json::to_string(&prof).unwrap();
        let back: GoroutineProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back.instance, "leakprofd");
        assert_eq!(back.goroutines.len(), 1);
        assert!(blocked_op(&back.goroutines[0]).is_some());
    }

    #[test]
    fn dropping_the_handle_deregisters() {
        let board = WorkerBoard::new();
        let h = board.register("w", site!("s"));
        assert_eq!(board.len(), 1);
        drop(h);
        assert!(board.is_empty());
        assert!(board.self_profile("x").is_empty());
    }

    #[test]
    fn wait_ticks_grow_while_parked() {
        let board = WorkerBoard::new();
        let h = board.register("w", site!("s"));
        h.set(WorkerState::Idle, site!("recv"));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let prof = board.self_profile("x");
        assert!(prof.goroutines[0].wait_ticks >= 1_000);
    }
}
