//! Executor edge cases: defer ordering, nested control flow,
//! select bindings, evaluation failures, and aggregated profiles.

use gosim::script::{fnb, Expr, Prog};
use gosim::{GoStatus, Runtime, Val};

fn run(prog: &Prog, seed: u64) -> Runtime {
    let mut rt = Runtime::with_seed(seed);
    prog.spawn_main(&mut rt);
    rt.advance(10_000, 500_000);
    rt
}

#[test]
fn defers_run_lifo() {
    // Three deferred sends into a buffered channel; the receive order
    // proves LIFO execution.
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 3, 1);
            b.call(None, "producer", vec![Expr::var("ch")], 2);
            b.recv_into("a", "ch", 3);
            b.recv_into("bv", "ch", 4);
            b.recv_into("c", "ch", 5);
            // expect 3, 2, 1
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("a")),
                    Box::new(Expr::int(3)),
                ),
                6,
                |t| {
                    t.panic_("first deferred send must be the last registered", 6);
                },
            );
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("c")),
                    Box::new(Expr::int(1)),
                ),
                7,
                |t| {
                    t.panic_("last received must be the first registered", 7);
                },
            );
        }));
        p.func(fnb("producer", "m.go").params(&["ch"]).body(|b| {
            b.raw(gosim::script::Stmt::Defer {
                stmt: Box::new(gosim::script::Stmt::Send {
                    ch: Expr::var("ch"),
                    val: Expr::int(1),
                    loc: gosim::Loc::new("m.go", 10),
                }),
                loc: gosim::Loc::new("m.go", 10),
            });
            b.raw(gosim::script::Stmt::Defer {
                stmt: Box::new(gosim::script::Stmt::Send {
                    ch: Expr::var("ch"),
                    val: Expr::int(2),
                    loc: gosim::Loc::new("m.go", 11),
                }),
                loc: gosim::Loc::new("m.go", 11),
            });
            b.raw(gosim::script::Stmt::Defer {
                stmt: Box::new(gosim::script::Stmt::Send {
                    ch: Expr::var("ch"),
                    val: Expr::int(3),
                    loc: gosim::Loc::new("m.go", 12),
                }),
                loc: gosim::Loc::new("m.go", 12),
            });
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 0, "{:?}", rt.exits());
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn break_and_continue_in_nested_loops() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.assign("count", Val::Int(0), 1);
            b.for_n("i", Expr::int(4), 2, |outer| {
                outer.for_n("j", Expr::int(4), 3, |inner| {
                    // continue skips even j; break stops at j == 3
                    inner.if_(
                        Expr::Bin(
                            gosim::script::BinOp::Eq,
                            Box::new(Expr::Bin(
                                gosim::script::BinOp::Mod,
                                Box::new(Expr::var("j")),
                                Box::new(Expr::int(2)),
                            )),
                            Box::new(Expr::int(0)),
                        ),
                        4,
                        |t| {
                            t.cont(4);
                        },
                    );
                    inner.if_(
                        Expr::Bin(
                            gosim::script::BinOp::Eq,
                            Box::new(Expr::var("j")),
                            Box::new(Expr::int(3)),
                        ),
                        5,
                        |t| {
                            t.brk(5);
                        },
                    );
                    inner.assign(
                        "count",
                        Expr::Bin(
                            gosim::script::BinOp::Add,
                            Box::new(Expr::var("count")),
                            Box::new(Expr::int(1)),
                        ),
                        6,
                    );
                });
            });
            // per outer iteration only j == 1 increments: 4 total
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("count")),
                    Box::new(Expr::int(4)),
                ),
                8,
                |t| {
                    t.panic_("nested break/continue miscounted", 8);
                },
            );
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 0, "{:?}", rt.exits());
}

#[test]
fn select_recv_ok_arm_binds_both_values() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 1, 1);
            b.close("ch", 2);
            b.select(3, |s| {
                s.recv_ok_arm("v", "ok", "ch", 4, |arm| {
                    arm.if_(Expr::var("ok"), 5, |t| {
                        t.panic_("closed channel must yield ok=false", 5);
                    });
                    arm.if_(
                        Expr::Bin(
                            gosim::script::BinOp::Ne,
                            Box::new(Expr::var("v")),
                            Box::new(Expr::int(0)),
                        ),
                        6,
                        |t| {
                            t.panic_("closed channel must yield the zero value", 6);
                        },
                    );
                });
            });
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 0, "{:?}", rt.exits());
}

#[test]
fn undefined_variable_panics_the_goroutine_only() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.go_closure(2, |g| {
                g.send("never_defined", Expr::int(1), 3);
            });
            b.work(Expr::int(1), 5);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 1);
    assert!(rt.exits().iter().any(|e| e
        .panic
        .as_deref()
        .unwrap_or("")
        .contains("undefined variable")));
    // main itself completed fine
    assert!(rt
        .exits()
        .iter()
        .any(|e| e.name == "main" && e.panic.is_none()));
}

#[test]
fn division_by_zero_is_a_clean_panic() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.assign(
                "x",
                Expr::Bin(
                    gosim::script::BinOp::Div,
                    Box::new(Expr::int(1)),
                    Box::new(Expr::int(0)),
                ),
                2,
            );
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 1);
    assert!(rt.exits()[0]
        .panic
        .as_deref()
        .unwrap()
        .contains("divide by zero"));
}

#[test]
fn aggregated_profile_groups_identical_stacks() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("dead", 0, 1);
            b.for_n("i", Expr::int(50), 2, |l| {
                l.go_closure(3, |g| {
                    g.recv("dead", 4);
                });
            });
            b.go_closure(6, |g| {
                g.send("dead2_undefined_guard", Expr::int(0), 7); // panics
            });
            b.make_chan("other", 0, 8);
            b.recv("other", 9);
        }));
    });
    let rt = run(&prog, 0);
    let profile = rt.goroutine_profile("agg");
    let agg = profile.render_aggregated();
    // 50 identical receivers collapse into one group of 50.
    assert!(agg.contains("50 @ [chan receive]"), "{agg}");
    assert!(agg.contains("goroutine profile: total 51"), "{agg}");
    // The long form lists all goroutines individually (header excluded).
    let long = profile.render();
    assert_eq!(
        long.lines().filter(|l| l.starts_with("goroutine ")).count(),
        51
    );
}

#[test]
fn nested_closures_get_hierarchical_names() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("dead", 0, 1);
            b.go_closure(2, |outer| {
                outer.go_closure(3, |inner| {
                    inner.recv("dead", 4);
                });
                outer.recv("dead", 5);
            });
        }));
    });
    let rt = run(&prog, 0);
    let profile = rt.goroutine_profile("t");
    let names: Vec<&str> = profile.goroutines.iter().map(|g| g.name.as_str()).collect();
    assert!(names.contains(&"main$1"), "{names:?}");
    assert!(names.contains(&"main$2"), "{names:?}");
    // The inner goroutine's creator is the outer closure.
    let inner = profile
        .goroutines
        .iter()
        .find(|g| g.name == "main$2")
        .unwrap();
    assert_eq!(inner.created_by.func, "main$1");
}

#[test]
fn zero_capacity_channel_via_dyn_expr() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.assign("n", Val::Int(0), 1);
            b.make_chan_dyn("ch", Expr::var("n"), 2);
            b.go_closure(3, |g| {
                g.send("ch", Expr::int(1), 4);
            });
            b.recv("ch", 6);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().msgs_transferred, 1);
}

#[test]
fn negative_channel_capacity_panics_like_go() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.assign("n", Val::Int(-1), 1);
            b.make_chan_dyn("ch", Expr::var("n"), 2);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 1);
    assert!(rt.exits()[0]
        .panic
        .as_deref()
        .unwrap()
        .contains("size out of range"));
}

#[test]
fn profile_status_mix_is_deterministic_per_seed() {
    let build = || {
        Prog::build(|p| {
            p.func(fnb("main", "m.go").body(|b| {
                b.make_chan("a", 1, 1);
                b.make_chan("bch", 1, 2);
                b.send("a", Expr::int(1), 3);
                b.send("bch", Expr::int(2), 4);
                b.select(5, |s| {
                    s.recv_arm(Some("x"), "a", 6, |_| {});
                    s.recv_arm(Some("y"), "bch", 7, |_| {});
                });
                b.make_chan("dead", 0, 9);
                b.recv("dead", 10);
            }));
        })
    };
    let statuses = |seed| {
        let rt = run(&build(), seed);
        rt.goroutine_profile("d")
            .goroutines
            .iter()
            .map(|g| g.status)
            .collect::<Vec<_>>()
    };
    assert_eq!(statuses(11), statuses(11));
    assert_eq!(
        statuses(11),
        vec![GoStatus::ChanReceive { nil_chan: false }]
    );
}
