//! Integration tests: virtual time (timers, tickers, contexts) and sync
//! primitives (wait groups, mutexes, condition variables), plus defer and
//! call/return semantics.

use gosim::script::{fnb, Expr, Prog};
use gosim::{GoStatus, ParkReason, Runtime, Val};

fn advance_run(prog: &Prog, seed: u64, ticks: u64) -> Runtime {
    let mut rt = Runtime::with_seed(seed);
    prog.spawn_main(&mut rt);
    rt.advance(ticks, 1_000_000);
    rt
}

#[test]
fn sleep_wakes_after_duration() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.sleep(Expr::int(50), 1);
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(100);
    assert_eq!(rt.live_count(), 1);
    assert_eq!(
        rt.goroutine_profile("t").goroutines[0].status,
        GoStatus::Sleep
    );
    rt.advance(49, 1000);
    assert_eq!(rt.live_count(), 1, "not yet due");
    rt.advance(1, 1000);
    assert_eq!(rt.live_count(), 0, "woke at tick 50");
}

#[test]
fn time_after_fires_once() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.after("t", Expr::int(10), 1);
            b.recv("t", 2);
        }));
    });
    let rt = advance_run(&prog, 0, 100);
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn infinite_timer_loop_is_a_runaway_goroutine() {
    // Listing 4 of the paper: the statsReporter anti-pattern. The goroutine
    // never leaks permanently (it wakes each period) but never terminates.
    let prog = Prog::build(|p| {
        p.func(fnb("pkg.statsReporter", "pkg/stats.go").body(|b| {
            b.go_closure(2, |g| {
                g.loop_(3, |l| {
                    l.after("t", Expr::int(10), 4);
                    l.recv("t", 4);
                    l.work(Expr::int(1), 5);
                });
            });
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_func(&mut rt, "pkg.statsReporter", vec![]);
    rt.advance(1000, 1_000_000);
    assert_eq!(rt.live_count(), 1, "reporter goroutine never exits");
    // At quiescence it is blocked receiving from the timer channel.
    let g = &rt.goroutine_profile("t").goroutines[0];
    assert_eq!(g.status, GoStatus::ChanReceive { nil_chan: false });
    assert_eq!(g.blocking_frame().unwrap().loc.line, 4);
}

#[test]
fn tick_channel_fires_periodically_and_drops_missed_ticks() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.tick("t", Expr::int(10), 1);
            b.assign("n", Val::Int(0), 2);
            b.for_n("i", Expr::int(3), 3, |l| {
                l.recv("t", 4);
                l.assign(
                    "n",
                    Expr::Bin(
                        gosim::script::BinOp::Add,
                        Box::new(Expr::var("n")),
                        Box::new(Expr::int(1)),
                    ),
                    5,
                );
            });
        }));
    });
    let rt = advance_run(&prog, 0, 200);
    assert_eq!(rt.live_count(), 0, "three ticks received, main exits");
}

#[test]
fn context_timeout_closes_done_channel() {
    // Listing 8: the timeout leak — and its fix via buffered channel.
    let leaky = Prog::build(|p| {
        p.func(fnb("pkg.Handler", "pkg/h.go").body(|b| {
            b.ctx_with_timeout("ctx", "cancel", Expr::int(5), 1);
            b.make_chan("ch", 0, 2);
            b.go_closure(3, |g| {
                g.sleep(Expr::int(50), 4); // item takes longer than deadline
                g.send("ch", Expr::int(1), 4);
            });
            b.select(6, |s| {
                s.recv_arm(Some("item"), "ch", 7, |_| {});
                s.recv_arm(None, "ctx", 8, |arm| {
                    arm.ret(8);
                });
            });
        }));
    });
    let mut rt = Runtime::with_seed(1);
    leaky.spawn_func(&mut rt, "pkg.Handler", vec![]);
    rt.advance(200, 1_000_000);
    assert_eq!(rt.live_count(), 1, "sender leaks after ctx timeout");
    assert_eq!(
        rt.goroutine_profile("t").goroutines[0].status,
        GoStatus::ChanSend { nil_chan: false }
    );

    let fixed = Prog::build(|p| {
        p.func(fnb("pkg.Handler", "pkg/h.go").body(|b| {
            b.ctx_with_timeout("ctx", "cancel", Expr::int(5), 1);
            b.make_chan("ch", 1, 2); // fix: capacity one
            b.go_closure(3, |g| {
                g.sleep(Expr::int(50), 4);
                g.send("ch", Expr::int(1), 4);
            });
            b.select(6, |s| {
                s.recv_arm(Some("item"), "ch", 7, |_| {});
                s.recv_arm(None, "ctx", 8, |arm| {
                    arm.ret(8);
                });
            });
        }));
    });
    let mut rt2 = Runtime::with_seed(1);
    fixed.spawn_func(&mut rt2, "pkg.Handler", vec![]);
    rt2.advance(200, 1_000_000);
    assert_eq!(
        rt2.live_count(),
        0,
        "buffered channel absorbs the late send"
    );
}

#[test]
fn cancel_is_idempotent() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.ctx_with_cancel("ctx", "cancel", 1);
            b.cancel("cancel", 2);
            b.cancel("cancel", 3); // double cancel must not panic
            b.recv_ok("v", "ok", "ctx", 4);
            b.if_(Expr::var("ok"), 5, |t| {
                t.panic_("done channel must be closed", 5);
            });
        }));
    });
    let rt = advance_run(&prog, 0, 10);
    assert_eq!(rt.stats().panicked, 0, "{:?}", rt.exits());
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn method_contract_violation_leaks_listener() {
    // Listing 6: Start without Stop leaks the worker's select loop.
    let build = |call_stop: bool| {
        Prog::build(move |p| {
            p.func(fnb("pkg.Use", "pkg/w.go").body(|b| {
                b.make_chan("ch", 0, 24);
                b.make_chan("done", 0, 24);
                // Start
                b.go_closure(7, |g| {
                    g.loop_(8, |l| {
                        l.select(9, |s| {
                            s.recv_arm(None, "ch", 10, |arm| {
                                arm.work(Expr::int(1), 10);
                            });
                            s.recv_arm(None, "done", 11, |arm| {
                                arm.ret(12);
                            });
                        });
                    });
                });
                if call_stop {
                    b.close("done", 19); // Stop()
                }
            }));
        })
    };
    let mut leak_rt = Runtime::with_seed(0);
    build(false).spawn_func(&mut leak_rt, "pkg.Use", vec![]);
    leak_rt.run_until_blocked(10_000);
    assert_eq!(leak_rt.live_count(), 1);
    assert_eq!(
        leak_rt.goroutine_profile("t").goroutines[0].status,
        GoStatus::Select { ncases: 2 }
    );

    let mut ok_rt = Runtime::with_seed(0);
    build(true).spawn_func(&mut ok_rt, "pkg.Use", vec![]);
    ok_rt.run_until_blocked(10_000);
    assert_eq!(ok_rt.live_count(), 0);
}

#[test]
fn waitgroup_waits_for_all_children() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_wg("wg", 1);
            b.wg_add("wg", Expr::int(3), 2);
            b.for_n("i", Expr::int(3), 3, |l| {
                l.go_closure(4, |g| {
                    g.sleep(Expr::int(5), 5);
                    g.wg_done("wg", 6);
                });
            });
            b.wg_wait("wg", 8);
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(10_000);
    assert_eq!(rt.live_count(), 4, "main waits, children sleep");
    assert_eq!(
        rt.goroutine_profile("t").goroutines[0].status,
        GoStatus::SemAcquire
    );
    rt.advance(10, 10_000);
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn forgotten_wg_done_leaks_waiter() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_wg("wg", 1);
            b.wg_add("wg", Expr::int(2), 2);
            b.go_closure(3, |g| {
                g.wg_done("wg", 4);
            });
            // second Done never happens
            b.wg_wait("wg", 6);
        }));
    });
    let rt = advance_run(&prog, 0, 100);
    assert_eq!(rt.live_count(), 1);
    assert_eq!(
        rt.goroutine_profile("t").goroutines[0].status,
        GoStatus::SemAcquire
    );
}

#[test]
fn negative_waitgroup_counter_panics() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_wg("wg", 1);
            b.wg_done("wg", 2);
        }));
    });
    let rt = advance_run(&prog, 0, 10);
    assert_eq!(rt.stats().panicked, 1);
    assert!(rt.exits()[0]
        .panic
        .as_deref()
        .unwrap()
        .contains("negative WaitGroup"));
}

#[test]
fn mutex_provides_mutual_exclusion_and_queues_waiters() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_mutex("mu", 1);
            b.lock("mu", 2);
            b.go_closure(3, |g| {
                g.lock("mu", 4); // must wait until main unlocks
                g.unlock("mu", 5);
            });
            b.sleep(Expr::int(5), 7);
            b.unlock("mu", 8);
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(10_000);
    // child is blocked in semacquire while main sleeps
    let blocked = rt
        .goroutine_profile("t")
        .goroutines
        .iter()
        .filter(|g| g.status == GoStatus::SemAcquire)
        .count();
    assert_eq!(blocked, 1);
    rt.advance(10, 10_000);
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn forgotten_unlock_deadlocks_second_locker() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_mutex("mu", 1);
            b.go_closure(2, |g| {
                g.lock("mu", 3);
                // missing unlock
            });
            b.sleep(Expr::int(5), 5);
            b.lock("mu", 6); // blocks forever
        }));
    });
    let rt = advance_run(&prog, 0, 100);
    assert_eq!(rt.live_count(), 1);
    assert_eq!(
        rt.goroutine_profile("t").goroutines[0].status,
        GoStatus::SemAcquire
    );
}

#[test]
fn io_park_shows_up_as_io_wait() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.park(ParkReason::IoWait, None, 1);
        }));
    });
    let rt = advance_run(&prog, 0, 100);
    assert_eq!(rt.live_count(), 1);
    let g = &rt.goroutine_profile("t").goroutines[0];
    assert_eq!(g.status, GoStatus::IoWait);
    assert!(g.stack.iter().any(|f| f.func.contains("pollWait")));
}

#[test]
fn defer_runs_lifo_on_early_return() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                g.for_range(Some("v"), "ch", 3, |_| {});
            });
            b.call(None, "producer", vec![Expr::var("ch")], 5);
            b.sleep(Expr::int(1), 6);
        }));
        p.func(fnb("producer", "m.go").params(&["ch"]).body(|b| {
            b.defer_close("ch", 8); // fix for Listing 3 via defer
            b.for_n("i", Expr::int(3), 9, |l| {
                l.send("ch", Expr::var("i"), 10);
            });
            b.ret(11); // early return still triggers defer
            b.panic_("unreachable", 12);
        }));
    });
    let rt = advance_run(&prog, 0, 100);
    assert_eq!(rt.stats().panicked, 0, "{:?}", rt.exits());
    assert_eq!(rt.live_count(), 0, "defer close(ch) ends the range loop");
}

#[test]
fn call_returns_value_to_caller() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.call(Some("x"), "double", vec![Expr::int(21)], 1);
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("x")),
                    Box::new(Expr::int(42)),
                ),
                2,
                |t| {
                    t.panic_("bad return", 2);
                },
            );
        }));
        p.func(fnb("double", "m.go").params(&["n"]).body(|b| {
            b.ret_val(
                Expr::Bin(
                    gosim::script::BinOp::Mul,
                    Box::new(Expr::var("n")),
                    Box::new(Expr::int(2)),
                ),
                5,
            );
        }));
    });
    let rt = advance_run(&prog, 0, 10);
    assert_eq!(rt.stats().panicked, 0, "{:?}", rt.exits());
}

#[test]
fn recursion_builds_call_stack_frames() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.call(Some("r"), "count", vec![Expr::int(4)], 1);
        }));
        p.func(fnb("count", "m.go").params(&["n"]).body(|b| {
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Le,
                    Box::new(Expr::var("n")),
                    Box::new(Expr::int(0)),
                ),
                4,
                |t| {
                    // Block here so we can observe the deep stack.
                    t.make_chan("dead", 0, 5);
                    t.recv("dead", 5);
                },
            );
            b.call(
                Some("r"),
                "count",
                vec![Expr::Bin(
                    gosim::script::BinOp::Sub,
                    Box::new(Expr::var("n")),
                    Box::new(Expr::int(1)),
                )],
                7,
            );
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(10_000);
    assert_eq!(rt.live_count(), 1);
    let g = &rt.goroutine_profile("t").goroutines[0];
    let user_frames: Vec<&str> = g
        .stack
        .iter()
        .filter(|f| !f.is_runtime())
        .map(|f| f.func.as_str())
        .collect();
    // main + 5 nested `count` frames (n = 4,3,2,1,0)
    assert_eq!(user_frames.len(), 6);
    assert_eq!(user_frames[0], "count");
    assert_eq!(*user_frames.last().unwrap(), "main");
}

#[test]
fn mem_stats_attribute_heap_to_goroutines_and_free_on_exit() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.alloc(Expr::int(1000), 1);
            b.go_closure(2, |g| {
                g.alloc(Expr::int(5000), 3);
                g.make_chan("dead", 0, 4);
                g.recv("dead", 4); // leak with 5000 bytes retained
            });
            b.alloc(Expr::int(-500), 6);
        }));
    });
    let rt = advance_run(&prog, 0, 10);
    let m = rt.mem_stats();
    assert_eq!(m.goroutines, 1);
    assert_eq!(
        m.heap_bytes, 5000,
        "main's allocs freed on exit; leaked child retains"
    );
    assert!(m.stack_bytes > 0);
}

#[test]
fn deterministic_profiles_for_same_seed() {
    let build = || {
        Prog::build(|p| {
            p.func(fnb("main", "m.go").body(|b| {
                b.make_chan("ch", 0, 1);
                b.for_n("i", Expr::int(10), 2, |l| {
                    l.go_closure(3, |g| {
                        g.send("ch", Expr::var("i"), 4);
                    });
                });
                b.for_n("j", Expr::int(4), 6, |l| {
                    l.recv("ch", 7);
                });
            }));
        })
    };
    let run = |seed| {
        let mut rt = Runtime::with_seed(seed);
        build().spawn_main(&mut rt);
        rt.run_until_blocked(100_000);
        serde_json::to_string(&rt.goroutine_profile("x")).unwrap()
    };
    assert_eq!(run(7), run(7), "same seed, same profile");
}

#[test]
fn busy_yield_loop_does_not_starve_other_goroutines() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                // spin forever
                g.while_(Expr::bool(true), 3, |_| {});
            });
            b.go_closure(5, |g| {
                g.send("ch", Expr::int(1), 6);
            });
            b.recv("ch", 8);
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(5_000);
    // main and sender completed despite the spinner
    assert!(rt.exits().iter().any(|e| e.name == "main"));
    assert_eq!(rt.live_count(), 1, "only the spinner remains");
}
