//! Property-based tests of the vector-clock algebra.
//!
//! The happens-before engine is only sound if `VClock` really is a join
//! semilattice with `happens_before` a strict partial order. These
//! properties pin that algebra: join commutativity / associativity /
//! idempotence with the zero clock as identity, tick monotonicity, and
//! irreflexivity / transitivity / antisymmetry of `happens_before`.

use gosim::{Gid, VClock};
use proptest::prelude::*;

/// An arbitrary sparse clock over a small gid universe (so that
/// generated clocks actually collide and compare nontrivially).
fn arb_clock() -> impl Strategy<Value = VClock> {
    proptest::collection::vec((0u64..6, 0u64..8), 0..8).prop_map(|pairs| {
        let mut c = VClock::new();
        for (g, n) in pairs {
            for _ in 0..n {
                c.tick(Gid(g));
            }
        }
        c
    })
}

fn joined(a: &VClock, b: &VClock) -> VClock {
    let mut out = a.clone();
    out.join(b);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn join_is_commutative(a in arb_clock(), b in arb_clock()) {
        prop_assert_eq!(joined(&a, &b), joined(&b, &a));
    }

    #[test]
    fn join_is_associative(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        prop_assert_eq!(joined(&joined(&a, &b), &c), joined(&a, &joined(&b, &c)));
    }

    #[test]
    fn join_is_idempotent(a in arb_clock()) {
        prop_assert_eq!(joined(&a, &a), a);
    }

    #[test]
    fn zero_is_join_identity(a in arb_clock()) {
        prop_assert_eq!(joined(&a, &VClock::new()), a.clone());
        prop_assert_eq!(joined(&VClock::new(), &a), a);
    }

    #[test]
    fn join_is_an_upper_bound(a in arb_clock(), b in arb_clock()) {
        let j = joined(&a, &b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    #[test]
    fn tick_is_strictly_monotonic(a in arb_clock(), g in 0u64..6) {
        let mut t = a.clone();
        t.tick(Gid(g));
        prop_assert!(a.happens_before(&t));
        prop_assert_eq!(t.get(Gid(g)), a.get(Gid(g)) + 1);
    }

    #[test]
    fn happens_before_is_irreflexive(a in arb_clock()) {
        prop_assert!(!a.happens_before(&a));
        prop_assert!(!a.concurrent(&a), "a clock is ordered with itself (le)");
    }

    #[test]
    fn happens_before_is_transitive(a in arb_clock(), b in arb_clock(), c in arb_clock()) {
        if a.happens_before(&b) && b.happens_before(&c) {
            prop_assert!(a.happens_before(&c));
        }
    }

    #[test]
    fn happens_before_is_antisymmetric(a in arb_clock(), b in arb_clock()) {
        prop_assert!(!(a.happens_before(&b) && b.happens_before(&a)));
    }

    #[test]
    fn trichotomy_of_orderings(a in arb_clock(), b in arb_clock()) {
        // Exactly one of: a < b, b < a, a == b, or a ∥ b.
        let states = [
            a.happens_before(&b),
            b.happens_before(&a),
            a == b,
            a.concurrent(&b),
        ];
        prop_assert_eq!(states.iter().filter(|&&s| s).count(), 1);
    }

    #[test]
    fn concurrent_is_symmetric(a in arb_clock(), b in arb_clock()) {
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
    }
}
