//! Property-based tests of the channel/scheduler invariants.
//!
//! These encode the paper's "Fact 1" style reasoning as executable
//! properties: the number of leaked goroutines after a producer/consumer
//! workload is a pure function of the send/receive/capacity arithmetic,
//! independent of scheduling order (seed).

use gosim::script::{fnb, Expr, Prog};
use gosim::{Runtime, Val};
use proptest::prelude::*;

/// Builds a program with `senders` one-shot sender goroutines, `receivers`
/// one-shot receiver goroutines, over a channel of capacity `cap`, and a
/// main that never touches the channel.
fn fan_prog(senders: u64, receivers: u64, cap: usize) -> Prog {
    Prog::build(|p| {
        p.func(fnb("main", "fan.go").body(|b| {
            b.make_chan("ch", cap, 1);
            b.for_n("i", Expr::int(senders as i64), 2, |l| {
                l.go_closure(3, |g| {
                    g.send("ch", Expr::var("i"), 4);
                });
            });
            b.for_n("j", Expr::int(receivers as i64), 6, |l| {
                l.go_closure(7, |g| {
                    g.recv("ch", 8);
                });
            });
        }));
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Leaked goroutine count equals the CSP pairing arithmetic:
    /// leaked senders = max(0, S - R - cap); leaked receivers = max(0, R - S).
    #[test]
    fn fan_leak_arithmetic(
        senders in 0u64..12,
        receivers in 0u64..12,
        cap in 0usize..6,
        seed in 0u64..u64::MAX,
    ) {
        let prog = fan_prog(senders, receivers, cap);
        let mut rt = Runtime::with_seed(seed);
        prog.spawn_main(&mut rt);
        let out = rt.run_until_blocked(1_000_000);
        prop_assert!(out.quiescent);

        let leaked_senders = senders.saturating_sub(receivers).saturating_sub(cap as u64);
        let leaked_receivers = receivers.saturating_sub(senders);
        prop_assert_eq!(
            rt.live_count() as u64,
            leaked_senders + leaked_receivers,
            "S={} R={} cap={} seed={}", senders, receivers, cap, seed
        );
        // Every completed message really was transferred.
        let expected_msgs = senders.min(receivers + cap as u64);
        prop_assert_eq!(rt.stats().msgs_transferred, expected_msgs);
    }

    /// Same seed => identical execution; the profile JSON is bit-for-bit
    /// reproducible.
    #[test]
    fn determinism_across_identical_runs(
        senders in 0u64..8,
        receivers in 0u64..8,
        cap in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let run = |seed: u64| {
            let mut rt = Runtime::with_seed(seed);
            fan_prog(senders, receivers, cap).spawn_main(&mut rt);
            rt.run_until_blocked(1_000_000);
            serde_json::to_string(&rt.goroutine_profile("p")).expect("profile serializes")
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Closing the channel after sending unblocks every range receiver:
    /// no goroutine leaks regardless of worker count or scheduling.
    #[test]
    fn closed_range_never_leaks(
        workers in 1u64..8,
        items in 0u64..16,
        seed in 0u64..u64::MAX,
    ) {
        let prog = Prog::build(|p| {
            p.func(fnb("main", "range.go").body(|b| {
                b.make_chan("ch", 0, 1);
                b.for_n("w", Expr::int(workers as i64), 2, |l| {
                    l.go_closure(3, |g| {
                        g.for_range(Some("v"), "ch", 4, |_| {});
                    });
                });
                b.for_n("i", Expr::int(items as i64), 6, |l| {
                    l.send("ch", Expr::var("i"), 7);
                });
                b.close("ch", 9);
            }));
        });
        let mut rt = Runtime::with_seed(seed);
        prog.spawn_main(&mut rt);
        rt.run_until_blocked(1_000_000);
        prop_assert_eq!(rt.live_count(), 0);
        prop_assert_eq!(rt.stats().panicked, 0);
    }

    /// The unclosed variant leaks exactly the worker count.
    #[test]
    fn unclosed_range_leaks_all_workers(
        workers in 1u64..8,
        items in 0u64..8,
        seed in 0u64..u64::MAX,
    ) {
        let prog = Prog::build(|p| {
            p.func(fnb("main", "range.go").body(|b| {
                b.make_chan("ch", 0, 1);
                b.for_n("w", Expr::int(workers as i64), 2, |l| {
                    l.go_closure(3, |g| {
                        g.for_range(Some("v"), "ch", 4, |_| {});
                    });
                });
                b.for_n("i", Expr::int(items as i64), 6, |l| {
                    l.send("ch", Expr::var("i"), 7);
                });
            }));
        });
        let mut rt = Runtime::with_seed(seed);
        prog.spawn_main(&mut rt);
        rt.run_until_blocked(1_000_000);
        prop_assert_eq!(rt.live_count() as u64, workers);
    }

    /// WaitGroup with matching Add/Done never leaks the waiter.
    #[test]
    fn balanced_waitgroup_never_leaks(children in 0u64..10, seed in 0u64..u64::MAX) {
        let prog = Prog::build(|p| {
            p.func(fnb("main", "wg.go").body(|b| {
                b.make_wg("wg", 1);
                b.wg_add("wg", Expr::int(children as i64), 2);
                b.for_n("i", Expr::int(children as i64), 3, |l| {
                    l.go_closure(4, |g| {
                        g.wg_done("wg", 5);
                    });
                });
                b.wg_wait("wg", 7);
            }));
        });
        let mut rt = Runtime::with_seed(seed);
        prog.spawn_main(&mut rt);
        rt.run_until_blocked(1_000_000);
        prop_assert_eq!(rt.live_count(), 0);
    }

    /// Memory stats: retained bytes of leaked goroutines equal the sum of
    /// their allocations plus stacks, independent of interleaving.
    #[test]
    fn leaked_memory_accounting(leakers in 0u64..8, bytes in 1i64..10_000, seed in 0u64..u64::MAX) {
        let prog = Prog::build(|p| {
            p.func(fnb("main", "mem.go").body(|b| {
                b.make_chan("dead", 0, 1);
                b.for_n("i", Expr::int(leakers as i64), 2, |l| {
                    l.go_closure(3, |g| {
                        g.alloc(Expr::Lit(Val::Int(bytes)), 4);
                        g.recv("dead", 5);
                    });
                });
            }));
        });
        let mut rt = Runtime::with_seed(seed);
        prog.spawn_main(&mut rt);
        rt.run_until_blocked(1_000_000);
        let m = rt.mem_stats();
        prop_assert_eq!(m.goroutines as u64, leakers);
        prop_assert_eq!(m.heap_bytes, leakers * bytes as u64);
        prop_assert_eq!(m.stack_bytes, leakers * 8 * 1024);
    }
}
