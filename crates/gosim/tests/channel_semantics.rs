//! Integration tests: Go channel semantics on the simulated runtime.

use gosim::script::{fnb, Expr, Prog};
use gosim::{GoStatus, PanicPolicy, Runtime, SchedConfig, TypeTag, Val};

fn run(prog: &Prog, seed: u64) -> Runtime {
    let mut rt = Runtime::with_seed(seed);
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(100_000);
    rt
}

#[test]
fn unbuffered_rendezvous_sender_first() {
    // Sender goroutine starts first, blocks; main receives.
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                g.send("ch", Expr::int(42), 3);
            });
            b.recv_into("v", "ch", 5);
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("v")),
                    Box::new(Expr::int(42)),
                ),
                6,
                |t| {
                    t.panic_("wrong value", 7);
                },
            );
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().panicked, 0);
    assert_eq!(rt.stats().msgs_transferred, 1);
}

#[test]
fn unbuffered_rendezvous_receiver_first() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                g.recv("ch", 3);
            });
            b.send("ch", Expr::int(7), 5);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().msgs_transferred, 1);
}

#[test]
fn buffered_send_does_not_block_until_full() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 2, 1);
            b.send("ch", Expr::int(1), 2);
            b.send("ch", Expr::int(2), 3);
            // A third send would block; use select+default to prove it.
            b.select(4, |s| {
                s.send_arm("ch", Expr::int(3), 5, |arm| {
                    arm.panic_("third send should not be ready", 5);
                });
                s.default(|_| {});
            });
            b.recv_into("a", "ch", 6);
            b.recv_into("bv", "ch", 7);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().panicked, 0);
}

#[test]
fn buffered_sender_blocks_when_full_then_unblocks_on_recv() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 1, 1);
            b.go_closure(2, |g| {
                g.send("ch", Expr::int(1), 3);
                g.send("ch", Expr::int(2), 4); // blocks until main receives
            });
            b.recv_into("a", "ch", 6);
            b.recv_into("bv", "ch", 7);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().msgs_transferred, 2);
}

#[test]
fn recv_from_closed_channel_drains_buffer_then_yields_zero() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 2, 1);
            b.send("ch", Expr::int(9), 2);
            b.close("ch", 3);
            b.recv_ok("v1", "ok1", "ch", 4); // buffered value, ok=true
            b.recv_ok("v2", "ok2", "ch", 5); // zero value, ok=false
            b.if_(Expr::var("ok2"), 6, |t| {
                t.panic_("ok2 should be false", 6);
            });
            b.if_(Expr::Not(Box::new(Expr::var("ok1"))), 7, |t| {
                t.panic_("ok1 should be true", 7);
            });
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("v2")),
                    Box::new(Expr::int(0)),
                ),
                8,
                |t| {
                    t.panic_("v2 should be zero value", 8);
                },
            );
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 0, "exits: {:?}", rt.exits());
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn send_on_closed_channel_panics() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.close("ch", 2);
            b.send("ch", Expr::int(1), 3);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 1);
    let exit = &rt.exits()[0];
    assert!(exit
        .panic
        .as_deref()
        .unwrap()
        .contains("send on closed channel"));
}

#[test]
fn close_of_closed_channel_panics() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.close("ch", 2);
            b.close("ch", 3);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 1);
    assert!(rt.exits()[0]
        .panic
        .as_deref()
        .unwrap()
        .contains("close of closed channel"));
}

#[test]
fn close_wakes_blocked_senders_with_panic() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                g.send("ch", Expr::int(1), 3); // blocks, then panics on close
            });
            b.sleep(Expr::int(10), 5);
            b.close("ch", 6);
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.advance(100, 100_000);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().panicked, 1);
    assert!(rt.exits().iter().any(|e| e
        .panic
        .as_deref()
        .unwrap_or("")
        .contains("send on closed channel")));
}

#[test]
fn close_of_nil_channel_panics() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.assign("ch", Val::NilChan, 1);
            b.close("ch", 2);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 1);
    assert!(rt.exits()[0]
        .panic
        .as_deref()
        .unwrap()
        .contains("close of nil channel"));
}

#[test]
fn nil_channel_operations_block_forever() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.assign("ch", Val::NilChan, 1);
            b.go_closure(2, |g| {
                g.send("ch", Expr::int(1), 3);
            });
            b.recv("ch", 5);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 2);
    let profile = rt.goroutine_profile("t");
    let statuses: Vec<GoStatus> = profile.goroutines.iter().map(|g| g.status).collect();
    assert!(statuses.contains(&GoStatus::ChanSend { nil_chan: true }));
    assert!(statuses.contains(&GoStatus::ChanReceive { nil_chan: true }));
}

#[test]
fn select_default_taken_when_nothing_ready() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.assign("hit", Val::Bool(false), 2);
            b.select(3, |s| {
                s.recv_arm(Some("v"), "ch", 4, |arm| {
                    arm.panic_("no sender exists", 4);
                });
                s.default(|d| {
                    d.assign("hit", Val::Bool(true), 5);
                });
            });
            b.if_(Expr::Not(Box::new(Expr::var("hit"))), 6, |t| {
                t.panic_("default not taken", 6);
            });
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 0);
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn select_with_zero_cases_blocks_forever() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.select(1, |_| {});
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 1);
    let profile = rt.goroutine_profile("t");
    assert_eq!(profile.goroutines[0].status, GoStatus::Select { ncases: 0 });
}

#[test]
fn select_only_nil_arms_blocks_forever() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.assign("ch", Val::NilChan, 1);
            b.select(2, |s| {
                s.recv_arm(None, "ch", 3, |_| {});
            });
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 1);
    assert_eq!(
        rt.goroutine_profile("t").goroutines[0].status,
        GoStatus::Select { ncases: 1 }
    );
}

#[test]
fn blocking_select_wakes_when_arm_becomes_ready() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("a", 0, 1);
            b.make_chan("bch", 0, 2);
            b.go_closure(3, |g| {
                g.sleep(Expr::int(5), 4);
                g.send("bch", Expr::int(2), 5);
            });
            b.select(7, |s| {
                s.recv_arm(Some("x"), "a", 8, |arm| {
                    arm.panic_("arm a has no sender", 8);
                });
                s.recv_arm(Some("y"), "bch", 9, |_| {});
            });
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.advance(100, 100_000);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().panicked, 0);
}

#[test]
fn select_send_arm_completes_against_receiver() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                g.recv_into("v", "ch", 3);
            });
            // Give the receiver time to block, then select-send.
            b.sleep(Expr::int(5), 5);
            b.select(6, |s| {
                s.send_arm("ch", Expr::int(1), 7, |_| {});
            });
        }));
    });
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.advance(100, 100_000);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().msgs_transferred, 1);
}

#[test]
fn select_picks_uniformly_among_ready_arms() {
    // Both arms ready (buffered channels with data); over many seeds both
    // arms should be chosen at least sometimes.
    let mut first = 0;
    let mut second = 0;
    for seed in 0..40 {
        let prog = Prog::build(|p| {
            p.func(fnb("main", "m.go").body(|b| {
                b.make_chan("a", 1, 1);
                b.make_chan("bch", 1, 2);
                b.send("a", Expr::int(1), 3);
                b.send("bch", Expr::int(2), 4);
                b.select(5, |s| {
                    s.recv_arm(Some("x"), "a", 6, |arm| {
                        arm.assign("which", Val::Int(1), 6);
                    });
                    s.recv_arm(Some("y"), "bch", 7, |arm| {
                        arm.assign("which", Val::Int(2), 7);
                    });
                });
                // Leak a goroutine blocked on a marker channel so the test
                // harness can observe which arm fired via msgs count parity.
                b.if_(
                    Expr::Bin(
                        gosim::script::BinOp::Eq,
                        Box::new(Expr::var("which")),
                        Box::new(Expr::int(1)),
                    ),
                    8,
                    |t| {
                        t.assign("marker", Val::Int(1), 8);
                        t.make_chan("dead", 0, 9);
                        t.recv("dead", 10); // block only when arm 1 chosen
                    },
                );
            }));
        });
        let rt = run(&prog, seed);
        if rt.live_count() == 1 {
            first += 1;
        } else {
            second += 1;
        }
    }
    assert!(first > 0, "arm 1 never chosen across seeds");
    assert!(second > 0, "arm 2 never chosen across seeds");
}

#[test]
fn range_over_channel_terminates_on_close() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                g.for_n("i", Expr::int(5), 3, |l| {
                    l.send("ch", Expr::var("i"), 4);
                });
                g.close("ch", 5);
            });
            b.assign("sum", Val::Int(0), 6);
            b.for_range(Some("v"), "ch", 7, |l| {
                l.assign(
                    "sum",
                    Expr::Bin(
                        gosim::script::BinOp::Add,
                        Box::new(Expr::var("sum")),
                        Box::new(Expr::var("v")),
                    ),
                    8,
                );
            });
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("sum")),
                    Box::new(Expr::int(10)),
                ),
                9,
                |t| {
                    t.panic_("sum mismatch", 9);
                },
            );
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 0, "{:?}", rt.exits());
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn range_over_unclosed_channel_leaks_receiver() {
    // Listing 3 of the paper: consumers leak when close(ch) is missing.
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 2);
            b.for_n("w", Expr::int(3), 5, |l| {
                l.go_closure(6, |g| {
                    g.for_range(Some("item"), "ch", 6, |body| {
                        body.work(Expr::int(1), 7);
                    });
                });
            });
            b.for_n("i", Expr::int(4), 14, |l| {
                l.send("ch", Expr::var("i"), 15);
            });
            // missing: close(ch)
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 3, "all three consumers leak");
    let profile = rt.goroutine_profile("t");
    for g in &profile.goroutines {
        assert_eq!(g.status, GoStatus::ChanReceive { nil_chan: false });
        assert_eq!(g.blocking_frame().unwrap().loc.line, 6);
    }
}

#[test]
fn ncast_leak_only_first_sender_unblocks() {
    // Listing 9: N senders, one receiver, unbuffered channel.
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 2);
            b.for_n("i", Expr::int(5), 3, |l| {
                l.go_closure(4, |g| {
                    g.send("ch", Expr::var("i"), 5);
                });
            });
            b.recv("ch", 8);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 4, "N-1 senders leak");
    assert_eq!(rt.stats().msgs_transferred, 1);
}

#[test]
fn fixing_ncast_with_capacity_removes_leak() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 5, 2); // cap = len(items)
            b.for_n("i", Expr::int(5), 3, |l| {
                l.go_closure(4, |g| {
                    g.send("ch", Expr::var("i"), 5);
                });
            });
            b.recv("ch", 8);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn double_send_leak() {
    // Listing 5: missing return after error-path send.
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan("ch", 0, 1);
            b.go_closure(2, |g| {
                g.send("ch", Expr::int(0), 5); // error path: sends nil
                                               // BUG: missing return here
                g.send("ch", Expr::int(1), 7); // second send leaks
            });
            b.recv("ch", 11);
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.live_count(), 1);
    let profile = rt.goroutine_profile("t");
    assert_eq!(profile.goroutines[0].blocking_frame().unwrap().loc.line, 7);
}

#[test]
fn crash_process_policy_stops_runtime() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.panic_("boom", 1);
        }));
    });
    let mut rt = Runtime::new(SchedConfig {
        panic_policy: PanicPolicy::CrashProcess,
        ..SchedConfig::default()
    });
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(100);
    assert!(rt.fatal_panic().unwrap().contains("boom"));
}

#[test]
fn external_send_and_close_apis() {
    let mut rt = Runtime::with_seed(0);
    let ch = rt.make_chan(1, Val::Int(0), gosim::Loc::new("h.go", 1));
    assert!(rt.external_send(ch, Val::Int(5)));
    assert_eq!(rt.chan_len(ch), Some(1));
    assert!(
        !rt.external_send(ch, Val::Int(6)),
        "buffer full, nonblocking drop"
    );
    rt.external_close(ch);
    assert_eq!(rt.chan_closed(ch), Some(true));
    assert!(
        !rt.external_send(ch, Val::Int(7)),
        "send on closed is dropped externally"
    );
}

#[test]
fn channel_element_zero_values_respect_type() {
    let prog = Prog::build(|p| {
        p.func(fnb("main", "m.go").body(|b| {
            b.make_chan_of("ch", 0, TypeTag::Str, 1);
            b.close("ch", 2);
            b.recv_ok("v", "ok", "ch", 3);
            b.if_(
                Expr::Bin(
                    gosim::script::BinOp::Ne,
                    Box::new(Expr::var("v")),
                    Box::new(Expr::str("")),
                ),
                4,
                |t| {
                    t.panic_("zero of string chan must be empty string", 4);
                },
            );
        }));
    });
    let rt = run(&prog, 0);
    assert_eq!(rt.stats().panicked, 0);
}
