//! The deterministic cooperative runtime: scheduler, channels, timers,
//! semaphores, wait groups, condition variables, and memory accounting.
//!
//! The runtime reproduces Go's channel semantics faithfully:
//!
//! * unbuffered channels rendezvous (a sender blocks until a receiver is
//!   ready and vice versa);
//! * buffered channels block senders only when full and receivers only
//!   when empty;
//! * `close` wakes all blocked receivers with the element zero value and
//!   `ok == false`; blocked senders panic (`send on closed channel`);
//! * operations on nil channels block forever;
//! * `select` picks uniformly at random among ready arms (seeded RNG), a
//!   `default` arm makes it non-blocking, and a `select` with no cases (or
//!   only nil channels) blocks forever.
//!
//! Time is virtual: `time.Sleep`, `time.After`, `time.Tick` and context
//! deadlines are driven by a timer heap, so simulations of days of
//! production traffic take milliseconds and replay identically for a
//! given seed.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::ids::{ChanId, CondId, Gid, SemId, WgId};
use crate::loc::{Frame, Loc};
use crate::proc::{ArmOp, Effect, ParkReason, Process, Resume, SelectArm};
use crate::profile::{GoStatus, GoroutineProfile, GoroutineRecord};
use crate::rng::SplitMix64;
use crate::val::{ChanRef, Val};
use crate::vc::VClock;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Seed for the scheduler's nondeterministic choices (select arms).
    pub seed: u64,
    /// Maximum effects a goroutine may perform per scheduling slice before
    /// it is preempted back to the run queue.
    pub max_effects_per_slice: u32,
    /// Fixed per-goroutine stack size used by the memory model (Go starts
    /// goroutines at 2 KiB and grows them; we account a flat 8 KiB).
    pub stack_bytes: u64,
    /// What a goroutine panic does to the runtime.
    pub panic_policy: PanicPolicy,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            seed: 0,
            max_effects_per_slice: 128,
            stack_bytes: 8 * 1024,
            panic_policy: PanicPolicy::KillGoroutine,
        }
    }
}

/// What happens when a goroutine panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicPolicy {
    /// The goroutine dies and the panic is recorded; the rest of the
    /// simulated process keeps running. This keeps large corpus runs
    /// productive and is the default.
    KillGoroutine,
    /// The panic is recorded as fatal; [`Runtime::fatal_panic`] reports it
    /// and the runtime refuses to schedule further work, mirroring a real
    /// Go process crash.
    CrashProcess,
}

/// Aggregate counters maintained by the runtime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Total goroutines ever spawned (including the ones still live).
    pub spawned: u64,
    /// Goroutines that ran to completion.
    pub completed: u64,
    /// Goroutines that died by panic.
    pub panicked: u64,
    /// Scheduler slices executed.
    pub slices: u64,
    /// Abstract CPU work units executed via [`Effect::Work`].
    pub work_units: u64,
    /// Channels created.
    pub chans_made: u64,
    /// Messages successfully transferred over channels.
    pub msgs_transferred: u64,
}

/// Live memory snapshot of the simulated process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of live goroutines.
    pub goroutines: usize,
    /// Bytes retained by goroutine stacks.
    pub stack_bytes: u64,
    /// Heap bytes attributed to live goroutines.
    pub heap_bytes: u64,
    /// Bytes sitting in channel buffers.
    pub chan_buf_bytes: u64,
}

impl MemStats {
    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.stack_bytes + self.heap_bytes + self.chan_buf_bytes
    }
}

/// Outcome of a [`Runtime::run_until_blocked`] or [`Runtime::advance`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Scheduler slices executed during the call.
    pub slices: u64,
    /// True if the runtime reached quiescence (no runnable goroutine)
    /// within the step budget.
    pub quiescent: bool,
}

/// Record of a goroutine that terminated, kept for post-mortem assertions.
#[derive(Debug, Clone)]
pub struct ExitRecord {
    /// Goroutine id.
    pub gid: Gid,
    /// Root function name.
    pub name: String,
    /// Panic message if the goroutine died panicking.
    pub panic: Option<String>,
    /// Virtual time of exit.
    pub at: u64,
}

/// A shared-variable access recorded while happens-before tracking is
/// enabled ([`Runtime::enable_hb`]). The `clock` is the accessing
/// goroutine's vector clock at the instant of the access; two accesses
/// whose clocks are [concurrent](VClock::concurrent) with at least one
/// write form a data race.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AccessEvent {
    /// The accessing goroutine.
    pub gid: Gid,
    /// Variable name as reported by the frontend instrumentation.
    pub var: String,
    /// Source location of the access.
    pub loc: Loc,
    /// True for writes.
    pub is_write: bool,
    /// Vector clock of the goroutine at the access.
    pub clock: VClock,
    /// User-level call stack at the access, leaf-most frame first.
    pub stack: Vec<Frame>,
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// Per-channel happens-before state. `msg_clocks` parallels the channel
/// buffer: every buffered value carries the clock of its sender (the zero
/// clock for timer sends, which create no edge in the Go memory model).
#[derive(Debug, Default)]
struct ChanHb {
    msg_clocks: VecDeque<VClock>,
    close_clock: Option<VClock>,
}

/// All happens-before tracking state, boxed behind an `Option` so the
/// default (tracking off) costs one pointer-sized `None` check per hook.
#[derive(Debug, Default)]
struct HbState {
    clocks: HashMap<Gid, VClock>,
    chan_hb: HashMap<ChanId, ChanHb>,
    sem_hb: HashMap<SemId, VClock>,
    wg_hb: HashMap<WgId, VClock>,
    accesses: Vec<AccessEvent>,
}

#[derive(Debug, Clone)]
struct Waiter {
    gid: Gid,
    seq: u64,
    kind: WaiterKind,
    /// For plain blocked senders: the value being sent.
    val: Option<Val>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WaiterKind {
    Op,
    SelectArm(usize),
}

#[derive(Debug)]
struct Chan {
    cap: usize,
    buf: VecDeque<Val>,
    closed: bool,
    zero: Val,
    senders: VecDeque<Waiter>,
    receivers: VecDeque<Waiter>,
    #[allow(dead_code)]
    made_at: Loc,
}

#[derive(Debug, Default)]
struct Sem {
    permits: u64,
    waiters: VecDeque<Waiter>,
}

#[derive(Debug, Default)]
struct Wg {
    count: i64,
    waiters: VecDeque<Waiter>,
}

#[derive(Debug, Default)]
struct Cond {
    waiters: VecDeque<Waiter>,
}

// Some fields (channel/sem ids, wake deadlines) exist for Debug output and
// invariant checking in tests rather than steady-state reads.
#[derive(Debug)]
#[allow(dead_code)]
enum Blocked {
    Send {
        ch: ChanId,
        loc: Loc,
    },
    Recv {
        ch: ChanId,
        loc: Loc,
    },
    NilOp {
        send: bool,
        loc: Loc,
    },
    Select {
        arms: Vec<SelectArm>,
        loc: Loc,
    },
    Sleep {
        until: u64,
    },
    Park {
        reason: ParkReason,
        until: Option<u64>,
    },
    Sem {
        sem: SemId,
        loc: Loc,
    },
    Wg {
        wg: WgId,
        loc: Loc,
    },
    Cond {
        cond: CondId,
        loc: Loc,
    },
}

#[derive(Debug)]
enum GState {
    Runnable,
    Blocked(Blocked),
}

struct Goroutine {
    gid: Gid,
    name: String,
    created_by: Frame,
    body: Box<dyn Process>,
    state: GState,
    wait_seq: u64,
    wait_since: u64,
    heap_bytes: u64,
    pending: Option<Resume>,
}

impl std::fmt::Debug for Goroutine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Goroutine")
            .field("gid", &self.gid)
            .field("name", &self.name)
            .field("state", &self.state)
            .finish()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TimerEntry {
    at: u64,
    seq: u64,
    kind: TimerKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TimerKind {
    Wake { gid: Gid, seq: u64 },
    TickSend { ch: ChanId, period: Option<u64> },
    CloseCtx { ch: ChanId },
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of executing one effect for the currently running goroutine.
enum EffectOutcome {
    /// Keep running in this slice with the given resume value.
    Continue(Resume),
    /// The goroutine parked.
    Parked,
    /// The goroutine yielded voluntarily (stays runnable, re-queued).
    Yielded,
    /// The goroutine finished (normally or by panic).
    Exited(Option<String>),
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// A simulated Go process: scheduler + channels + timers + memory model.
///
/// # Examples
///
/// ```
/// use gosim::script::{fnb, Expr, Prog};
/// use gosim::{Runtime, SchedConfig};
///
/// // fn main() { ch := make(chan int); go func(){ ch <- 1 }(); <-ch }
/// let prog = Prog::build(|p| {
///     p.func(fnb("main", "main.go").body(|b| {
///         b.make_chan("ch", 0, 2);
///         b.go_closure(3, |g| {
///             g.send("ch", Expr::int(1), 4);
///         });
///         b.recv("ch", 6);
///     }));
/// });
/// let mut rt = Runtime::new(SchedConfig::default());
/// prog.spawn_main(&mut rt);
/// rt.run_until_blocked(10_000);
/// assert_eq!(rt.live_count(), 0); // no goroutine leaked
/// ```
pub struct Runtime {
    config: SchedConfig,
    clock: u64,
    rng: SplitMix64,
    next_gid: u64,
    next_chan: u64,
    next_sem: u64,
    next_wg: u64,
    next_cond: u64,
    next_timer_seq: u64,
    goroutines: HashMap<Gid, Goroutine>,
    run_queue: VecDeque<Gid>,
    chans: HashMap<ChanId, Chan>,
    sems: HashMap<SemId, Sem>,
    wgs: HashMap<WgId, Wg>,
    conds: HashMap<CondId, Cond>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
    stats: RuntimeStats,
    exits: Vec<ExitRecord>,
    fatal: Option<String>,
    hb: Option<Box<HbState>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("clock", &self.clock)
            .field("live", &self.goroutines.len())
            .field("runnable", &self.run_queue.len())
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new(SchedConfig::default())
    }
}

impl Runtime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: SchedConfig) -> Self {
        let rng = SplitMix64::new(config.seed ^ 0x6f72_6f75_7469_6e65);
        Runtime {
            config,
            clock: 0,
            rng,
            next_gid: 1,
            next_chan: 1,
            next_sem: 1,
            next_wg: 1,
            next_cond: 1,
            next_timer_seq: 0,
            goroutines: HashMap::new(),
            run_queue: VecDeque::new(),
            chans: HashMap::new(),
            sems: HashMap::new(),
            wgs: HashMap::new(),
            conds: HashMap::new(),
            timers: BinaryHeap::new(),
            stats: RuntimeStats::default(),
            exits: Vec::new(),
            fatal: None,
            hb: None,
        }
    }

    /// Convenience constructor with just a seed.
    pub fn with_seed(seed: u64) -> Self {
        Runtime::new(SchedConfig {
            seed,
            ..SchedConfig::default()
        })
    }

    /// Current virtual time in ticks.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Number of live goroutines.
    pub fn live_count(&self) -> usize {
        self.goroutines.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Exit records of terminated goroutines.
    pub fn exits(&self) -> &[ExitRecord] {
        &self.exits
    }

    /// The fatal panic message, if the runtime crashed under
    /// [`PanicPolicy::CrashProcess`].
    pub fn fatal_panic(&self) -> Option<&str> {
        self.fatal.as_deref()
    }

    // -- happens-before tracking --------------------------------------------

    /// Turns on vector-clock happens-before tracking. Off by default;
    /// when off every hook is a single `Option` check and
    /// [`Effect::Access`] events are discarded.
    pub fn enable_hb(&mut self) {
        if self.hb.is_none() {
            self.hb = Some(Box::default());
        }
    }

    /// True when happens-before tracking is enabled.
    pub fn hb_enabled(&self) -> bool {
        self.hb.is_some()
    }

    /// Drains the shared-variable access events recorded so far.
    /// Empty unless [`Runtime::enable_hb`] was called before the run.
    pub fn take_access_events(&mut self) -> Vec<AccessEvent> {
        self.hb
            .as_mut()
            .map(|hb| std::mem::take(&mut hb.accesses))
            .unwrap_or_default()
    }

    /// The current vector clock of a goroutine (tests/diagnostics).
    /// `None` when tracking is off or the goroutine has no clock yet.
    pub fn hb_clock_of(&self, gid: Gid) -> Option<&VClock> {
        self.hb.as_ref().and_then(|hb| hb.clocks.get(&gid))
    }

    /// Spawn edge: the child inherits the parent's clock, then both
    /// advance so later parent events do not order into the child.
    fn hb_fork(&mut self, parent: Gid, child: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let mut c = hb.clocks.entry(parent).or_default().clone();
            c.tick(child);
            hb.clocks.insert(child, c);
            hb.clocks.entry(parent).or_default().tick(parent);
        }
    }

    /// Rendezvous edge: mutual join of the two goroutines' clocks.
    /// For an unbuffered transfer both directions are real Go-memory-model
    /// edges; for a direct handoff to a parked receiver of a buffered
    /// channel the receiver→sender direction over-approximates (it can
    /// only suppress reports, never invent them).
    fn hb_sync_pair(&mut self, a: Gid, b: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let ca = hb.clocks.entry(a).or_default().clone();
            let cb = hb.clocks.entry(b).or_default();
            cb.join(&ca);
            let cb = cb.clone();
            let ca = hb.clocks.entry(a).or_default();
            ca.join(&cb);
            ca.tick(a);
            hb.clocks.entry(b).or_default().tick(b);
        }
    }

    /// Buffered send edge: the sender's clock rides with the message.
    fn hb_buffer_push(&mut self, ch: ChanId, sender: Option<Gid>) {
        if let Some(hb) = self.hb.as_mut() {
            let clock = match sender {
                Some(gid) => {
                    let c = hb.clocks.entry(gid).or_default();
                    let snap = c.clone();
                    c.tick(gid);
                    snap
                }
                // Timer/harness sends create no edge (Go: timer firings
                // are not synchronization events).
                None => VClock::new(),
            };
            hb.chan_hb
                .entry(ch)
                .or_default()
                .msg_clocks
                .push_back(clock);
        }
    }

    /// Buffered receive edge: join the message's clock into the receiver.
    fn hb_buffer_pop(&mut self, ch: ChanId, receiver: Option<Gid>) {
        if let Some(hb) = self.hb.as_mut() {
            let clock = hb
                .chan_hb
                .entry(ch)
                .or_default()
                .msg_clocks
                .pop_front()
                .unwrap_or_default();
            if let Some(gid) = receiver {
                let c = hb.clocks.entry(gid).or_default();
                c.join(&clock);
                c.tick(gid);
            }
        }
    }

    /// Close edge: remember the closer's clock so receives-from-closed
    /// order after the close.
    fn hb_close(&mut self, ch: ChanId, closer: Option<Gid>) {
        if let Some(hb) = self.hb.as_mut() {
            let clock = match closer {
                Some(gid) => {
                    let c = hb.clocks.entry(gid).or_default();
                    let snap = c.clone();
                    c.tick(gid);
                    snap
                }
                None => VClock::new(),
            };
            hb.chan_hb.entry(ch).or_default().close_clock = Some(clock);
        }
    }

    /// Receive-from-closed edge: join the close clock into the receiver.
    fn hb_join_close(&mut self, ch: ChanId, receiver: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let clock = hb
                .chan_hb
                .entry(ch)
                .or_default()
                .close_clock
                .clone()
                .unwrap_or_default();
            let c = hb.clocks.entry(receiver).or_default();
            c.join(&clock);
            c.tick(receiver);
        }
    }

    /// Release edge into a primitive clock (mutex unlock, wg.Done).
    fn hb_release(clock_map: &mut HashMap<Gid, VClock>, slot: &mut VClock, gid: Gid) {
        let c = clock_map.entry(gid).or_default();
        slot.join(c);
        c.tick(gid);
    }

    /// Acquire edge from a primitive clock (mutex lock, wg.Wait).
    fn hb_acquire(clock_map: &mut HashMap<Gid, VClock>, slot: &VClock, gid: Gid) {
        let c = clock_map.entry(gid).or_default();
        c.join(slot);
        c.tick(gid);
    }

    fn hb_sem_release(&mut self, sem: SemId, gid: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let mut slot = hb.sem_hb.remove(&sem).unwrap_or_default();
            Self::hb_release(&mut hb.clocks, &mut slot, gid);
            hb.sem_hb.insert(sem, slot);
        }
    }

    fn hb_sem_acquire(&mut self, sem: SemId, gid: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let slot = hb.sem_hb.entry(sem).or_default().clone();
            Self::hb_acquire(&mut hb.clocks, &slot, gid);
        }
    }

    fn hb_wg_done(&mut self, wg: WgId, gid: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let mut slot = hb.wg_hb.remove(&wg).unwrap_or_default();
            Self::hb_release(&mut hb.clocks, &mut slot, gid);
            hb.wg_hb.insert(wg, slot);
        }
    }

    fn hb_wg_wait(&mut self, wg: WgId, gid: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let slot = hb.wg_hb.entry(wg).or_default().clone();
            Self::hb_acquire(&mut hb.clocks, &slot, gid);
        }
    }

    /// Direct notifier→waiter edge (cond signal/broadcast).
    fn hb_notify(&mut self, notifier: Gid, waiter: Gid) {
        if let Some(hb) = self.hb.as_mut() {
            let cn = hb.clocks.entry(notifier).or_default().clone();
            let cw = hb.clocks.entry(waiter).or_default();
            cw.join(&cn);
            cw.tick(waiter);
            hb.clocks.entry(notifier).or_default().tick(notifier);
        }
    }

    /// Spawns a top-level goroutine.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        created_by: Frame,
        body: Box<dyn Process>,
    ) -> Gid {
        let gid = Gid(self.next_gid);
        self.next_gid += 1;
        self.stats.spawned += 1;
        let g = Goroutine {
            gid,
            name: name.into(),
            created_by,
            body,
            state: GState::Runnable,
            wait_seq: 0,
            wait_since: self.clock,
            heap_bytes: 0,
            pending: Some(Resume::Start),
        };
        self.goroutines.insert(gid, g);
        self.run_queue.push_back(gid);
        gid
    }

    /// Creates a channel from outside any goroutine (e.g. a test harness).
    pub fn make_chan(&mut self, cap: usize, zero: Val, loc: Loc) -> ChanId {
        let id = ChanId(self.next_chan);
        self.next_chan += 1;
        self.stats.chans_made += 1;
        self.chans.insert(
            id,
            Chan {
                cap,
                buf: VecDeque::new(),
                closed: false,
                zero,
                senders: VecDeque::new(),
                receivers: VecDeque::new(),
                made_at: loc,
            },
        );
        id
    }

    /// Non-blocking external send, used by harnesses to feed channels.
    /// Returns true if the value was delivered or buffered.
    pub fn external_send(&mut self, ch: ChanId, val: Val) -> bool {
        self.nonblocking_send(ch, val)
    }

    /// Externally closes a channel (idempotent; used to model e.g. a test
    /// harness cancelling contexts). Blocked receivers wake with the zero
    /// value; blocked senders panic as in Go.
    pub fn external_close(&mut self, ch: ChanId) {
        self.close_chan(ch, true, None);
    }

    /// Number of values currently buffered in the channel (None if the
    /// channel id is unknown).
    pub fn chan_len(&self, ch: ChanId) -> Option<usize> {
        self.chans.get(&ch).map(|c| c.buf.len())
    }

    /// True if the channel has been closed.
    pub fn chan_closed(&self, ch: ChanId) -> Option<bool> {
        self.chans.get(&ch).map(|c| c.closed)
    }

    // -- scheduling ---------------------------------------------------------

    /// Runs until no goroutine is runnable or the slice budget is spent.
    /// Virtual time does not advance; timers do not fire.
    pub fn run_until_blocked(&mut self, max_slices: u64) -> RunOutcome {
        let mut slices = 0;
        while slices < max_slices {
            if !self.step() {
                return RunOutcome {
                    slices,
                    quiescent: true,
                };
            }
            slices += 1;
        }
        RunOutcome {
            slices,
            quiescent: !self.has_runnable(),
        }
    }

    /// Advances virtual time by up to `ticks`, firing timers and running
    /// goroutines as they wake. Returns early only if the slice budget is
    /// exhausted.
    pub fn advance(&mut self, ticks: u64, max_slices: u64) -> RunOutcome {
        let deadline = self.clock.saturating_add(ticks);
        let mut slices = 0;
        loop {
            // Drain all runnable work at the current instant.
            while self.step() {
                slices += 1;
                if slices >= max_slices {
                    return RunOutcome {
                        slices,
                        quiescent: false,
                    };
                }
            }
            // Jump to the next timer within the window.
            match self.next_timer_at() {
                Some(at) if at <= deadline => {
                    self.clock = at.max(self.clock);
                    self.fire_due_timers();
                }
                _ => {
                    self.clock = deadline;
                    return RunOutcome {
                        slices,
                        quiescent: true,
                    };
                }
            }
        }
    }

    /// True if any goroutine is ready to run.
    pub fn has_runnable(&self) -> bool {
        self.run_queue.iter().any(|gid| {
            self.goroutines
                .get(gid)
                .map(|g| matches!(g.state, GState::Runnable))
                .unwrap_or(false)
        })
    }

    /// Earliest pending timer deadline.
    pub fn next_timer_at(&self) -> Option<u64> {
        self.timers.peek().map(|Reverse(t)| t.at)
    }

    /// Executes one scheduler slice. Returns false when nothing ran.
    pub fn step(&mut self) -> bool {
        if self.fatal.is_some() {
            return false;
        }
        let gid = loop {
            match self.run_queue.pop_front() {
                None => return false,
                Some(gid) => {
                    if let Some(g) = self.goroutines.get(&gid) {
                        if matches!(g.state, GState::Runnable) {
                            break gid;
                        }
                    }
                    // stale entry for a dead or re-blocked goroutine
                }
            }
        };
        self.stats.slices += 1;

        // Temporarily take the goroutine out of the table so effect
        // handlers can freely mutate the rest of the runtime.
        let mut g = self
            .goroutines
            .remove(&gid)
            .expect("goroutine disappeared from table");
        let mut resume = g.pending.take().unwrap_or(Resume::Start);
        let mut outcome = EffectOutcome::Yielded;
        for _ in 0..self.config.max_effects_per_slice {
            let effect = g.body.resume(resume);
            match self.handle_effect(&mut g, effect) {
                EffectOutcome::Continue(next) => {
                    resume = next;
                }
                other => {
                    outcome = other;
                    break;
                }
            }
        }
        match outcome {
            EffectOutcome::Continue(_) => unreachable!("continue cannot escape the loop"),
            EffectOutcome::Yielded => {
                g.state = GState::Runnable;
                g.pending = Some(Resume::Unit);
                self.run_queue.push_back(gid);
                self.goroutines.insert(gid, g);
            }
            EffectOutcome::Parked => {
                g.wait_since = self.clock;
                self.goroutines.insert(gid, g);
            }
            EffectOutcome::Exited(panic) => {
                self.finish(g, panic);
            }
        }
        true
    }

    fn finish(&mut self, g: Goroutine, panic: Option<String>) {
        if panic.is_some() {
            self.stats.panicked += 1;
            if self.config.panic_policy == PanicPolicy::CrashProcess {
                self.fatal = panic.clone();
            }
        } else {
            self.stats.completed += 1;
        }
        self.exits.push(ExitRecord {
            gid: g.gid,
            name: g.name,
            panic,
            at: self.clock,
        });
    }

    // -- effect handling ----------------------------------------------------

    fn handle_effect(&mut self, g: &mut Goroutine, effect: Effect) -> EffectOutcome {
        match effect {
            Effect::Done => EffectOutcome::Exited(None),
            Effect::Yield => EffectOutcome::Yielded,
            Effect::Panic { msg, loc } => EffectOutcome::Exited(Some(format!("{msg} at {loc}"))),
            Effect::Alloc { bytes } => {
                if bytes >= 0 {
                    g.heap_bytes = g.heap_bytes.saturating_add(bytes as u64);
                } else {
                    g.heap_bytes = g.heap_bytes.saturating_sub((-bytes) as u64);
                }
                EffectOutcome::Continue(Resume::Unit)
            }
            Effect::Work { units } => {
                self.stats.work_units += units;
                EffectOutcome::Continue(Resume::Unit)
            }
            Effect::MakeChan { cap, zero, loc } => {
                let id = self.make_chan(cap, zero, loc);
                EffectOutcome::Continue(Resume::Made(Val::Chan(id)))
            }
            Effect::After { ticks, loc } => {
                let id = self.make_chan(1, Val::Int(0), loc);
                self.schedule_timer(
                    self.clock + ticks,
                    TimerKind::TickSend {
                        ch: id,
                        period: None,
                    },
                );
                EffectOutcome::Continue(Resume::Made(Val::Chan(id)))
            }
            Effect::TickChan { period, loc } => {
                let period = period.max(1);
                let id = self.make_chan(1, Val::Int(0), loc);
                self.schedule_timer(
                    self.clock + period,
                    TimerKind::TickSend {
                        ch: id,
                        period: Some(period),
                    },
                );
                EffectOutcome::Continue(Resume::Made(Val::Chan(id)))
            }
            Effect::CtxTimeout { ticks, loc } => {
                let id = self.make_chan(0, Val::Unit, loc);
                if let Some(t) = ticks {
                    self.schedule_timer(self.clock + t, TimerKind::CloseCtx { ch: id });
                }
                EffectOutcome::Continue(Resume::Made(Val::Chan(id)))
            }
            Effect::Cancel { ch, .. } => {
                if let ChanRef::Chan(id) = ch.chan_ref() {
                    self.close_chan(id, true, Some(g.gid));
                }
                EffectOutcome::Continue(Resume::Unit)
            }
            Effect::Go { body, name, loc } => {
                let parent_fn = g
                    .body
                    .stack()
                    .first()
                    .map(|f| f.func.clone())
                    .unwrap_or_else(|| g.name.clone());
                let created_by = Frame::new(parent_fn, loc);
                let gid = self.spawn(name, created_by, body);
                self.hb_fork(g.gid, gid);
                EffectOutcome::Continue(Resume::Spawned(gid))
            }
            Effect::Sleep { ticks, loc: _ } => {
                if ticks == 0 {
                    return EffectOutcome::Yielded;
                }
                let until = self.clock + ticks;
                g.wait_seq += 1;
                self.schedule_timer(
                    until,
                    TimerKind::Wake {
                        gid: g.gid,
                        seq: g.wait_seq,
                    },
                );
                g.state = GState::Blocked(Blocked::Sleep { until });
                EffectOutcome::Parked
            }
            Effect::Park {
                reason,
                wake_after,
                loc: _,
            } => {
                g.wait_seq += 1;
                let until = wake_after.map(|t| self.clock + t);
                if let Some(at) = until {
                    self.schedule_timer(
                        at,
                        TimerKind::Wake {
                            gid: g.gid,
                            seq: g.wait_seq,
                        },
                    );
                }
                g.state = GState::Blocked(Blocked::Park { reason, until });
                EffectOutcome::Parked
            }
            Effect::Send { ch, val, loc } => self.do_send(g, ch, val, loc),
            Effect::Recv { ch, loc } => self.do_recv(g, ch, loc),
            Effect::Close { ch, loc } => match ch.chan_ref() {
                ChanRef::Chan(id) => {
                    if self.chans.get(&id).map(|c| c.closed).unwrap_or(false) {
                        EffectOutcome::Exited(Some(format!("close of closed channel at {loc}")))
                    } else {
                        self.close_chan(id, false, Some(g.gid));
                        EffectOutcome::Continue(Resume::Unit)
                    }
                }
                ChanRef::Nil => {
                    EffectOutcome::Exited(Some(format!("close of nil channel at {loc}")))
                }
                ChanRef::NotAChan => {
                    EffectOutcome::Exited(Some(format!("close of non-channel value at {loc}")))
                }
            },
            Effect::Select {
                arms,
                has_default,
                loc,
            } => self.do_select(g, arms, has_default, loc),
            Effect::MakeSem { permits } => {
                let id = SemId(self.next_sem);
                self.next_sem += 1;
                self.sems.insert(
                    id,
                    Sem {
                        permits,
                        waiters: VecDeque::new(),
                    },
                );
                EffectOutcome::Continue(Resume::Made(Val::Sem(id)))
            }
            Effect::SemAcquire { sem, loc } => {
                let id = match sem {
                    Val::Sem(id) => id,
                    other => {
                        return EffectOutcome::Exited(Some(format!(
                            "semaphore operation on {other} at {loc}"
                        )))
                    }
                };
                let s = self.sems.get_mut(&id).expect("unknown semaphore");
                if s.permits > 0 {
                    s.permits -= 1;
                    self.hb_sem_acquire(id, g.gid);
                    EffectOutcome::Continue(Resume::Unit)
                } else {
                    g.wait_seq += 1;
                    s.waiters.push_back(Waiter {
                        gid: g.gid,
                        seq: g.wait_seq,
                        kind: WaiterKind::Op,
                        val: None,
                    });
                    g.state = GState::Blocked(Blocked::Sem { sem: id, loc });
                    EffectOutcome::Parked
                }
            }
            Effect::SemRelease { sem, loc } => {
                let id = match sem {
                    Val::Sem(id) => id,
                    other => {
                        return EffectOutcome::Exited(Some(format!(
                            "semaphore operation on {other} at {loc}"
                        )))
                    }
                };
                self.hb_sem_release(id, g.gid);
                let next = {
                    let s = self.sems.get_mut(&id).expect("unknown semaphore");
                    match s.waiters.pop_front() {
                        Some(w) => Some(w),
                        None => {
                            s.permits += 1;
                            None
                        }
                    }
                };
                if let Some(w) = next {
                    if !self.wake_if_live(&w, Resume::Unit) {
                        // Waiter died; retry by re-releasing.
                        return self.handle_effect(
                            g,
                            Effect::SemRelease {
                                sem: Val::Sem(id),
                                loc,
                            },
                        );
                    }
                    self.hb_sem_acquire(id, w.gid);
                }
                EffectOutcome::Continue(Resume::Unit)
            }
            Effect::MakeWg => {
                let id = WgId(self.next_wg);
                self.next_wg += 1;
                self.wgs.insert(id, Wg::default());
                EffectOutcome::Continue(Resume::Made(Val::Wg(id)))
            }
            Effect::WgAdd { wg, delta, loc } => {
                let id = match wg {
                    Val::Wg(id) => id,
                    other => {
                        return EffectOutcome::Exited(Some(format!(
                            "waitgroup operation on {other} at {loc}"
                        )))
                    }
                };
                let (new_count, wake) = {
                    let w = self.wgs.get_mut(&id).expect("unknown waitgroup");
                    w.count += delta;
                    let wake = if w.count == 0 {
                        std::mem::take(&mut w.waiters)
                    } else {
                        VecDeque::new()
                    };
                    (w.count, wake)
                };
                if new_count < 0 {
                    return EffectOutcome::Exited(Some(format!(
                        "sync: negative WaitGroup counter at {loc}"
                    )));
                }
                if delta < 0 {
                    // wg.Done: the completing goroutine's clock flows into
                    // the group so Wait returns ordered after every Done.
                    self.hb_wg_done(id, g.gid);
                }
                for w in wake {
                    if self.wake_if_live(&w, Resume::Unit) {
                        self.hb_wg_wait(id, w.gid);
                    }
                }
                EffectOutcome::Continue(Resume::Unit)
            }
            Effect::WgWait { wg, loc } => {
                let id = match wg {
                    Val::Wg(id) => id,
                    other => {
                        return EffectOutcome::Exited(Some(format!(
                            "waitgroup operation on {other} at {loc}"
                        )))
                    }
                };
                let w = self.wgs.get_mut(&id).expect("unknown waitgroup");
                if w.count == 0 {
                    self.hb_wg_wait(id, g.gid);
                    EffectOutcome::Continue(Resume::Unit)
                } else {
                    g.wait_seq += 1;
                    w.waiters.push_back(Waiter {
                        gid: g.gid,
                        seq: g.wait_seq,
                        kind: WaiterKind::Op,
                        val: None,
                    });
                    g.state = GState::Blocked(Blocked::Wg { wg: id, loc });
                    EffectOutcome::Parked
                }
            }
            Effect::MakeCond => {
                let id = CondId(self.next_cond);
                self.next_cond += 1;
                self.conds.insert(id, Cond::default());
                EffectOutcome::Continue(Resume::Made(Val::Cond(id)))
            }
            Effect::CondWait { cond, loc } => {
                let id = match cond {
                    Val::Cond(id) => id,
                    other => {
                        return EffectOutcome::Exited(Some(format!(
                            "cond operation on {other} at {loc}"
                        )))
                    }
                };
                let c = self.conds.get_mut(&id).expect("unknown cond");
                g.wait_seq += 1;
                c.waiters.push_back(Waiter {
                    gid: g.gid,
                    seq: g.wait_seq,
                    kind: WaiterKind::Op,
                    val: None,
                });
                g.state = GState::Blocked(Blocked::Cond { cond: id, loc });
                EffectOutcome::Parked
            }
            Effect::CondNotify { cond, all, loc } => {
                let id = match cond {
                    Val::Cond(id) => id,
                    other => {
                        return EffectOutcome::Exited(Some(format!(
                            "cond operation on {other} at {loc}"
                        )))
                    }
                };
                let to_wake: Vec<Waiter> = {
                    let c = self.conds.get_mut(&id).expect("unknown cond");
                    if all {
                        c.waiters.drain(..).collect()
                    } else {
                        c.waiters.pop_front().into_iter().collect()
                    }
                };
                for w in to_wake {
                    if self.wake_if_live(&w, Resume::Unit) {
                        self.hb_notify(g.gid, w.gid);
                    }
                }
                EffectOutcome::Continue(Resume::Unit)
            }
            Effect::Access { var, is_write, loc } => {
                if let Some(hb) = self.hb.as_mut() {
                    let stack = g.body.stack();
                    let c = hb.clocks.entry(g.gid).or_default();
                    let clock = c.clone();
                    c.tick(g.gid);
                    hb.accesses.push(AccessEvent {
                        gid: g.gid,
                        var,
                        loc,
                        is_write,
                        clock,
                        stack,
                    });
                }
                EffectOutcome::Continue(Resume::Unit)
            }
        }
    }

    // -- channel machinery --------------------------------------------------

    fn do_send(&mut self, g: &mut Goroutine, ch: Val, val: Val, loc: Loc) -> EffectOutcome {
        match ch.chan_ref() {
            ChanRef::Nil => {
                g.wait_seq += 1;
                g.state = GState::Blocked(Blocked::NilOp { send: true, loc });
                EffectOutcome::Parked
            }
            ChanRef::NotAChan => {
                EffectOutcome::Exited(Some(format!("send on non-channel value at {loc}")))
            }
            ChanRef::Chan(id) => {
                if self.chans.get(&id).map(|c| c.closed).unwrap_or(true) {
                    return EffectOutcome::Exited(Some(format!("send on closed channel at {loc}")));
                }
                // Rendezvous with a waiting receiver first.
                if let Some(w) = self.pop_live_receiver(id) {
                    self.deliver_to_receiver(&w, val, true);
                    self.hb_sync_pair(g.gid, w.gid);
                    self.stats.msgs_transferred += 1;
                    return EffectOutcome::Continue(Resume::Sent);
                }
                let c = self.chans.get_mut(&id).expect("channel disappeared");
                if c.buf.len() < c.cap {
                    c.buf.push_back(val);
                    self.hb_buffer_push(id, Some(g.gid));
                    self.stats.msgs_transferred += 1;
                    return EffectOutcome::Continue(Resume::Sent);
                }
                g.wait_seq += 1;
                c.senders.push_back(Waiter {
                    gid: g.gid,
                    seq: g.wait_seq,
                    kind: WaiterKind::Op,
                    val: Some(val),
                });
                g.state = GState::Blocked(Blocked::Send { ch: id, loc });
                EffectOutcome::Parked
            }
        }
    }

    fn do_recv(&mut self, g: &mut Goroutine, ch: Val, loc: Loc) -> EffectOutcome {
        match ch.chan_ref() {
            ChanRef::Nil => {
                g.wait_seq += 1;
                g.state = GState::Blocked(Blocked::NilOp { send: false, loc });
                EffectOutcome::Parked
            }
            ChanRef::NotAChan => {
                EffectOutcome::Exited(Some(format!("receive on non-channel value at {loc}")))
            }
            ChanRef::Chan(id) => match self.recv_ready_value(id, Some(g.gid)) {
                Some((val, ok)) => EffectOutcome::Continue(Resume::Received { val, ok }),
                None => {
                    let c = self.chans.get_mut(&id).expect("channel disappeared");
                    g.wait_seq += 1;
                    c.receivers.push_back(Waiter {
                        gid: g.gid,
                        seq: g.wait_seq,
                        kind: WaiterKind::Op,
                        val: None,
                    });
                    g.state = GState::Blocked(Blocked::Recv { ch: id, loc });
                    EffectOutcome::Parked
                }
            },
        }
    }

    /// Tries to produce a value for a receiver on `id`. Wakes a blocked
    /// sender if the operation frees buffer space or completes a
    /// rendezvous. Returns None when the receive would block.
    /// `recv_gid` is the receiving goroutine for happens-before edges
    /// (None for external harness receives).
    fn recv_ready_value(&mut self, id: ChanId, recv_gid: Option<Gid>) -> Option<(Val, bool)> {
        // Buffered value available?
        let buffered = {
            let c = self.chans.get_mut(&id)?;
            c.buf.pop_front()
        };
        if let Some(val) = buffered {
            self.hb_buffer_pop(id, recv_gid);
            // A blocked sender can now move its value into the freed slot.
            // Messages are counted once, at insertion/handoff, so the pop
            // itself does not increment the counter.
            if let Some(w) = self.pop_live_sender(id) {
                let sent_val = self.sender_value(&w);
                let c = self.chans.get_mut(&id).expect("channel disappeared");
                c.buf.push_back(sent_val);
                self.hb_buffer_push(id, Some(w.gid));
                self.complete_sender(&w);
                self.stats.msgs_transferred += 1;
            }
            return Some((val, true));
        }
        // Unbuffered (or empty buffer): rendezvous with a blocked sender.
        if let Some(w) = self.pop_live_sender(id) {
            let val = self.sender_value(&w);
            if let Some(r) = recv_gid {
                self.hb_sync_pair(r, w.gid);
            }
            self.complete_sender(&w);
            self.stats.msgs_transferred += 1;
            return Some((val, true));
        }
        let closed_zero = {
            let c = self.chans.get(&id)?;
            if c.closed {
                Some(c.zero.clone())
            } else {
                None
            }
        };
        if let Some(zero) = closed_zero {
            if let Some(r) = recv_gid {
                self.hb_join_close(id, r);
            }
            return Some((zero, false));
        }
        None
    }

    fn sender_value(&self, w: &Waiter) -> Val {
        if let Some(v) = &w.val {
            return v.clone();
        }
        // Select send arm: the value lives in the blocked goroutine's arms.
        if let WaiterKind::SelectArm(idx) = w.kind {
            if let Some(g) = self.goroutines.get(&w.gid) {
                if let GState::Blocked(Blocked::Select { arms, .. }) = &g.state {
                    if let Some(SelectArm {
                        op: ArmOp::Send { val, .. },
                        ..
                    }) = arms.get(idx)
                    {
                        return val.clone();
                    }
                }
            }
        }
        Val::Unit
    }

    fn complete_sender(&mut self, w: &Waiter) {
        let resume = match w.kind {
            WaiterKind::Op => Resume::Sent,
            WaiterKind::SelectArm(idx) => Resume::Selected {
                arm: Some(idx),
                recv: None,
            },
        };
        self.wake_if_live(w, resume);
    }

    fn deliver_to_receiver(&mut self, w: &Waiter, val: Val, ok: bool) {
        let resume = match w.kind {
            WaiterKind::Op => Resume::Received { val, ok },
            WaiterKind::SelectArm(idx) => Resume::Selected {
                arm: Some(idx),
                recv: Some((val, ok)),
            },
        };
        self.wake_if_live(w, resume);
    }

    fn close_chan(&mut self, id: ChanId, idempotent: bool, closer: Option<Gid>) {
        let (receivers, senders, zero) = match self.chans.get_mut(&id) {
            None => return,
            Some(c) => {
                if c.closed {
                    debug_assert!(idempotent, "close of closed channel must be caught earlier");
                    return;
                }
                c.closed = true;
                (
                    std::mem::take(&mut c.receivers),
                    std::mem::take(&mut c.senders),
                    c.zero.clone(),
                )
            }
        };
        self.hb_close(id, closer);
        for w in receivers {
            if self.waiter_live(&w) {
                self.hb_join_close(id, w.gid);
                self.deliver_to_receiver(&w, zero.clone(), false);
            }
        }
        for w in senders {
            if self.waiter_live(&w) {
                // Go: a sender blocked on a channel that gets closed panics.
                self.kill_blocked(w.gid, "send on closed channel");
            }
        }
    }

    fn do_select(
        &mut self,
        g: &mut Goroutine,
        arms: Vec<SelectArm>,
        has_default: bool,
        loc: Loc,
    ) -> EffectOutcome {
        // Find ready arms.
        let mut ready: Vec<usize> = Vec::new();
        for (i, arm) in arms.iter().enumerate() {
            match &arm.op {
                ArmOp::Recv { ch } => {
                    if let ChanRef::Chan(id) = ch.chan_ref() {
                        if let Some(c) = self.chans.get(&id) {
                            if !c.buf.is_empty() || c.closed || self.has_live_sender(id) {
                                ready.push(i);
                            }
                        }
                    }
                }
                ArmOp::Send { ch, .. } => {
                    if let ChanRef::Chan(id) = ch.chan_ref() {
                        if let Some(c) = self.chans.get(&id) {
                            if c.closed || c.buf.len() < c.cap || self.has_live_receiver(id) {
                                ready.push(i);
                            }
                        }
                    }
                }
            }
        }
        if !ready.is_empty() {
            let pick = ready[self.rng.index(ready.len())];
            let arm = arms[pick].clone();
            return match arm.op {
                ArmOp::Recv { ch } => {
                    let id = ch
                        .as_chan()
                        .expect("ready recv arm must have a real channel");
                    let (val, ok) = self
                        .recv_ready_value(id, Some(g.gid))
                        .expect("arm was ready; receive must complete");
                    EffectOutcome::Continue(Resume::Selected {
                        arm: Some(pick),
                        recv: Some((val, ok)),
                    })
                }
                ArmOp::Send { ch, val } => {
                    let id = ch
                        .as_chan()
                        .expect("ready send arm must have a real channel");
                    if self.chans.get(&id).map(|c| c.closed).unwrap_or(true) {
                        return EffectOutcome::Exited(Some(format!(
                            "send on closed channel at {}",
                            arm.loc
                        )));
                    }
                    if let Some(w) = self.pop_live_receiver(id) {
                        self.deliver_to_receiver(&w, val, true);
                        self.hb_sync_pair(g.gid, w.gid);
                    } else {
                        let c = self.chans.get_mut(&id).expect("channel disappeared");
                        debug_assert!(c.buf.len() < c.cap, "ready send arm must have space");
                        c.buf.push_back(val);
                        self.hb_buffer_push(id, Some(g.gid));
                    }
                    self.stats.msgs_transferred += 1;
                    EffectOutcome::Continue(Resume::Selected {
                        arm: Some(pick),
                        recv: None,
                    })
                }
            };
        }
        if has_default {
            return EffectOutcome::Continue(Resume::Selected {
                arm: None,
                recv: None,
            });
        }
        // Block: register on every real channel involved.
        g.wait_seq += 1;
        for (i, arm) in arms.iter().enumerate() {
            let (id, is_send) = match &arm.op {
                ArmOp::Recv { ch } => match ch.chan_ref() {
                    ChanRef::Chan(id) => (id, false),
                    _ => continue, // nil arms never become ready
                },
                ArmOp::Send { ch, .. } => match ch.chan_ref() {
                    ChanRef::Chan(id) => (id, true),
                    _ => continue,
                },
            };
            let w = Waiter {
                gid: g.gid,
                seq: g.wait_seq,
                kind: WaiterKind::SelectArm(i),
                val: None,
            };
            let c = self.chans.get_mut(&id).expect("channel disappeared");
            if is_send {
                c.senders.push_back(w);
            } else {
                c.receivers.push_back(w);
            }
        }
        g.state = GState::Blocked(Blocked::Select { arms, loc });
        EffectOutcome::Parked
    }

    /// Non-blocking send used by timers and harnesses: deliver to a waiting
    /// receiver, else buffer, else drop. Returns true unless dropped.
    fn nonblocking_send(&mut self, id: ChanId, val: Val) -> bool {
        if self.chans.get(&id).map(|c| c.closed).unwrap_or(true) {
            return false;
        }
        if let Some(w) = self.pop_live_receiver(id) {
            self.deliver_to_receiver(&w, val, true);
            self.stats.msgs_transferred += 1;
            return true;
        }
        let c = self.chans.get_mut(&id).expect("channel disappeared");
        if c.buf.len() < c.cap {
            c.buf.push_back(val);
            // Timer/harness send: keep the clock queue parallel to the
            // buffer, with the zero clock (no synchronization edge).
            self.hb_buffer_push(id, None);
            self.stats.msgs_transferred += 1;
            true
        } else {
            false
        }
    }

    // -- waiter helpers -----------------------------------------------------

    fn waiter_live(&self, w: &Waiter) -> bool {
        self.goroutines
            .get(&w.gid)
            .map(|g| g.wait_seq == w.seq && matches!(g.state, GState::Blocked(_)))
            .unwrap_or(false)
    }

    fn pop_live_receiver(&mut self, id: ChanId) -> Option<Waiter> {
        loop {
            let w = self.chans.get_mut(&id)?.receivers.pop_front()?;
            if self.waiter_live(&w) {
                return Some(w);
            }
        }
    }

    fn pop_live_sender(&mut self, id: ChanId) -> Option<Waiter> {
        loop {
            let w = self.chans.get_mut(&id)?.senders.pop_front()?;
            if self.waiter_live(&w) {
                return Some(w);
            }
        }
    }

    fn has_live_sender(&self, id: ChanId) -> bool {
        self.chans
            .get(&id)
            .map(|c| c.senders.iter().any(|w| self.waiter_live(w)))
            .unwrap_or(false)
    }

    fn has_live_receiver(&self, id: ChanId) -> bool {
        self.chans
            .get(&id)
            .map(|c| c.receivers.iter().any(|w| self.waiter_live(w)))
            .unwrap_or(false)
    }

    /// Wakes the goroutine behind a waiter if it is still parked with the
    /// matching wait sequence. Returns false for stale waiters.
    fn wake_if_live(&mut self, w: &Waiter, resume: Resume) -> bool {
        let live = self.waiter_live(w);
        if live {
            let g = self
                .goroutines
                .get_mut(&w.gid)
                .expect("live waiter must exist");
            g.wait_seq += 1; // invalidate other registrations
            g.state = GState::Runnable;
            g.pending = Some(resume);
            self.run_queue.push_back(w.gid);
        }
        live
    }

    /// Kills a blocked goroutine with a panic (e.g. send on closed chan).
    fn kill_blocked(&mut self, gid: Gid, msg: &str) {
        if let Some(g) = self.goroutines.remove(&gid) {
            let loc = match &g.state {
                GState::Blocked(Blocked::Send { loc, .. }) => loc.clone(),
                GState::Blocked(Blocked::Select { loc, .. }) => loc.clone(),
                _ => Loc::unknown(),
            };
            self.finish(g, Some(format!("{msg} at {loc}")));
        }
    }

    fn schedule_timer(&mut self, at: u64, kind: TimerKind) {
        let seq = self.next_timer_seq;
        self.next_timer_seq += 1;
        self.timers.push(Reverse(TimerEntry { at, seq, kind }));
    }

    fn fire_due_timers(&mut self) {
        while let Some(Reverse(top)) = self.timers.peek() {
            if top.at > self.clock {
                break;
            }
            let Reverse(t) = self.timers.pop().expect("peeked timer must pop");
            match t.kind {
                TimerKind::Wake { gid, seq } => {
                    let w = Waiter {
                        gid,
                        seq,
                        kind: WaiterKind::Op,
                        val: None,
                    };
                    self.wake_if_live(&w, Resume::Unit);
                }
                TimerKind::TickSend { ch, period } => {
                    self.nonblocking_send(ch, Val::Int(self.clock as i64));
                    if let Some(p) = period {
                        if self.chans.get(&ch).map(|c| !c.closed).unwrap_or(false) {
                            self.schedule_timer(
                                self.clock + p,
                                TimerKind::TickSend {
                                    ch,
                                    period: Some(p),
                                },
                            );
                        }
                    }
                }
                TimerKind::CloseCtx { ch } => {
                    self.close_chan(ch, true, None);
                }
            }
        }
    }

    // -- introspection ------------------------------------------------------

    /// The source location of the operation a goroutine is blocked at,
    /// plus a short wait-reason string, if it is currently parked.
    ///
    /// This gives leak detectors precise `file:line` evidence without
    /// re-parsing rendered stacks.
    pub fn blocked_at(&self, gid: Gid) -> Option<(Loc, &'static str)> {
        let g = self.goroutines.get(&gid)?;
        match &g.state {
            GState::Runnable => None,
            GState::Blocked(b) => Some(match b {
                Blocked::Send { loc, ch: _ } => (loc.clone(), "chan send"),
                Blocked::Recv { loc, ch: _ } => (loc.clone(), "chan receive"),
                Blocked::NilOp { send, loc } => (
                    loc.clone(),
                    if *send {
                        "chan send (nil chan)"
                    } else {
                        "chan receive (nil chan)"
                    },
                ),
                Blocked::Select { loc, .. } => (loc.clone(), "select"),
                Blocked::Sleep { until: _ } => (Loc::runtime(), "sleep"),
                Blocked::Park { reason, until: _ } => (
                    Loc::runtime(),
                    match reason {
                        ParkReason::IoWait => "IO wait",
                        ParkReason::Syscall => "syscall",
                        ParkReason::Sleep => "sleep",
                    },
                ),
                Blocked::Sem { loc, sem: _ } => (loc.clone(), "semacquire"),
                Blocked::Wg { loc, wg: _ } => (loc.clone(), "semacquire (WaitGroup)"),
                Blocked::Cond { loc, cond: _ } => (loc.clone(), "sync.Cond.Wait"),
            }),
        }
    }

    /// Memory snapshot of the simulated process.
    pub fn mem_stats(&self) -> MemStats {
        let mut m = MemStats {
            goroutines: self.goroutines.len(),
            ..MemStats::default()
        };
        for g in self.goroutines.values() {
            m.stack_bytes += self.config.stack_bytes;
            m.heap_bytes += g.heap_bytes;
        }
        for c in self.chans.values() {
            m.chan_buf_bytes += c.buf.iter().map(Val::approx_bytes).sum::<u64>();
        }
        m
    }

    /// Captures a goroutine profile — the simulator's
    /// `/debug/pprof/goroutine?debug=2`.
    ///
    /// Goroutines appear in ascending goroutine-id order for deterministic
    /// output. Blocked goroutines carry synthetic `runtime.*` leaf frames
    /// exactly like real Go stacks (paper Fig 4).
    pub fn goroutine_profile(&self, instance: impl Into<String>) -> GoroutineProfile {
        let mut gids: Vec<Gid> = self.goroutines.keys().copied().collect();
        gids.sort_unstable();
        let goroutines = gids
            .into_iter()
            .map(|gid| {
                let g = &self.goroutines[&gid];
                let (status, synth) = self.status_and_frames(g);
                let mut stack = synth;
                stack.extend(g.body.stack());
                GoroutineRecord {
                    gid,
                    name: g.name.clone(),
                    status,
                    stack,
                    created_by: g.created_by.clone(),
                    wait_ticks: match g.state {
                        GState::Blocked(_) => self.clock - g.wait_since,
                        GState::Runnable => 0,
                    },
                    retained_bytes: self.config.stack_bytes + g.heap_bytes,
                }
            })
            .collect();
        GoroutineProfile {
            instance: instance.into(),
            captured_at: self.clock,
            goroutines,
        }
    }

    fn status_and_frames(&self, g: &Goroutine) -> (GoStatus, Vec<Frame>) {
        let gopark = Frame::runtime("runtime.gopark");
        match &g.state {
            GState::Runnable => (GoStatus::Runnable, Vec::new()),
            GState::Blocked(b) => match b {
                Blocked::Send { .. } => (
                    GoStatus::ChanSend { nil_chan: false },
                    vec![
                        gopark,
                        Frame::runtime("runtime.chansend"),
                        Frame::runtime("runtime.chansend1"),
                    ],
                ),
                Blocked::Recv { .. } => (
                    GoStatus::ChanReceive { nil_chan: false },
                    vec![
                        gopark,
                        Frame::runtime("runtime.chanrecv"),
                        Frame::runtime("runtime.chanrecv1"),
                    ],
                ),
                Blocked::NilOp { send, .. } => {
                    let frames = if *send {
                        vec![
                            gopark,
                            Frame::runtime("runtime.chansend"),
                            Frame::runtime("runtime.chansend1"),
                        ]
                    } else {
                        vec![
                            gopark,
                            Frame::runtime("runtime.chanrecv"),
                            Frame::runtime("runtime.chanrecv1"),
                        ]
                    };
                    let status = if *send {
                        GoStatus::ChanSend { nil_chan: true }
                    } else {
                        GoStatus::ChanReceive { nil_chan: true }
                    };
                    (status, frames)
                }
                Blocked::Select { arms, .. } => (
                    GoStatus::Select { ncases: arms.len() },
                    vec![gopark, Frame::runtime("runtime.selectgo")],
                ),
                Blocked::Sleep { .. } => (
                    GoStatus::Sleep,
                    vec![gopark, Frame::runtime("runtime.timeSleep")],
                ),
                Blocked::Park { reason, .. } => match reason {
                    ParkReason::IoWait => (
                        GoStatus::IoWait,
                        vec![gopark, Frame::runtime("internal/poll.runtime_pollWait")],
                    ),
                    ParkReason::Syscall => (
                        GoStatus::Syscall,
                        vec![Frame::runtime("runtime.exitsyscall")],
                    ),
                    ParkReason::Sleep => (
                        GoStatus::Sleep,
                        vec![gopark, Frame::runtime("runtime.timeSleep")],
                    ),
                },
                Blocked::Sem { .. } => (
                    GoStatus::SemAcquire,
                    vec![
                        gopark,
                        Frame::runtime("runtime.semacquire1"),
                        Frame::runtime("internal/sync.runtime_SemacquireMutex"),
                    ],
                ),
                Blocked::Wg { .. } => (
                    GoStatus::SemAcquire,
                    vec![
                        gopark,
                        Frame::runtime("runtime.semacquire1"),
                        Frame::runtime("internal/sync.runtime_Semacquire"),
                    ],
                ),
                Blocked::Cond { .. } => (
                    GoStatus::CondWait,
                    vec![
                        gopark,
                        Frame::runtime("internal/sync.runtime_notifyListWait"),
                    ],
                ),
            },
        }
    }
}
