//! Runtime values.
//!
//! Channels in the simulator are dynamically typed: they carry [`Val`]s.
//! Each channel records the *zero value* of its element type so that a
//! receive from a closed channel yields the right zero value, as in Go.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{ChanId, CondId, SemId, WgId};

/// A dynamically typed runtime value.
///
/// `Val` is deliberately small and cheap to clone: microservice handler
/// simulations pass thousands of these per virtual second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Val {
    /// The unit value (also the default zero value of untyped channels).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// A channel handle.
    Chan(ChanId),
    /// The nil channel: operations on it block forever (Go semantics).
    NilChan,
    /// A semaphore handle (used to model `sync.Mutex` and raw semaphores).
    Sem(SemId),
    /// A wait-group handle (`sync.WaitGroup`).
    Wg(WgId),
    /// A condition-variable handle (`sync.Cond`).
    Cond(CondId),
    /// A list of values.
    List(Vec<Val>),
}

impl Val {
    /// Truthiness used by `if`/`for` conditions in the script IR.
    ///
    /// Only `Bool` values are conditionable; anything else indicates a
    /// lowering bug and is treated as a runtime panic by the executor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Channel view; `NilChan` yields `None` here, use [`Val::chan_ref`]
    /// when nil must be distinguished from non-channel values.
    pub fn as_chan(&self) -> Option<ChanId> {
        match self {
            Val::Chan(c) => Some(*c),
            _ => None,
        }
    }

    /// Classifies a value as a channel reference.
    pub fn chan_ref(&self) -> ChanRef {
        match self {
            Val::Chan(c) => ChanRef::Chan(*c),
            Val::NilChan => ChanRef::Nil,
            _ => ChanRef::NotAChan,
        }
    }

    /// Zero value for a type tag (mirrors Go zero values).
    pub fn zero_of(tag: TypeTag) -> Val {
        match tag {
            TypeTag::Unit => Val::Unit,
            TypeTag::Bool => Val::Bool(false),
            TypeTag::Int => Val::Int(0),
            TypeTag::Float => Val::Float(0.0),
            TypeTag::Str => Val::Str(String::new()),
            TypeTag::Chan => Val::NilChan,
            TypeTag::List => Val::List(Vec::new()),
        }
    }

    /// Approximate heap footprint of the value in bytes, used by the
    /// memory accounting model for channel buffers.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Val::Unit | Val::Bool(_) => 1,
            Val::Int(_) | Val::Float(_) => 8,
            Val::Str(s) => 24 + s.len() as u64,
            Val::Chan(_) | Val::NilChan => 8,
            Val::Sem(_) | Val::Wg(_) | Val::Cond(_) => 8,
            Val::List(items) => 24 + items.iter().map(Val::approx_bytes).sum::<u64>(),
        }
    }
}

// Kept manual: the in-tree serde derive does not parse `#[default]`
// variant attributes, so `#[derive(Default)]` is unavailable here.
#[allow(clippy::derivable_impls)]
impl Default for Val {
    fn default() -> Self {
        Val::Unit
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Unit => write!(f, "()"),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Float(x) => write!(f, "{x}"),
            Val::Str(s) => write!(f, "{s:?}"),
            Val::Chan(c) => write!(f, "chan#{}", c.0),
            Val::NilChan => write!(f, "nil chan"),
            Val::Sem(s) => write!(f, "sem#{}", s.0),
            Val::Wg(w) => write!(f, "waitgroup#{}", w.0),
            Val::Cond(c) => write!(f, "cond#{}", c.0),
            Val::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::Int(v)
    }
}

impl From<bool> for Val {
    fn from(v: bool) -> Self {
        Val::Bool(v)
    }
}

impl From<&str> for Val {
    fn from(v: &str) -> Self {
        Val::Str(v.to_owned())
    }
}

impl From<String> for Val {
    fn from(v: String) -> Self {
        Val::Str(v)
    }
}

impl From<ChanId> for Val {
    fn from(v: ChanId) -> Self {
        Val::Chan(v)
    }
}

/// Classification of a value used where a channel is expected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanRef {
    /// A real channel.
    Chan(ChanId),
    /// The nil channel.
    Nil,
    /// Not a channel at all — a runtime type error.
    NotAChan,
}

/// Minimal type tags, used for zero values of channel elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeTag {
    /// The unit type.
    Unit,
    /// Booleans.
    Bool,
    /// Integers.
    Int,
    /// Floats.
    Float,
    /// Strings.
    Str,
    /// Channels.
    Chan,
    /// Lists.
    List,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_values_match_go() {
        assert_eq!(Val::zero_of(TypeTag::Int), Val::Int(0));
        assert_eq!(Val::zero_of(TypeTag::Bool), Val::Bool(false));
        assert_eq!(Val::zero_of(TypeTag::Str), Val::Str(String::new()));
        assert_eq!(Val::zero_of(TypeTag::Chan), Val::NilChan);
    }

    #[test]
    fn chan_ref_classification() {
        assert_eq!(Val::NilChan.chan_ref(), ChanRef::Nil);
        assert_eq!(Val::Int(3).chan_ref(), ChanRef::NotAChan);
        let c = ChanId(7);
        assert_eq!(Val::Chan(c).chan_ref(), ChanRef::Chan(c));
    }

    #[test]
    fn approx_bytes_monotone_in_content() {
        let small = Val::Str("a".into()).approx_bytes();
        let large = Val::Str("aaaaaaaaaa".into()).approx_bytes();
        assert!(large > small);
        let list = Val::List(vec![Val::Int(1), Val::Int(2)]);
        assert!(list.approx_bytes() > Val::Int(1).approx_bytes());
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Val::Unit,
            Val::Bool(true),
            Val::Int(-4),
            Val::Str("x".into()),
            Val::NilChan,
            Val::List(vec![]),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
