//! Fluent builders for script programs.
//!
//! The builders let Rust code express mini-Go-shaped concurrent programs
//! directly, with explicit line numbers so that leak reports point at
//! meaningful `file:line` locations:
//!
//! ```
//! use gosim::script::{fnb, Expr, Prog};
//!
//! // Listing 1 of the paper: the discount-channel partial deadlock.
//! let prog = Prog::build(|p| {
//!     p.func(fnb("transactions.ComputeCost", "transactions/cost.go").body(|b| {
//!         b.make_chan("ch", 0, 5);
//!         b.go_closure(6, |g| {
//!             g.work(Expr::int(1), 7);
//!             g.send("ch", Expr::int(1), 8); // blocks forever on the error path
//!         });
//!         b.if_(gosim::script::Expr::var("err"), 12, |t| {
//!             t.ret(13);
//!         });
//!         b.recv("ch", 15);
//!     }).params(&["err"]));
//! });
//! assert!(prog.func("transactions.ComputeCost").is_some());
//! ```

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use crate::loc::Loc;
use crate::proc::ParkReason;
use crate::script::ir::{block, Arm, ArmIr, Block, Expr, FuncDef, Prog, Stmt};
use crate::val::TypeTag;

/// Starts building a function.
pub fn fnb(name: impl Into<String>, file: impl Into<Arc<str>>) -> FuncBuilder {
    FuncBuilder {
        name: name.into(),
        file: file.into(),
        params: Vec::new(),
        stmts: Vec::new(),
        built: false,
    }
}

/// Builds a whole program; see [`Prog::build`].
#[derive(Debug, Default)]
pub struct ProgBuilder {
    funcs: Vec<FuncDef>,
}

impl ProgBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        ProgBuilder::default()
    }

    /// Adds a function.
    pub fn func(&mut self, fb: FuncBuilder) -> &mut Self {
        self.funcs.push(fb.into_def());
        self
    }

    /// Adds an already-lowered function definition.
    pub fn def(&mut self, def: FuncDef) -> &mut Self {
        self.funcs.push(def);
        self
    }

    /// Finishes the program.
    pub fn finish(self) -> Prog {
        Prog::new(self.funcs)
    }
}

/// Builds one function.
#[derive(Debug)]
pub struct FuncBuilder {
    name: String,
    file: Arc<str>,
    params: Vec<String>,
    stmts: Vec<Stmt>,
    built: bool,
}

impl FuncBuilder {
    /// Declares parameter names.
    pub fn params(mut self, ps: &[&str]) -> Self {
        self.params = ps.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Provides the body through a [`BlockBuilder`].
    pub fn body(mut self, f: impl FnOnce(&mut BlockBuilder)) -> Self {
        let ctx = Ctx {
            file: self.file.clone(),
            func: self.name.clone(),
            closures: Rc::new(Cell::new(0)),
        };
        let mut b = BlockBuilder {
            ctx,
            stmts: Vec::new(),
        };
        f(&mut b);
        self.stmts = b.stmts;
        self.built = true;
        self
    }

    fn into_def(self) -> FuncDef {
        FuncDef {
            name: self.name,
            file: self.file,
            params: self.params,
            body: block(self.stmts),
        }
    }
}

#[derive(Debug, Clone)]
struct Ctx {
    file: Arc<str>,
    func: String,
    closures: Rc<Cell<u32>>,
}

impl Ctx {
    fn loc(&self, line: u32) -> Loc {
        Loc::new(self.file.clone(), line)
    }
}

/// Builds a block of statements. Obtained from [`FuncBuilder::body`] and
/// the control-flow combinators.
#[derive(Debug)]
pub struct BlockBuilder {
    ctx: Ctx,
    stmts: Vec<Stmt>,
}

impl BlockBuilder {
    fn child(&self) -> BlockBuilder {
        BlockBuilder {
            ctx: self.ctx.clone(),
            stmts: Vec::new(),
        }
    }

    fn sub(&self, f: impl FnOnce(&mut BlockBuilder)) -> Block {
        let mut b = self.child();
        f(&mut b);
        block(b.stmts)
    }

    /// Appends a raw statement.
    pub fn raw(&mut self, stmt: Stmt) -> &mut Self {
        self.stmts.push(stmt);
        self
    }

    /// `var = expr`.
    pub fn assign(&mut self, var: &str, expr: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Assign {
            var: var.into(),
            expr: expr.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `var := make(chan int, cap)`.
    pub fn make_chan(&mut self, var: &str, cap: usize, line: u32) -> &mut Self {
        self.make_chan_of(var, cap, TypeTag::Int, line)
    }

    /// `var := make(chan <elem>, cap)`.
    pub fn make_chan_of(&mut self, var: &str, cap: usize, elem: TypeTag, line: u32) -> &mut Self {
        self.stmts.push(Stmt::MakeChan {
            var: var.into(),
            cap: Expr::int(cap as i64),
            elem,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `var := make(chan T, capExpr)` with a dynamic capacity.
    pub fn make_chan_dyn(&mut self, var: &str, cap: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::MakeChan {
            var: var.into(),
            cap: cap.into(),
            elem: TypeTag::Int,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `ch <- val`.
    pub fn send(&mut self, ch: &str, val: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Send {
            ch: Expr::var(ch),
            val: val.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `<-ch` (result discarded).
    pub fn recv(&mut self, ch: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Recv {
            var: None,
            ok: None,
            ch: Expr::var(ch),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `v := <-ch`.
    pub fn recv_into(&mut self, var: &str, ch: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Recv {
            var: Some(var.into()),
            ok: None,
            ch: Expr::var(ch),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `v, ok := <-ch`.
    pub fn recv_ok(&mut self, var: &str, ok: &str, ch: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Recv {
            var: Some(var.into()),
            ok: Some(ok.into()),
            ch: Expr::var(ch),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `close(ch)`.
    pub fn close(&mut self, ch: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Close {
            ch: Expr::var(ch),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `select { ... }`; see [`SelectBuilder`].
    pub fn select(&mut self, line: u32, f: impl FnOnce(&mut SelectBuilder)) -> &mut Self {
        let mut sb = SelectBuilder {
            parent: self,
            arms: Vec::new(),
            default: None,
        };
        f(&mut sb);
        let (arms, default) = (sb.arms, sb.default);
        self.stmts.push(Stmt::Select {
            arms,
            default,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `go func(){ ... }()` — an anonymous closure capturing the current
    /// environment by value. Named `<func>$N` like Go's compiler does.
    pub fn go_closure(&mut self, line: u32, f: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let n = self.ctx.closures.get() + 1;
        self.ctx.closures.set(n);
        let name = format!("{}${}", self.ctx.func, n);
        let body = self.sub(f);
        self.stmts.push(Stmt::GoClosure {
            name,
            body,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `go f(args...)`.
    pub fn go_call(&mut self, func: &str, args: Vec<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::GoCall {
            func: func.into(),
            args,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `ret := f(args...)`.
    pub fn call(&mut self, ret: Option<&str>, func: &str, args: Vec<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Call {
            ret: ret.map(|s| s.to_string()),
            func: func.into(),
            args,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `return`.
    pub fn ret(&mut self, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Return {
            expr: None,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `return expr`.
    pub fn ret_val(&mut self, expr: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Return {
            expr: Some(expr.into()),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `if cond { ... }`.
    pub fn if_(
        &mut self,
        cond: impl Into<Expr>,
        line: u32,
        then: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let t = self.sub(then);
        self.stmts.push(Stmt::If {
            cond: cond.into(),
            then: t,
            els: block(vec![]),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `if cond { ... } else { ... }`.
    pub fn if_else(
        &mut self,
        cond: impl Into<Expr>,
        line: u32,
        then: impl FnOnce(&mut BlockBuilder),
        els: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let t = self.sub(then);
        let e = self.sub(els);
        self.stmts.push(Stmt::If {
            cond: cond.into(),
            then: t,
            els: e,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `for { ... }`.
    pub fn loop_(&mut self, line: u32, f: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let body = self.sub(f);
        self.stmts.push(Stmt::While {
            cond: None,
            body,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `for cond { ... }`.
    pub fn while_(
        &mut self,
        cond: impl Into<Expr>,
        line: u32,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let body = self.sub(f);
        self.stmts.push(Stmt::While {
            cond: Some(cond.into()),
            body,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `for i := 0; i < n; i++ { ... }`.
    pub fn for_n(
        &mut self,
        var: &str,
        n: impl Into<Expr>,
        line: u32,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let body = self.sub(f);
        self.stmts.push(Stmt::ForN {
            var: var.into(),
            n: n.into(),
            body,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `for v := range ch { ... }`.
    pub fn for_range(
        &mut self,
        var: Option<&str>,
        ch: &str,
        line: u32,
        f: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let body = self.sub(f);
        self.stmts.push(Stmt::ForRange {
            var: var.map(|s| s.to_string()),
            ch: Expr::var(ch),
            body,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `break`.
    pub fn brk(&mut self, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Break {
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `continue`.
    pub fn cont(&mut self, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Continue {
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `time.Sleep(d)`.
    pub fn sleep(&mut self, d: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Sleep {
            d: d.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `var := time.After(d)`.
    pub fn after(&mut self, var: &str, d: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::After {
            var: var.into(),
            d: d.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `var := time.Tick(period)`.
    pub fn tick(&mut self, var: &str, period: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::TickCh {
            var: var.into(),
            period: period.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `ctx, cancel := context.WithTimeout(parent, d)`.
    pub fn ctx_with_timeout(
        &mut self,
        ctx_var: &str,
        cancel_var: &str,
        d: impl Into<Expr>,
        line: u32,
    ) -> &mut Self {
        self.stmts.push(Stmt::CtxWithTimeout {
            ctx_var: ctx_var.into(),
            cancel_var: cancel_var.into(),
            d: Some(d.into()),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `ctx, cancel := context.WithCancel(parent)`.
    pub fn ctx_with_cancel(&mut self, ctx_var: &str, cancel_var: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::CtxWithTimeout {
            ctx_var: ctx_var.into(),
            cancel_var: cancel_var.into(),
            d: None,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `cancel()`.
    pub fn cancel(&mut self, cancel_var: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::CancelCtx {
            ch: Expr::var(cancel_var),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// Simulated blocking I/O or syscall.
    pub fn park(&mut self, reason: ParkReason, dur: Option<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Park {
            reason,
            dur,
            loc: self.ctx.loc(line),
        });
        self
    }

    /// Attribute heap bytes to the goroutine.
    pub fn alloc(&mut self, bytes: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Alloc {
            bytes: bytes.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// Consume abstract CPU work.
    pub fn work(&mut self, units: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Work {
            units: units.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `defer close(ch)`.
    pub fn defer_close(&mut self, ch: &str, line: u32) -> &mut Self {
        let loc = self.ctx.loc(line);
        self.stmts.push(Stmt::Defer {
            stmt: Box::new(Stmt::Close {
                ch: Expr::var(ch),
                loc: loc.clone(),
            }),
            loc,
        });
        self
    }

    /// `defer cancel()`.
    pub fn defer_cancel(&mut self, cancel_var: &str, line: u32) -> &mut Self {
        let loc = self.ctx.loc(line);
        self.stmts.push(Stmt::Defer {
            stmt: Box::new(Stmt::CancelCtx {
                ch: Expr::var(cancel_var),
                loc: loc.clone(),
            }),
            loc,
        });
        self
    }

    /// `defer wg.Done()`.
    pub fn defer_wg_done(&mut self, wg: &str, line: u32) -> &mut Self {
        let loc = self.ctx.loc(line);
        self.stmts.push(Stmt::Defer {
            stmt: Box::new(Stmt::WgDone {
                wg: Expr::var(wg),
                loc: loc.clone(),
            }),
            loc,
        });
        self
    }

    /// `panic(msg)`.
    pub fn panic_(&mut self, msg: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Panic {
            msg: msg.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `var wg sync.WaitGroup`.
    pub fn make_wg(&mut self, var: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::MakeWg {
            var: var.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `wg.Add(delta)`.
    pub fn wg_add(&mut self, wg: &str, delta: impl Into<Expr>, line: u32) -> &mut Self {
        self.stmts.push(Stmt::WgAdd {
            wg: Expr::var(wg),
            delta: delta.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `wg.Done()`.
    pub fn wg_done(&mut self, wg: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::WgDone {
            wg: Expr::var(wg),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `wg.Wait()`.
    pub fn wg_wait(&mut self, wg: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::WgWait {
            wg: Expr::var(wg),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `var mu sync.Mutex`.
    pub fn make_mutex(&mut self, var: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::MakeMutex {
            var: var.into(),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `mu.Lock()`.
    pub fn lock(&mut self, mu: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Lock {
            mu: Expr::var(mu),
            loc: self.ctx.loc(line),
        });
        self
    }

    /// `mu.Unlock()`.
    pub fn unlock(&mut self, mu: &str, line: u32) -> &mut Self {
        self.stmts.push(Stmt::Unlock {
            mu: Expr::var(mu),
            loc: self.ctx.loc(line),
        });
        self
    }
}

/// Builds the arms of a `select` statement.
#[derive(Debug)]
pub struct SelectBuilder<'a> {
    parent: &'a BlockBuilder,
    arms: Vec<Arm>,
    default: Option<Block>,
}

impl SelectBuilder<'_> {
    /// `case v := <-ch: { ... }`.
    pub fn recv_arm(
        &mut self,
        var: Option<&str>,
        ch: &str,
        line: u32,
        body: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let b = self.parent.sub(body);
        self.arms.push(Arm {
            op: ArmIr::Recv {
                var: var.map(|s| s.to_string()),
                ok: None,
                ch: Expr::var(ch),
            },
            body: b,
            loc: self.parent.ctx.loc(line),
        });
        self
    }

    /// `case v, ok := <-ch: { ... }`.
    pub fn recv_ok_arm(
        &mut self,
        var: &str,
        ok: &str,
        ch: &str,
        line: u32,
        body: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let b = self.parent.sub(body);
        self.arms.push(Arm {
            op: ArmIr::Recv {
                var: Some(var.to_string()),
                ok: Some(ok.to_string()),
                ch: Expr::var(ch),
            },
            body: b,
            loc: self.parent.ctx.loc(line),
        });
        self
    }

    /// `case ch <- val: { ... }`.
    pub fn send_arm(
        &mut self,
        ch: &str,
        val: impl Into<Expr>,
        line: u32,
        body: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let b = self.parent.sub(body);
        self.arms.push(Arm {
            op: ArmIr::Send {
                ch: Expr::var(ch),
                val: val.into(),
            },
            body: b,
            loc: self.parent.ctx.loc(line),
        });
        self
    }

    /// `default: { ... }`.
    pub fn default(&mut self, body: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        self.default = Some(self.parent.sub(body));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_named_closures() {
        let prog = Prog::build(|p| {
            p.func(fnb("pkg.F", "pkg/f.go").body(|b| {
                b.make_chan("ch", 0, 1);
                b.go_closure(2, |g| {
                    g.send("ch", Expr::int(1), 3);
                });
                b.go_closure(4, |g| {
                    g.recv("ch", 5);
                });
            }));
        });
        let f = prog.func("pkg.F").unwrap();
        let names: Vec<String> = f
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::GoClosure { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["pkg.F$1", "pkg.F$2"]);
    }

    #[test]
    fn select_builder_collects_arms_and_default() {
        let prog = Prog::build(|p| {
            p.func(fnb("pkg.S", "pkg/s.go").body(|b| {
                b.make_chan("a", 0, 1);
                b.make_chan("bch", 0, 2);
                b.select(3, |s| {
                    s.recv_arm(Some("v"), "a", 4, |_| {});
                    s.send_arm("bch", Expr::int(9), 5, |_| {});
                    s.default(|d| {
                        d.ret(6);
                    });
                });
            }));
        });
        let f = prog.func("pkg.S").unwrap();
        match &f.body[2] {
            Stmt::Select { arms, default, .. } => {
                assert_eq!(arms.len(), 2);
                assert!(default.is_some());
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn params_are_recorded() {
        let prog = Prog::build(|p| {
            p.func(fnb("pkg.P", "p.go").params(&["x", "y"]).body(|_| {}));
        });
        assert_eq!(prog.func("pkg.P").unwrap().params, vec!["x", "y"]);
    }
}
