//! Structured goroutine bodies: IR, executor, and builders.
//!
//! This module is the primary way to write programs for the simulator:
//!
//! * [`ir`] — the statement/expression IR ([`Prog`], [`Stmt`], [`Expr`]);
//! * [`exec`] — the resumable executor ([`ScriptProc`]) implementing
//!   [`crate::Process`];
//! * [`build`] — fluent builders ([`fnb`], [`ProgBuilder`]).

pub mod build;
pub mod exec;
pub mod ir;

pub use build::{fnb, BlockBuilder, FuncBuilder, ProgBuilder, SelectBuilder};
pub use exec::ScriptProc;
pub use ir::{block, Arm, ArmIr, BinOp, Block, Expr, FuncDef, Prog, Stmt};
