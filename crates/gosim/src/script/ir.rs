//! The script intermediate representation.
//!
//! A [`Prog`] is a set of functions whose bodies are trees of [`Stmt`]s.
//! The IR covers exactly the concurrency subset the paper analyzes:
//! channel make/send/recv/close, `select` (with optional `default`),
//! `go` statements (named calls and closures), `for`/`if` control flow,
//! `for range ch`, timers (`time.Sleep`/`After`/`Tick`), contexts with
//! cancel/timeout, `defer`, and the `sync` primitives that show up in the
//! paper's Table IV (wait groups, mutexes, condition variables).
//!
//! Programs are executed by [`crate::script::ScriptProc`], one goroutine
//! per spawned function, on a [`crate::Runtime`]. The `minigo` crate
//! lowers parsed mini-Go source to this IR; the builder in
//! [`crate::script::build`] constructs it directly from Rust.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::loc::Loc;
use crate::proc::ParkReason;
use crate::val::{TypeTag, Val};

/// A shared, immutable block of statements.
pub type Block = Rc<Vec<Stmt>>;

/// Wraps statements into a shared block.
pub fn block(stmts: Vec<Stmt>) -> Block {
    Rc::new(stmts)
}

/// Binary operators available in script expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (ints, floats; string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (panics on division by zero, as in Go).
    Div,
    /// `%` (panics on modulo by zero).
    Mod,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `&&` (non-short-circuit at IR level; lowering preserves semantics
    /// because operands in the subset are effect-free).
    And,
    /// `||`.
    Or,
}

/// An effect-free expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A literal value.
    Lit(Val),
    /// A variable reference.
    Var(String),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `len(x)` for lists and strings.
    Len(Box<Expr>),
    /// `xs[i]` for lists.
    Index(Box<Expr>, Box<Expr>),
    /// A list literal.
    List(Vec<Expr>),
}

impl Expr {
    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Val::Int(v))
    }

    /// Shorthand for a boolean literal.
    pub fn bool(v: bool) -> Expr {
        Expr::Lit(Val::Bool(v))
    }

    /// Shorthand for a string literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Lit(Val::Str(v.into()))
    }
}

impl From<Val> for Expr {
    fn from(v: Val) -> Expr {
        Expr::Lit(v)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::Lit(Val::Int(v))
    }
}

impl From<bool> for Expr {
    fn from(v: bool) -> Expr {
        Expr::Lit(Val::Bool(v))
    }
}

/// One `case` arm of a `select`.
#[derive(Debug, Clone)]
pub struct Arm {
    /// The guarded communication.
    pub op: ArmIr,
    /// Statements run when this arm fires.
    pub body: Block,
    /// Source location of the `case`.
    pub loc: Loc,
}

/// The communication of a `select` arm.
#[derive(Debug, Clone)]
pub enum ArmIr {
    /// `case v, ok := <-ch:`.
    Recv {
        /// Variable bound to the received value, if any.
        var: Option<String>,
        /// Variable bound to the `ok` flag, if any.
        ok: Option<String>,
        /// The channel expression.
        ch: Expr,
    },
    /// `case ch <- val:`.
    Send {
        /// The channel expression.
        ch: Expr,
        /// The value expression.
        val: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `x = expr` / `x := expr`.
    Assign {
        /// Target variable.
        var: String,
        /// Right-hand side.
        expr: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `ch := make(chan T, cap)`.
    MakeChan {
        /// Target variable.
        var: String,
        /// Capacity expression (0 = unbuffered).
        cap: Expr,
        /// Element type tag (for the zero value on closed receive).
        elem: TypeTag,
        /// Source location.
        loc: Loc,
    },
    /// `ch <- val`.
    Send {
        /// Channel expression.
        ch: Expr,
        /// Value expression.
        val: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `v, ok := <-ch` (either binding optional; both `None` = bare recv).
    Recv {
        /// Value binding.
        var: Option<String>,
        /// `ok` binding.
        ok: Option<String>,
        /// Channel expression.
        ch: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `close(ch)`.
    Close {
        /// Channel expression.
        ch: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `select { ... }`.
    Select {
        /// Communication arms.
        arms: Vec<Arm>,
        /// Optional `default` block.
        default: Option<Block>,
        /// Source location.
        loc: Loc,
    },
    /// `go func(){ ... }()` — spawn an anonymous closure that captures the
    /// current environment by value.
    GoClosure {
        /// Display name, e.g. `pkg.Handler$1`.
        name: String,
        /// Closure body.
        body: Block,
        /// Source location of the `go`.
        loc: Loc,
    },
    /// `go f(args...)` — spawn a named function.
    GoCall {
        /// Callee name.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source location of the `go`.
        loc: Loc,
    },
    /// `x := f(args...)` — synchronous call.
    Call {
        /// Variable receiving the return value, if any.
        ret: Option<String>,
        /// Callee name.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// `return expr?`.
    Return {
        /// Optional return value.
        expr: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// `if cond { .. } else { .. }`.
    If {
        /// Condition (must evaluate to a boolean).
        cond: Expr,
        /// Then-block.
        then: Block,
        /// Else-block (possibly empty).
        els: Block,
        /// Source location.
        loc: Loc,
    },
    /// `for { .. }` / `for cond { .. }`.
    While {
        /// Loop condition; `None` means `for { ... }` (infinite).
        cond: Option<Expr>,
        /// Loop body.
        body: Block,
        /// Source location.
        loc: Loc,
    },
    /// `for i := 0; i < n; i++ { .. }`.
    ForN {
        /// Induction variable.
        var: String,
        /// Iteration count expression (evaluated once at entry).
        n: Expr,
        /// Loop body.
        body: Block,
        /// Source location.
        loc: Loc,
    },
    /// `for v := range ch { .. }` — iterates until the channel is closed.
    ForRange {
        /// Binding for each received element.
        var: Option<String>,
        /// Channel expression.
        ch: Expr,
        /// Loop body.
        body: Block,
        /// Source location (of the `range` receive).
        loc: Loc,
    },
    /// `break`.
    Break {
        /// Source location.
        loc: Loc,
    },
    /// `continue`.
    Continue {
        /// Source location.
        loc: Loc,
    },
    /// `time.Sleep(d)`.
    Sleep {
        /// Duration in ticks.
        d: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `c := time.After(d)`.
    After {
        /// Target variable for the timer channel.
        var: String,
        /// Delay in ticks.
        d: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `t := time.Tick(d)`.
    TickCh {
        /// Target variable for the ticker channel.
        var: String,
        /// Period in ticks.
        period: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `ctx, cancel := context.WithTimeout(parent, d)` /
    /// `context.WithCancel(parent)` when `d` is `None`.
    ///
    /// The context is represented by its done-channel, stored in both
    /// `ctx_var` (for `<-ctx.Done()`) and `cancel_var` (for `cancel()`).
    CtxWithTimeout {
        /// Variable holding the done channel.
        ctx_var: String,
        /// Variable holding the cancel handle (same channel).
        cancel_var: String,
        /// Deadline delay; `None` = cancel-only context.
        d: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// `cancel()` — idempotent close of a context done channel.
    CancelCtx {
        /// The done-channel expression.
        ch: Expr,
        /// Source location.
        loc: Loc,
    },
    /// Simulated non-channel blocking (I/O wait, syscall).
    Park {
        /// Park reason shown in profiles.
        reason: ParkReason,
        /// Duration in ticks; `None` parks forever.
        dur: Option<Expr>,
        /// Source location.
        loc: Loc,
    },
    /// Attribute heap bytes to this goroutine.
    Alloc {
        /// Byte count (may be negative to free).
        bytes: Expr,
        /// Source location.
        loc: Loc,
    },
    /// Consume abstract CPU work.
    Work {
        /// Work units.
        units: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `defer <stmt>` — run at function exit, LIFO.
    Defer {
        /// Deferred statement (commonly `Close`, `CancelCtx`, `WgDone`).
        stmt: Box<Stmt>,
        /// Source location.
        loc: Loc,
    },
    /// `panic(msg)`.
    Panic {
        /// Message.
        msg: String,
        /// Source location.
        loc: Loc,
    },
    /// `var wg sync.WaitGroup`.
    MakeWg {
        /// Target variable.
        var: String,
        /// Source location.
        loc: Loc,
    },
    /// `wg.Add(delta)`.
    WgAdd {
        /// Wait group expression.
        wg: Expr,
        /// Delta expression.
        delta: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `wg.Done()`.
    WgDone {
        /// Wait group expression.
        wg: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `wg.Wait()`.
    WgWait {
        /// Wait group expression.
        wg: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `var mu sync.Mutex` (a capacity-1 semaphore).
    MakeMutex {
        /// Target variable.
        var: String,
        /// Source location.
        loc: Loc,
    },
    /// `mu.Lock()`.
    Lock {
        /// Mutex expression.
        mu: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `mu.Unlock()`.
    Unlock {
        /// Mutex expression.
        mu: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `var cv sync.Cond`.
    MakeCond {
        /// Target variable.
        var: String,
        /// Source location.
        loc: Loc,
    },
    /// `cv.Wait()`.
    CondWait {
        /// Condition variable expression.
        cond: Expr,
        /// Source location.
        loc: Loc,
    },
    /// `cv.Signal()` / `cv.Broadcast()`.
    CondNotify {
        /// Condition variable expression.
        cond: Expr,
        /// Wake all waiters.
        all: bool,
        /// Source location.
        loc: Loc,
    },
    /// A shared-variable access marker (emitted by race-instrumented
    /// lowering; see `minigo::compile_many_race`). Forwarded to the
    /// runtime as [`crate::Effect::Access`].
    Access {
        /// Variable name.
        var: String,
        /// True for writes.
        is_write: bool,
        /// Source location of the access.
        loc: Loc,
    },
    /// No-op (placeholder produced by some lowerings).
    Nop,
}

impl Stmt {
    /// The statement's source location (unknown for `Nop`).
    pub fn loc(&self) -> Loc {
        use Stmt::*;
        match self {
            Assign { loc, .. }
            | MakeChan { loc, .. }
            | Send { loc, .. }
            | Recv { loc, .. }
            | Close { loc, .. }
            | Select { loc, .. }
            | GoClosure { loc, .. }
            | GoCall { loc, .. }
            | Call { loc, .. }
            | Return { loc, .. }
            | If { loc, .. }
            | While { loc, .. }
            | ForN { loc, .. }
            | ForRange { loc, .. }
            | Break { loc }
            | Continue { loc }
            | Sleep { loc, .. }
            | After { loc, .. }
            | TickCh { loc, .. }
            | CtxWithTimeout { loc, .. }
            | CancelCtx { loc, .. }
            | Park { loc, .. }
            | Alloc { loc, .. }
            | Work { loc, .. }
            | Defer { loc, .. }
            | Panic { loc, .. }
            | MakeWg { loc, .. }
            | WgAdd { loc, .. }
            | WgDone { loc, .. }
            | WgWait { loc, .. }
            | MakeMutex { loc, .. }
            | Lock { loc, .. }
            | Unlock { loc, .. }
            | MakeCond { loc, .. }
            | CondWait { loc, .. }
            | CondNotify { loc, .. }
            | Access { loc, .. } => loc.clone(),
            Nop => Loc::unknown(),
        }
    }
}

/// A function definition.
#[derive(Debug, Clone)]
pub struct FuncDef {
    /// Fully qualified name, e.g. `transactions.ComputeCost`.
    pub name: String,
    /// File the function lives in.
    pub file: Arc<str>,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body.
    pub body: Block,
}

/// A complete script program: a set of functions.
///
/// `Prog` is cheaply cloneable (internally reference counted) so that each
/// spawned goroutine can hold it.
#[derive(Debug, Clone)]
pub struct Prog {
    inner: Rc<ProgInner>,
}

#[derive(Debug)]
struct ProgInner {
    funcs: HashMap<String, Rc<FuncDef>>,
}

impl Prog {
    /// Creates a program from a list of functions.
    pub fn new(funcs: Vec<FuncDef>) -> Prog {
        let funcs = funcs
            .into_iter()
            .map(|f| (f.name.clone(), Rc::new(f)))
            .collect();
        Prog {
            inner: Rc::new(ProgInner { funcs }),
        }
    }

    /// Builds a program with the fluent builder API.
    ///
    /// See [`crate::script::build`] for the builder types.
    pub fn build(f: impl FnOnce(&mut crate::script::build::ProgBuilder)) -> Prog {
        let mut b = crate::script::build::ProgBuilder::new();
        f(&mut b);
        b.finish()
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<Rc<FuncDef>> {
        self.inner.funcs.get(name).cloned()
    }

    /// Iterates over all function names (unordered).
    pub fn func_names(&self) -> impl Iterator<Item = &str> {
        self.inner.funcs.keys().map(|s| s.as_str())
    }

    /// Number of functions in the program.
    pub fn len(&self) -> usize {
        self.inner.funcs.len()
    }

    /// True if the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.inner.funcs.is_empty()
    }

    /// Spawns `main` as a goroutine on the runtime.
    ///
    /// # Panics
    ///
    /// Panics if the program has no `main` function.
    pub fn spawn_main(&self, rt: &mut crate::Runtime) -> crate::Gid {
        self.spawn_func(rt, "main", vec![])
            .expect("program has no `main` function")
    }

    /// Spawns the named function as a goroutine with the given arguments.
    /// Returns `None` if the function does not exist.
    pub fn spawn_func(
        &self,
        rt: &mut crate::Runtime,
        name: &str,
        args: Vec<Val>,
    ) -> Option<crate::Gid> {
        let def = self.func(name)?;
        let proc_ = crate::script::exec::ScriptProc::for_func(self.clone(), def.clone(), args);
        let created_by = crate::Frame::new("runtime.main", Loc::new(def.file.clone(), 0));
        Some(rt.spawn(name.to_owned(), created_by, Box::new(proc_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prog_lookup_and_len() {
        let p = Prog::new(vec![FuncDef {
            name: "main".into(),
            file: "m.go".into(),
            params: vec![],
            body: block(vec![]),
        }]);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(p.func("main").is_some());
        assert!(p.func("nope").is_none());
    }

    #[test]
    fn expr_shorthands() {
        assert!(matches!(Expr::int(3), Expr::Lit(Val::Int(3))));
        assert!(matches!(Expr::bool(true), Expr::Lit(Val::Bool(true))));
        assert!(matches!(Expr::var("x"), Expr::Var(_)));
        let e: Expr = 5i64.into();
        assert!(matches!(e, Expr::Lit(Val::Int(5))));
    }

    #[test]
    fn stmt_loc_extraction() {
        let s = Stmt::Break {
            loc: Loc::new("a.go", 9),
        };
        assert_eq!(s.loc().line, 9);
        assert!(Stmt::Nop.loc().is_unknown());
    }
}
