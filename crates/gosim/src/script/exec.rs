//! The script executor: runs [`crate::script::ir::Prog`] functions as
//! goroutines by implementing [`Process`].
//!
//! The executor is a resumable tree-walker. Each goroutine owns a stack of
//! call frames; each frame owns a stack of cursors into statement blocks
//! (sequences, loops, channel-range loops). Blocking statements surface as
//! [`Effect`]s to the runtime and the executor continues from the
//! delivered [`Resume`].

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use crate::loc::{Frame, Loc};
use crate::proc::{ArmOp, Effect, Process, Resume, SelectArm};
use crate::script::ir::{Arm, ArmIr, BinOp, Block, Expr, FuncDef, Prog, Stmt};
use crate::val::Val;

/// Internal per-resume step budget: after this many internal steps the
/// executor yields so that effect-free loops (`for {}`) cannot wedge the
/// scheduler.
const FUEL: u32 = 4_096;

#[derive(Debug)]
enum Cursor {
    Seq {
        block: Block,
        idx: usize,
    },
    While {
        body: Block,
        idx: usize,
        cond: Option<Expr>,
    },
    ForN {
        body: Block,
        idx: usize,
        var: String,
        i: i64,
        total: i64,
    },
    Range {
        body: Block,
        idx: usize,
        var: Option<String>,
        ch: Val,
        loc: Loc,
        in_body: bool,
    },
}

#[derive(Debug)]
enum Pending {
    None,
    /// Bind the outcome of a plain receive.
    Store {
        var: Option<String>,
        ok: Option<String>,
    },
    /// Bind a `Resume::Made` handle into one or two variables.
    Made {
        var: String,
        extra: Option<String>,
    },
    /// Deliver a receive outcome to the innermost `Range` cursor.
    Range,
    /// Dispatch a completed `select`.
    Select {
        binds: Vec<ArmBind>,
        bodies: Vec<Block>,
        default: Option<Block>,
    },
}

#[derive(Debug)]
struct ArmBind {
    var: Option<String>,
    ok: Option<String>,
}

struct CallFrame {
    display: String,
    file: Arc<str>,
    env: HashMap<String, Val>,
    cursors: Vec<Cursor>,
    cur_loc: Loc,
    defers: Vec<Stmt>,
    running_defers: bool,
    ret_target: Option<String>,
    ret_val: Val,
    pending: Pending,
}

impl CallFrame {
    fn new(
        display: String,
        file: Arc<str>,
        env: HashMap<String, Val>,
        body: Block,
        ret_target: Option<String>,
    ) -> Self {
        CallFrame {
            display,
            file: file.clone(),
            env,
            cursors: vec![Cursor::Seq {
                block: body,
                idx: 0,
            }],
            cur_loc: Loc::new(file, 0),
            defers: Vec::new(),
            running_defers: false,
            ret_target,
            ret_val: Val::Unit,
            pending: Pending::None,
        }
    }
}

/// A goroutine executing a script program.
///
/// Created via [`Prog::spawn_main`] / [`Prog::spawn_func`], or directly
/// with [`ScriptProc::for_func`] when embedding.
pub struct ScriptProc {
    prog: Prog,
    frames: Vec<CallFrame>,
    finished: bool,
}

impl std::fmt::Debug for ScriptProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptProc")
            .field("depth", &self.frames.len())
            .field("finished", &self.finished)
            .finish()
    }
}

enum StepOut {
    /// The statement produced an effect for the runtime.
    Eff(Effect),
    /// The statement completed internally; keep walking.
    Flow,
}

impl ScriptProc {
    /// Creates a process that runs `def` with positional `args`.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the parameter count;
    /// spawning is a host-level operation so this is a programming error,
    /// not a simulated one.
    pub fn for_func(prog: Prog, def: Rc<FuncDef>, args: Vec<Val>) -> ScriptProc {
        assert_eq!(
            def.params.len(),
            args.len(),
            "arity mismatch spawning {}: {} params, {} args",
            def.name,
            def.params.len(),
            args.len()
        );
        let env = def.params.iter().cloned().zip(args).collect();
        let frame = CallFrame::new(
            def.name.clone(),
            def.file.clone(),
            env,
            def.body.clone(),
            None,
        );
        ScriptProc {
            prog,
            frames: vec![frame],
            finished: false,
        }
    }

    /// Creates a process for an anonymous closure body with a captured
    /// environment (used by `go func(){...}()`).
    pub fn for_closure(
        prog: Prog,
        display: String,
        file: Arc<str>,
        env: HashMap<String, Val>,
        body: Block,
    ) -> ScriptProc {
        let frame = CallFrame::new(display, file, env, body, None);
        ScriptProc {
            prog,
            frames: vec![frame],
            finished: false,
        }
    }

    fn top(&mut self) -> &mut CallFrame {
        self.frames.last_mut().expect("executor has no frames")
    }

    fn fail(&mut self, msg: String) -> Effect {
        self.finished = true;
        let loc = self
            .frames
            .last()
            .map(|f| f.cur_loc.clone())
            .unwrap_or_default();
        Effect::Panic { msg, loc }
    }

    // -- resume plumbing ----------------------------------------------------

    fn apply_resume(&mut self, r: Resume) -> Result<(), String> {
        if self.frames.is_empty() {
            return Ok(());
        }
        let pending = std::mem::replace(&mut self.top().pending, Pending::None);
        match pending {
            Pending::None => Ok(()),
            Pending::Store { var, ok } => match r {
                Resume::Received { val, ok: okv } => {
                    let frame = self.top();
                    if let Some(v) = var {
                        frame.env.insert(v, val);
                    }
                    if let Some(o) = ok {
                        frame.env.insert(o, Val::Bool(okv));
                    }
                    Ok(())
                }
                other => Err(format!("expected receive outcome, got {other:?}")),
            },
            Pending::Made { var, extra } => match r {
                Resume::Made(v) => {
                    let frame = self.top();
                    if let Some(e) = extra {
                        frame.env.insert(e, v.clone());
                    }
                    frame.env.insert(var, v);
                    Ok(())
                }
                other => Err(format!("expected made handle, got {other:?}")),
            },
            Pending::Range => match r {
                Resume::Received { val, ok } => {
                    let frame = self.top();
                    let bind: Option<String> = match frame.cursors.last_mut() {
                        Some(Cursor::Range {
                            var, in_body, idx, ..
                        }) => {
                            if ok {
                                *in_body = true;
                                *idx = 0;
                                var.clone()
                            } else {
                                None
                            }
                        }
                        _ => return Err("range resume without range cursor".into()),
                    };
                    if ok {
                        if let Some(v) = bind {
                            frame.env.insert(v, val);
                        }
                    } else {
                        frame.cursors.pop();
                    }
                    Ok(())
                }
                other => Err(format!("expected receive outcome for range, got {other:?}")),
            },
            Pending::Select {
                binds,
                bodies,
                default,
            } => match r {
                Resume::Selected { arm, recv } => {
                    let frame = self.top();
                    match arm {
                        Some(i) => {
                            let bind = &binds[i];
                            if let Some((val, okv)) = recv {
                                if let Some(v) = bind.var.clone() {
                                    frame.env.insert(v, val);
                                }
                                if let Some(o) = bind.ok.clone() {
                                    frame.env.insert(o, Val::Bool(okv));
                                }
                            }
                            let body = bodies[i].clone();
                            frame.cursors.push(Cursor::Seq {
                                block: body,
                                idx: 0,
                            });
                        }
                        None => {
                            if let Some(d) = default {
                                frame.cursors.push(Cursor::Seq { block: d, idx: 0 });
                            }
                        }
                    }
                    Ok(())
                }
                other => Err(format!("expected select outcome, got {other:?}")),
            },
        }
    }

    // -- statement walking ---------------------------------------------------

    /// Fetches the next statement to execute in the top frame, handling
    /// cursor exhaustion and loop back-edges. `Ok(None)` means the frame's
    /// body is exhausted (function return).
    fn next_stmt(&mut self) -> Result<Option<Stmt>, Option<Effect>> {
        loop {
            let frame = self.frames.last_mut().expect("no frames");
            let Some(cursor) = frame.cursors.last_mut() else {
                return Ok(None);
            };
            match cursor {
                Cursor::Seq { block, idx } => {
                    if *idx < block.len() {
                        let s = block[*idx].clone();
                        *idx += 1;
                        return Ok(Some(s));
                    }
                    frame.cursors.pop();
                }
                Cursor::While { body, idx, cond } => {
                    if *idx == 0 {
                        let proceed = match cond {
                            None => true,
                            Some(c) => {
                                let v = eval(c, &frame.env)
                                    .map_err(|e| Some(self_fail_placeholder(e)))?;
                                match v.as_bool() {
                                    Some(b) => b,
                                    None => {
                                        return Err(Some(self_fail_placeholder(format!(
                                            "non-boolean loop condition: {v}"
                                        ))))
                                    }
                                }
                            }
                        };
                        if !proceed {
                            frame.cursors.pop();
                            continue;
                        }
                        if body.is_empty() {
                            // `for cond {}` with effect-free body: treat as
                            // a scheduler yield point to avoid divergence.
                            return Err(Some(Effect::Yield));
                        }
                    }
                    if *idx < body.len() {
                        let s = body[*idx].clone();
                        *idx += 1;
                        return Ok(Some(s));
                    }
                    *idx = 0; // back-edge; condition re-checked next pass
                }
                Cursor::ForN {
                    body,
                    idx,
                    var,
                    i,
                    total,
                } => {
                    if *idx == 0 {
                        if *i >= *total {
                            frame.cursors.pop();
                            continue;
                        }
                        frame.env.insert(var.clone(), Val::Int(*i));
                        if body.is_empty() {
                            *i += 1;
                            continue;
                        }
                    }
                    if *idx < body.len() {
                        let s = body[*idx].clone();
                        *idx += 1;
                        return Ok(Some(s));
                    }
                    *idx = 0;
                    *i += 1;
                }
                Cursor::Range {
                    body,
                    idx,
                    ch,
                    loc,
                    in_body,
                    ..
                } => {
                    if !*in_body {
                        let ch = ch.clone();
                        let loc = loc.clone();
                        frame.cur_loc = loc.clone();
                        frame.pending = Pending::Range;
                        return Err(Some(Effect::Recv { ch, loc }));
                    }
                    if *idx < body.len() {
                        let s = body[*idx].clone();
                        *idx += 1;
                        return Ok(Some(s));
                    }
                    *idx = 0;
                    *in_body = false;
                }
            }
        }
    }

    fn exec_stmt(&mut self, stmt: Stmt) -> Result<StepOut, String> {
        let loc = stmt.loc();
        if !loc.is_unknown() {
            self.top().cur_loc = loc.clone();
        }
        match stmt {
            Stmt::Nop => Ok(StepOut::Flow),
            Stmt::Access { var, is_write, loc } => {
                Ok(StepOut::Eff(Effect::Access { var, is_write, loc }))
            }
            Stmt::Assign { var, expr, .. } => {
                let v = self.eval_top(&expr)?;
                self.top().env.insert(var, v);
                Ok(StepOut::Flow)
            }
            Stmt::MakeChan {
                var,
                cap,
                elem,
                loc,
            } => {
                let cap = self
                    .eval_top(&cap)?
                    .as_int()
                    .ok_or("channel capacity must be int")?;
                if cap < 0 {
                    return Err("makechan: size out of range".into());
                }
                self.top().pending = Pending::Made { var, extra: None };
                Ok(StepOut::Eff(Effect::MakeChan {
                    cap: cap as usize,
                    zero: Val::zero_of(elem),
                    loc,
                }))
            }
            Stmt::Send { ch, val, loc } => {
                let ch = self.eval_top(&ch)?;
                let val = self.eval_top(&val)?;
                Ok(StepOut::Eff(Effect::Send { ch, val, loc }))
            }
            Stmt::Recv { var, ok, ch, loc } => {
                let ch = self.eval_top(&ch)?;
                self.top().pending = Pending::Store { var, ok };
                Ok(StepOut::Eff(Effect::Recv { ch, loc }))
            }
            Stmt::Close { ch, loc } => {
                let ch = self.eval_top(&ch)?;
                Ok(StepOut::Eff(Effect::Close { ch, loc }))
            }
            Stmt::Select { arms, default, loc } => {
                let mut sel_arms = Vec::with_capacity(arms.len());
                let mut binds = Vec::with_capacity(arms.len());
                let mut bodies = Vec::with_capacity(arms.len());
                for Arm {
                    op,
                    body,
                    loc: aloc,
                } in arms
                {
                    match op {
                        ArmIr::Recv { var, ok, ch } => {
                            let ch = self.eval_top(&ch)?;
                            sel_arms.push(SelectArm {
                                op: ArmOp::Recv { ch },
                                loc: aloc,
                            });
                            binds.push(ArmBind { var, ok });
                        }
                        ArmIr::Send { ch, val } => {
                            let ch = self.eval_top(&ch)?;
                            let val = self.eval_top(&val)?;
                            sel_arms.push(SelectArm {
                                op: ArmOp::Send { ch, val },
                                loc: aloc,
                            });
                            binds.push(ArmBind {
                                var: None,
                                ok: None,
                            });
                        }
                    }
                    bodies.push(body);
                }
                let has_default = default.is_some();
                self.top().pending = Pending::Select {
                    binds,
                    bodies,
                    default,
                };
                Ok(StepOut::Eff(Effect::Select {
                    arms: sel_arms,
                    has_default,
                    loc,
                }))
            }
            Stmt::GoClosure { name, body, loc } => {
                let frame = self.top();
                let env = frame.env.clone();
                let file = frame.file.clone();
                let child =
                    ScriptProc::for_closure(self.prog.clone(), name.clone(), file, env, body);
                Ok(StepOut::Eff(Effect::Go {
                    body: Box::new(child),
                    name,
                    loc,
                }))
            }
            Stmt::GoCall { func, args, loc } => {
                let def = self
                    .prog
                    .func(&func)
                    .ok_or_else(|| format!("go: undefined function {func}"))?;
                if def.params.len() != args.len() {
                    return Err(format!(
                        "go {func}: want {} args, got {}",
                        def.params.len(),
                        args.len()
                    ));
                }
                let mut argv = Vec::with_capacity(args.len());
                for a in &args {
                    argv.push(self.eval_top(a)?);
                }
                let child = ScriptProc::for_func(self.prog.clone(), def, argv);
                Ok(StepOut::Eff(Effect::Go {
                    body: Box::new(child),
                    name: func,
                    loc,
                }))
            }
            Stmt::Call {
                ret, func, args, ..
            } => {
                let def = self
                    .prog
                    .func(&func)
                    .ok_or_else(|| format!("undefined function {func}"))?;
                if def.params.len() != args.len() {
                    return Err(format!(
                        "call {func}: want {} args, got {}",
                        def.params.len(),
                        args.len()
                    ));
                }
                let mut env = HashMap::new();
                for (p, a) in def.params.iter().zip(&args) {
                    let v = self.eval_top(a)?;
                    env.insert(p.clone(), v);
                }
                let frame = CallFrame::new(
                    def.name.clone(),
                    def.file.clone(),
                    env,
                    def.body.clone(),
                    ret,
                );
                self.frames.push(frame);
                Ok(StepOut::Flow)
            }
            Stmt::Return { expr, .. } => {
                let v = match expr {
                    Some(e) => self.eval_top(&e)?,
                    None => Val::Unit,
                };
                self.top().ret_val = v;
                self.begin_return();
                Ok(StepOut::Flow)
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                let v = self.eval_top(&cond)?;
                let b = v
                    .as_bool()
                    .ok_or_else(|| format!("non-boolean if condition: {v}"))?;
                let blockref = if b { then } else { els };
                if !blockref.is_empty() {
                    self.top().cursors.push(Cursor::Seq {
                        block: blockref,
                        idx: 0,
                    });
                }
                Ok(StepOut::Flow)
            }
            Stmt::While { cond, body, .. } => {
                self.top()
                    .cursors
                    .push(Cursor::While { body, idx: 0, cond });
                Ok(StepOut::Flow)
            }
            Stmt::ForN { var, n, body, .. } => {
                let total = self
                    .eval_top(&n)?
                    .as_int()
                    .ok_or("for: count must be int")?;
                self.top().cursors.push(Cursor::ForN {
                    body,
                    idx: 0,
                    var,
                    i: 0,
                    total,
                });
                Ok(StepOut::Flow)
            }
            Stmt::ForRange { var, ch, body, loc } => {
                let ch = self.eval_top(&ch)?;
                self.top().cursors.push(Cursor::Range {
                    body,
                    idx: 0,
                    var,
                    ch,
                    loc,
                    in_body: false,
                });
                Ok(StepOut::Flow)
            }
            Stmt::Break { .. } => {
                self.unwind_loop(true)?;
                Ok(StepOut::Flow)
            }
            Stmt::Continue { .. } => {
                self.unwind_loop(false)?;
                Ok(StepOut::Flow)
            }
            Stmt::Sleep { d, loc } => {
                let t = self
                    .eval_top(&d)?
                    .as_int()
                    .ok_or("sleep: duration must be int")?;
                Ok(StepOut::Eff(Effect::Sleep {
                    ticks: t.max(0) as u64,
                    loc,
                }))
            }
            Stmt::After { var, d, loc } => {
                let t = self
                    .eval_top(&d)?
                    .as_int()
                    .ok_or("after: duration must be int")?;
                self.top().pending = Pending::Made { var, extra: None };
                Ok(StepOut::Eff(Effect::After {
                    ticks: t.max(0) as u64,
                    loc,
                }))
            }
            Stmt::TickCh { var, period, loc } => {
                let t = self
                    .eval_top(&period)?
                    .as_int()
                    .ok_or("tick: period must be int")?;
                self.top().pending = Pending::Made { var, extra: None };
                Ok(StepOut::Eff(Effect::TickChan {
                    period: t.max(1) as u64,
                    loc,
                }))
            }
            Stmt::CtxWithTimeout {
                ctx_var,
                cancel_var,
                d,
                loc,
            } => {
                let ticks = match d {
                    Some(e) => Some(
                        self.eval_top(&e)?
                            .as_int()
                            .ok_or("ctx: deadline must be int")?
                            .max(0) as u64,
                    ),
                    None => None,
                };
                self.top().pending = Pending::Made {
                    var: ctx_var,
                    extra: Some(cancel_var),
                };
                Ok(StepOut::Eff(Effect::CtxTimeout { ticks, loc }))
            }
            Stmt::CancelCtx { ch, loc } => {
                let ch = self.eval_top(&ch)?;
                Ok(StepOut::Eff(Effect::Cancel { ch, loc }))
            }
            Stmt::Park { reason, dur, loc } => {
                let wake_after = match dur {
                    Some(e) => Some(
                        self.eval_top(&e)?
                            .as_int()
                            .ok_or("park: duration must be int")?
                            .max(0) as u64,
                    ),
                    None => None,
                };
                Ok(StepOut::Eff(Effect::Park {
                    reason,
                    wake_after,
                    loc,
                }))
            }
            Stmt::Alloc { bytes, .. } => {
                let b = self
                    .eval_top(&bytes)?
                    .as_int()
                    .ok_or("alloc: bytes must be int")?;
                Ok(StepOut::Eff(Effect::Alloc { bytes: b }))
            }
            Stmt::Work { units, .. } => {
                let u = self
                    .eval_top(&units)?
                    .as_int()
                    .ok_or("work: units must be int")?;
                Ok(StepOut::Eff(Effect::Work {
                    units: u.max(0) as u64,
                }))
            }
            Stmt::Defer { stmt, .. } => {
                self.top().defers.push(*stmt);
                Ok(StepOut::Flow)
            }
            Stmt::Panic { msg, loc } => Ok(StepOut::Eff(Effect::Panic { msg, loc })),
            Stmt::MakeWg { var, .. } => {
                self.top().pending = Pending::Made { var, extra: None };
                Ok(StepOut::Eff(Effect::MakeWg))
            }
            Stmt::WgAdd { wg, delta, loc } => {
                let w = self.eval_top(&wg)?;
                let d = self
                    .eval_top(&delta)?
                    .as_int()
                    .ok_or("wg.Add: delta must be int")?;
                Ok(StepOut::Eff(Effect::WgAdd {
                    wg: w,
                    delta: d,
                    loc,
                }))
            }
            Stmt::WgDone { wg, loc } => {
                let w = self.eval_top(&wg)?;
                Ok(StepOut::Eff(Effect::WgAdd {
                    wg: w,
                    delta: -1,
                    loc,
                }))
            }
            Stmt::WgWait { wg, loc } => {
                let w = self.eval_top(&wg)?;
                Ok(StepOut::Eff(Effect::WgWait { wg: w, loc }))
            }
            Stmt::MakeMutex { var, .. } => {
                self.top().pending = Pending::Made { var, extra: None };
                Ok(StepOut::Eff(Effect::MakeSem { permits: 1 }))
            }
            Stmt::Lock { mu, loc } => {
                let m = self.eval_top(&mu)?;
                Ok(StepOut::Eff(Effect::SemAcquire { sem: m, loc }))
            }
            Stmt::Unlock { mu, loc } => {
                let m = self.eval_top(&mu)?;
                Ok(StepOut::Eff(Effect::SemRelease { sem: m, loc }))
            }
            Stmt::MakeCond { var, .. } => {
                self.top().pending = Pending::Made { var, extra: None };
                Ok(StepOut::Eff(Effect::MakeCond))
            }
            Stmt::CondWait { cond, loc } => {
                let c = self.eval_top(&cond)?;
                Ok(StepOut::Eff(Effect::CondWait { cond: c, loc }))
            }
            Stmt::CondNotify { cond, all, loc } => {
                let c = self.eval_top(&cond)?;
                Ok(StepOut::Eff(Effect::CondNotify { cond: c, all, loc }))
            }
        }
    }

    fn eval_top(&mut self, e: &Expr) -> Result<Val, String> {
        let frame = self.frames.last().expect("no frames");
        eval(e, &frame.env)
    }

    /// Starts the return sequence of the top frame: runs deferred
    /// statements (LIFO), then pops the frame.
    fn begin_return(&mut self) {
        let frame = self.top();
        frame.cursors.clear();
        if !frame.running_defers && !frame.defers.is_empty() {
            frame.running_defers = true;
            let mut defers = std::mem::take(&mut frame.defers);
            defers.reverse();
            frame.cursors.push(Cursor::Seq {
                block: Rc::new(defers),
                idx: 0,
            });
        }
    }

    /// Pops the finished top frame, delivering its return value.
    /// Returns true if the whole goroutine is done.
    fn pop_frame(&mut self) -> bool {
        let frame = self.frames.pop().expect("no frames");
        if let (Some(target), Some(parent)) = (frame.ret_target, self.frames.last_mut()) {
            parent.env.insert(target, frame.ret_val);
        }
        self.frames.is_empty()
    }

    /// Unwinds cursors to the innermost loop. `brk` pops the loop itself;
    /// otherwise the loop restarts its body (continue).
    fn unwind_loop(&mut self, brk: bool) -> Result<(), String> {
        let frame = self.top();
        loop {
            match frame.cursors.last_mut() {
                None => return Err("break/continue outside loop".into()),
                Some(Cursor::Seq { .. }) => {
                    frame.cursors.pop();
                }
                Some(Cursor::While { idx, .. }) => {
                    if brk {
                        frame.cursors.pop();
                    } else {
                        *idx = 0;
                    }
                    return Ok(());
                }
                Some(Cursor::ForN { idx, i, .. }) => {
                    if brk {
                        frame.cursors.pop();
                    } else {
                        *idx = 0;
                        *i += 1;
                    }
                    return Ok(());
                }
                Some(Cursor::Range { idx, in_body, .. }) => {
                    if brk {
                        frame.cursors.pop();
                    } else {
                        *idx = 0;
                        *in_body = false;
                    }
                    return Ok(());
                }
            }
        }
    }
}

/// Placeholder effect used to smuggle evaluation failures out of
/// `next_stmt`'s error channel; replaced by a proper panic by the caller.
fn self_fail_placeholder(msg: String) -> Effect {
    Effect::Panic {
        msg,
        loc: Loc::unknown(),
    }
}

impl Process for ScriptProc {
    fn resume(&mut self, resume: Resume) -> Effect {
        if self.finished {
            return Effect::Done;
        }
        if let Err(msg) = self.apply_resume(resume) {
            return self.fail(msg);
        }
        let mut fuel = FUEL;
        loop {
            if self.frames.is_empty() {
                self.finished = true;
                return Effect::Done;
            }
            if fuel == 0 {
                return Effect::Yield;
            }
            fuel -= 1;
            match self.next_stmt() {
                Err(Some(Effect::Panic { msg, .. })) => return self.fail(msg),
                Err(Some(eff)) => return eff,
                Err(None) => unreachable!("next_stmt never returns Err(None)"),
                Ok(None) => {
                    // Frame body exhausted: run defers, then pop.
                    let frame = self.top();
                    if !frame.running_defers && !frame.defers.is_empty() {
                        self.begin_return();
                        continue;
                    }
                    if self.pop_frame() {
                        self.finished = true;
                        return Effect::Done;
                    }
                }
                Ok(Some(stmt)) => match self.exec_stmt(stmt) {
                    Ok(StepOut::Eff(e)) => return e,
                    Ok(StepOut::Flow) => {}
                    Err(msg) => return self.fail(msg),
                },
            }
        }
    }

    fn stack(&self) -> Vec<Frame> {
        self.frames
            .iter()
            .rev()
            .map(|f| Frame::new(f.display.clone(), f.cur_loc.clone()))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Evaluates an expression against an environment.
pub fn eval(e: &Expr, env: &HashMap<String, Val>) -> Result<Val, String> {
    match e {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| format!("undefined variable {name}")),
        Expr::Not(inner) => {
            let v = eval(inner, env)?;
            v.as_bool()
                .map(|b| Val::Bool(!b))
                .ok_or_else(|| format!("!{v} is not boolean"))
        }
        Expr::Len(inner) => {
            let v = eval(inner, env)?;
            match v {
                Val::List(xs) => Ok(Val::Int(xs.len() as i64)),
                Val::Str(s) => Ok(Val::Int(s.len() as i64)),
                other => Err(format!("len of non-collection {other}")),
            }
        }
        Expr::Index(base, idx) => {
            let b = eval(base, env)?;
            let i = eval(idx, env)?.as_int().ok_or("index must be int")?;
            match b {
                Val::List(xs) => xs
                    .get(i as usize)
                    .cloned()
                    .ok_or_else(|| format!("index out of range [{i}] with length {}", xs.len())),
                other => Err(format!("index of non-list {other}")),
            }
        }
        Expr::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                out.push(eval(it, env)?);
            }
            Ok(Val::List(out))
        }
        Expr::Bin(op, a, b) => {
            let va = eval(a, env)?;
            let vb = eval(b, env)?;
            bin(*op, va, vb)
        }
    }
}

fn bin(op: BinOp, a: Val, b: Val) -> Result<Val, String> {
    use BinOp::*;
    match (op, &a, &b) {
        (Add, Val::Int(x), Val::Int(y)) => Ok(Val::Int(x.wrapping_add(*y))),
        (Sub, Val::Int(x), Val::Int(y)) => Ok(Val::Int(x.wrapping_sub(*y))),
        (Mul, Val::Int(x), Val::Int(y)) => Ok(Val::Int(x.wrapping_mul(*y))),
        (Div, Val::Int(_), Val::Int(0)) => Err("integer divide by zero".into()),
        (Div, Val::Int(x), Val::Int(y)) => Ok(Val::Int(x.wrapping_div(*y))),
        (Mod, Val::Int(_), Val::Int(0)) => Err("integer divide by zero".into()),
        (Mod, Val::Int(x), Val::Int(y)) => Ok(Val::Int(x.wrapping_rem(*y))),
        (Add, Val::Float(x), Val::Float(y)) => Ok(Val::Float(x + y)),
        (Sub, Val::Float(x), Val::Float(y)) => Ok(Val::Float(x - y)),
        (Mul, Val::Float(x), Val::Float(y)) => Ok(Val::Float(x * y)),
        (Div, Val::Float(x), Val::Float(y)) => Ok(Val::Float(x / y)),
        (Add, Val::Str(x), Val::Str(y)) => Ok(Val::Str(format!("{x}{y}"))),
        (Eq, _, _) => Ok(Val::Bool(a == b)),
        (Ne, _, _) => Ok(Val::Bool(a != b)),
        (Lt, Val::Int(x), Val::Int(y)) => Ok(Val::Bool(x < y)),
        (Le, Val::Int(x), Val::Int(y)) => Ok(Val::Bool(x <= y)),
        (Gt, Val::Int(x), Val::Int(y)) => Ok(Val::Bool(x > y)),
        (Ge, Val::Int(x), Val::Int(y)) => Ok(Val::Bool(x >= y)),
        (Lt, Val::Float(x), Val::Float(y)) => Ok(Val::Bool(x < y)),
        (Le, Val::Float(x), Val::Float(y)) => Ok(Val::Bool(x <= y)),
        (Gt, Val::Float(x), Val::Float(y)) => Ok(Val::Bool(x > y)),
        (Ge, Val::Float(x), Val::Float(y)) => Ok(Val::Bool(x >= y)),
        (Lt, Val::Str(x), Val::Str(y)) => Ok(Val::Bool(x < y)),
        (Gt, Val::Str(x), Val::Str(y)) => Ok(Val::Bool(x > y)),
        (And, Val::Bool(x), Val::Bool(y)) => Ok(Val::Bool(*x && *y)),
        (Or, Val::Bool(x), Val::Bool(y)) => Ok(Val::Bool(*x || *y)),
        _ => Err(format!("invalid operation: {a} {op:?} {b}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_of(pairs: &[(&str, Val)]) -> HashMap<String, Val> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn eval_arith_and_compare() {
        let env = env_of(&[("x", Val::Int(10))]);
        let e = Expr::Bin(BinOp::Add, Box::new(Expr::var("x")), Box::new(Expr::int(5)));
        assert_eq!(eval(&e, &env).unwrap(), Val::Int(15));
        let c = Expr::Bin(BinOp::Lt, Box::new(Expr::var("x")), Box::new(Expr::int(20)));
        assert_eq!(eval(&c, &env).unwrap(), Val::Bool(true));
    }

    #[test]
    fn eval_undefined_var_errors() {
        let env = HashMap::new();
        assert!(eval(&Expr::var("nope"), &env).is_err());
    }

    #[test]
    fn eval_division_by_zero_errors() {
        let env = HashMap::new();
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert!(eval(&e, &env).unwrap_err().contains("divide by zero"));
    }

    #[test]
    fn eval_len_and_index() {
        let env = env_of(&[("xs", Val::List(vec![Val::Int(7), Val::Int(8)]))]);
        let l = Expr::Len(Box::new(Expr::var("xs")));
        assert_eq!(eval(&l, &env).unwrap(), Val::Int(2));
        let ix = Expr::Index(Box::new(Expr::var("xs")), Box::new(Expr::int(1)));
        assert_eq!(eval(&ix, &env).unwrap(), Val::Int(8));
        let oob = Expr::Index(Box::new(Expr::var("xs")), Box::new(Expr::int(9)));
        assert!(eval(&oob, &env).unwrap_err().contains("out of range"));
    }

    #[test]
    fn eval_string_concat_and_eq() {
        let env = HashMap::new();
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::str("a")),
            Box::new(Expr::str("b")),
        );
        assert_eq!(eval(&e, &env).unwrap(), Val::Str("ab".into()));
        let q = Expr::Bin(
            BinOp::Eq,
            Box::new(Expr::str("a")),
            Box::new(Expr::str("a")),
        );
        assert_eq!(eval(&q, &env).unwrap(), Val::Bool(true));
    }

    #[test]
    fn invalid_binop_reports_types() {
        let env = HashMap::new();
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::int(1)),
            Box::new(Expr::bool(true)),
        );
        assert!(eval(&e, &env).is_err());
    }
}
