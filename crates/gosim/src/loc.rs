//! Source locations and stack frames.
//!
//! Everything the profiler and the leak detectors report is keyed by a
//! [`Loc`] (file + line, mirroring Go's `file.go:NN` convention) and
//! rendered as a stack of [`Frame`]s, mirroring the goroutine profiles the
//! paper's LeakProf consumes (Fig 4).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A source location: `file:line`.
///
/// `Loc` is cheap to clone (the file name is reference counted) and is used
/// as the grouping key for blocked goroutines throughout the toolchain.
///
/// # Examples
///
/// ```
/// use gosim::Loc;
/// let loc = Loc::new("transactions/cost.go", 8);
/// assert_eq!(loc.to_string(), "transactions/cost.go:8");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Loc {
    /// File path, repo-relative by convention.
    pub file: Arc<str>,
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
}

impl Loc {
    /// Creates a location from a file name and line number.
    pub fn new(file: impl Into<Arc<str>>, line: u32) -> Self {
        Loc {
            file: file.into(),
            line,
        }
    }

    /// The location used for synthesized runtime frames
    /// (`runtime.gopark` and friends).
    pub fn runtime() -> Self {
        Loc::new("runtime/proc.go", 0)
    }

    /// An unknown location.
    pub fn unknown() -> Self {
        Loc::new("<unknown>", 0)
    }

    /// Returns true if this location is the placeholder unknown location.
    pub fn is_unknown(&self) -> bool {
        &*self.file == "<unknown>"
    }
}

impl Default for Loc {
    fn default() -> Self {
        Loc::unknown()
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One frame of a goroutine call stack.
///
/// The leaf-most frames of a blocked goroutine are synthetic runtime frames
/// (`runtime.gopark`, `runtime.chansend1`, ...) exactly as in real Go
/// goroutine profiles; the first non-runtime frame carries the source
/// location of the blocking operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Frame {
    /// Fully qualified function name, e.g. `transactions.ComputeCost$1`.
    pub func: String,
    /// Location *within* the function: for a blocked goroutine this is the
    /// line of the operation currently being executed or blocked on.
    pub loc: Loc,
}

impl Frame {
    /// Creates a frame.
    pub fn new(func: impl Into<String>, loc: Loc) -> Self {
        Frame {
            func: func.into(),
            loc,
        }
    }

    /// Creates a synthetic runtime frame (e.g. `runtime.gopark`).
    pub fn runtime(func: &str) -> Self {
        Frame::new(func, Loc::runtime())
    }

    /// True if this is a synthesized `runtime.*` or `internal/*` frame.
    pub fn is_runtime(&self) -> bool {
        self.func.starts_with("runtime.") || self.func.starts_with("internal/")
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.func, self.loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_display_matches_go_convention() {
        let l = Loc::new("pkg/a.go", 42);
        assert_eq!(l.to_string(), "pkg/a.go:42");
    }

    #[test]
    fn loc_equality_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Loc::new("x.go", 1);
        let b = Loc::new(String::from("x.go"), 1);
        assert_eq!(a, b);
        let mut s = HashSet::new();
        s.insert(a);
        assert!(s.contains(&b));
    }

    #[test]
    fn runtime_frames_are_recognized() {
        assert!(Frame::runtime("runtime.gopark").is_runtime());
        assert!(!Frame::new("main.main", Loc::unknown()).is_runtime());
    }

    #[test]
    fn unknown_loc_roundtrip() {
        assert!(Loc::unknown().is_unknown());
        assert!(!Loc::new("a.go", 3).is_unknown());
        assert!(Loc::default().is_unknown());
    }

    #[test]
    fn loc_serde_roundtrip() {
        let l = Loc::new("pkg/b.go", 7);
        let s = serde_json::to_string(&l).unwrap();
        let back: Loc = serde_json::from_str(&s).unwrap();
        assert_eq!(l, back);
    }
}
