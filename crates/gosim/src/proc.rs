//! The goroutine execution protocol.
//!
//! A goroutine body is any type implementing [`Process`]. The scheduler
//! drives it by calling [`Process::resume`], which returns the next
//! [`Effect`] the goroutine wants to perform; blocking operations suspend
//! the goroutine until the runtime can complete them, at which point the
//! goroutine is resumed with a [`Resume`] value describing the outcome.
//!
//! Most users never implement `Process` by hand: the [`crate::script`]
//! module provides a structured program IR plus a builder, and the
//! `minigo` crate lowers mini-Go source to the same IR.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::Gid;
use crate::loc::{Frame, Loc};
use crate::val::Val;

/// The next operation a goroutine wants to perform.
///
/// Non-blocking effects (`MakeChan`, `Alloc`, ...) complete immediately and
/// the goroutine is resumed in the same scheduler slice; potentially
/// blocking effects (`Send`, `Recv`, `Select`, semaphores, ...) may park
/// the goroutine.
#[derive(Debug)]
pub enum Effect {
    /// The goroutine finished normally.
    Done,
    /// Voluntarily yield the processor and stay runnable.
    Yield,
    /// `ch <- val`. Blocks per Go channel semantics.
    Send {
        /// Channel value (must be `Val::Chan` or `Val::NilChan`).
        ch: Val,
        /// The value to send.
        val: Val,
        /// Source location of the send operation.
        loc: Loc,
    },
    /// `<-ch`. Blocks per Go channel semantics.
    Recv {
        /// Channel value (must be `Val::Chan` or `Val::NilChan`).
        ch: Val,
        /// Source location of the receive operation.
        loc: Loc,
    },
    /// A `select` over several channel operations.
    Select {
        /// The communication arms.
        arms: Vec<SelectArm>,
        /// Whether the statement has a `default` arm (non-blocking select).
        has_default: bool,
        /// Source location of the `select` keyword.
        loc: Loc,
    },
    /// `close(ch)`.
    Close {
        /// Channel value.
        ch: Val,
        /// Source location.
        loc: Loc,
    },
    /// `time.Sleep(d)` in virtual ticks.
    Sleep {
        /// Duration in virtual ticks.
        ticks: u64,
        /// Source location.
        loc: Loc,
    },
    /// `go f()`: spawn a child goroutine.
    Go {
        /// The child body.
        body: Box<dyn Process>,
        /// Display name of the spawned function (e.g. `pkg.Handler$1`).
        name: String,
        /// Source location of the `go` statement (the creation context).
        loc: Loc,
    },
    /// `make(chan T, cap)`.
    MakeChan {
        /// Buffer capacity (0 = unbuffered/rendezvous).
        cap: usize,
        /// Zero value of the element type (returned by receive-on-closed).
        zero: Val,
        /// Source location of the `make`.
        loc: Loc,
    },
    /// `time.After(d)`: a fresh capacity-1 channel receiving once at now+d.
    After {
        /// Delay in virtual ticks.
        ticks: u64,
        /// Source location.
        loc: Loc,
    },
    /// `time.Tick(d)`: a channel receiving every `period` ticks
    /// (non-blocking sends; missed ticks are dropped, as in Go).
    TickChan {
        /// Period in virtual ticks.
        period: u64,
        /// Source location.
        loc: Loc,
    },
    /// `context.WithTimeout(...)`: a done-channel the runtime closes at
    /// now+d. Resumes with the channel; cancel early via [`Effect::Cancel`].
    CtxTimeout {
        /// Deadline delay in ticks; `None` models `context.WithCancel`.
        ticks: Option<u64>,
        /// Source location.
        loc: Loc,
    },
    /// `cancel()`: close a context done-channel (idempotent, unlike `close`).
    Cancel {
        /// The done channel.
        ch: Val,
        /// Source location.
        loc: Loc,
    },
    /// Park the goroutine outside channel machinery (I/O wait, syscall,
    /// raw sleep). If `wake_after` is `None` the goroutine never wakes —
    /// this models runaway non-channel goroutines from the paper's
    /// Table IV.
    Park {
        /// Why the goroutine parked (shows up as the profile status).
        reason: ParkReason,
        /// Virtual ticks until wake-up, or `None` for forever.
        wake_after: Option<u64>,
        /// Source location.
        loc: Loc,
    },
    /// Attribute `bytes` of heap to this goroutine (negative frees).
    Alloc {
        /// Byte delta.
        bytes: i64,
    },
    /// Consume CPU: advances this goroutine's attributed work counter.
    Work {
        /// Abstract work units (used by the fleet CPU model).
        units: u64,
    },
    /// `make(sem, n)`: create a counting semaphore with `permits` available.
    MakeSem {
        /// Initially available permits.
        permits: u64,
    },
    /// Acquire one permit (blocks if none available).
    SemAcquire {
        /// Semaphore value (must be `Val::Sem`).
        sem: Val,
        /// Source location.
        loc: Loc,
    },
    /// Release one permit.
    SemRelease {
        /// Semaphore value.
        sem: Val,
        /// Source location.
        loc: Loc,
    },
    /// Create a `sync.WaitGroup`.
    MakeWg,
    /// `wg.Add(delta)` (also used for `Done` with delta -1).
    WgAdd {
        /// Wait group value (must be `Val::Wg`).
        wg: Val,
        /// Counter delta.
        delta: i64,
        /// Source location.
        loc: Loc,
    },
    /// `wg.Wait()`: block until the counter reaches zero.
    WgWait {
        /// Wait group value.
        wg: Val,
        /// Source location.
        loc: Loc,
    },
    /// Create a `sync.Cond`.
    MakeCond,
    /// `cond.Wait()`: block until signalled.
    CondWait {
        /// Condition value (must be `Val::Cond`).
        cond: Val,
        /// Source location.
        loc: Loc,
    },
    /// `cond.Signal()` / `cond.Broadcast()`.
    CondNotify {
        /// Condition value.
        cond: Val,
        /// Wake all waiters (broadcast) vs one (signal).
        all: bool,
        /// Source location.
        loc: Loc,
    },
    /// Abort this goroutine with a panic. In the simulator a panicking
    /// goroutine dies and is recorded; it does not tear the process down
    /// (configurable via [`crate::runtime::PanicPolicy`]).
    Panic {
        /// Panic message.
        msg: String,
        /// Source location.
        loc: Loc,
    },
    /// A shared-variable read or write (emitted by race-instrumented
    /// programs). Non-blocking: the runtime records the access against
    /// this goroutine's vector clock when happens-before tracking is on
    /// and ignores it otherwise.
    Access {
        /// Variable name (package-qualified where the frontend knows it).
        var: String,
        /// True for writes, false for reads.
        is_write: bool,
        /// Source location of the access.
        loc: Loc,
    },
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Done => write!(f, "done"),
            Effect::Yield => write!(f, "yield"),
            Effect::Send { loc, .. } => write!(f, "send at {loc}"),
            Effect::Recv { loc, .. } => write!(f, "recv at {loc}"),
            Effect::Select {
                arms,
                has_default,
                loc,
            } => write!(
                f,
                "select({} arms{}) at {loc}",
                arms.len(),
                if *has_default { "+default" } else { "" }
            ),
            Effect::Close { loc, .. } => write!(f, "close at {loc}"),
            Effect::Sleep { ticks, .. } => write!(f, "sleep {ticks}"),
            Effect::Go { name, loc, .. } => write!(f, "go {name} at {loc}"),
            Effect::MakeChan { cap, .. } => write!(f, "make(chan, {cap})"),
            Effect::After { ticks, .. } => write!(f, "time.After({ticks})"),
            Effect::TickChan { period, .. } => write!(f, "time.Tick({period})"),
            Effect::CtxTimeout { ticks, .. } => write!(f, "context.WithTimeout({ticks:?})"),
            Effect::Cancel { .. } => write!(f, "cancel()"),
            Effect::Park {
                reason, wake_after, ..
            } => {
                write!(f, "park({reason:?}, wake={wake_after:?})")
            }
            Effect::Alloc { bytes } => write!(f, "alloc({bytes})"),
            Effect::Work { units } => write!(f, "work({units})"),
            Effect::MakeSem { permits } => write!(f, "make(sem, {permits})"),
            Effect::SemAcquire { .. } => write!(f, "sem.Acquire"),
            Effect::SemRelease { .. } => write!(f, "sem.Release"),
            Effect::MakeWg => write!(f, "make(waitgroup)"),
            Effect::WgAdd { delta, .. } => write!(f, "wg.Add({delta})"),
            Effect::WgWait { .. } => write!(f, "wg.Wait"),
            Effect::MakeCond => write!(f, "make(cond)"),
            Effect::CondWait { .. } => write!(f, "cond.Wait"),
            Effect::CondNotify { all, .. } => {
                write!(f, "cond.{}", if *all { "Broadcast" } else { "Signal" })
            }
            Effect::Panic { msg, .. } => write!(f, "panic({msg})"),
            Effect::Access { var, is_write, loc } => {
                write!(
                    f,
                    "{} {var} at {loc}",
                    if *is_write { "write" } else { "read" }
                )
            }
        }
    }
}

/// One communication arm of a `select` statement.
#[derive(Debug, Clone)]
pub struct SelectArm {
    /// The operation guarded by this arm.
    pub op: ArmOp,
    /// Source location of the `case`.
    pub loc: Loc,
}

/// The operation in a `select` arm.
#[derive(Debug, Clone)]
pub enum ArmOp {
    /// `case v := <-ch`.
    Recv {
        /// Channel value.
        ch: Val,
    },
    /// `case ch <- val`.
    Send {
        /// Channel value.
        ch: Val,
        /// Value to send.
        val: Val,
    },
}

/// Why a goroutine parked outside the channel machinery.
///
/// These map onto the non-channel rows of the paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParkReason {
    /// Blocked on network or file I/O.
    IoWait,
    /// Blocked in a system call.
    Syscall,
    /// Plain timer sleep (distinct from channel-based `time.After`).
    Sleep,
}

/// The outcome delivered to a goroutine when it is resumed.
#[derive(Debug, Clone)]
pub enum Resume {
    /// First activation of the goroutine.
    Start,
    /// Generic acknowledgement for effects with no interesting result
    /// (close, sleep, alloc, wg.Add, ...).
    Unit,
    /// A send completed.
    Sent,
    /// A receive completed: the value and the `ok` flag
    /// (`false` means the channel was closed and drained).
    Received {
        /// Received value (zero value if `!ok`).
        val: Val,
        /// Go's two-value receive flag.
        ok: bool,
    },
    /// A `select` completed.
    Selected {
        /// Index of the chosen arm, or `None` if the `default` arm ran.
        arm: Option<usize>,
        /// For receive arms, the received value and ok flag.
        recv: Option<(Val, bool)>,
    },
    /// An object was created (`MakeChan`, `After`, `TickChan`,
    /// `CtxTimeout`, `MakeSem`, `MakeWg`, `MakeCond`).
    Made(Val),
    /// A child goroutine was spawned.
    Spawned(Gid),
}

/// A goroutine body.
///
/// Implementations are state machines: each call to `resume` applies the
/// outcome of the previous effect and runs until the next effect.
///
/// # Examples
///
/// Implementing a one-shot process by hand (the [`crate::script`] builder
/// is normally more convenient):
///
/// ```
/// use gosim::{Effect, Frame, Loc, Process, Resume};
///
/// struct Once(bool);
/// impl Process for Once {
///     fn resume(&mut self, _r: Resume) -> Effect {
///         if self.0 { Effect::Done } else { self.0 = true; Effect::Yield }
///     }
///     fn stack(&self) -> Vec<Frame> {
///         vec![Frame::new("example.Once", Loc::new("example.go", 1))]
///     }
/// }
/// ```
pub trait Process {
    /// Applies the previous effect's outcome and returns the next effect.
    fn resume(&mut self, resume: Resume) -> Effect;

    /// Current user-level call stack, leaf-most frame first.
    ///
    /// The runtime prepends synthetic `runtime.*` frames when the goroutine
    /// is blocked, so implementations report only their own frames.
    fn stack(&self) -> Vec<Frame>;
}

impl fmt::Debug for dyn Process {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<process>")
    }
}

/// A ready-made `Process` that performs a fixed sequence of effects,
/// ignoring all resume values. Handy in unit tests of the runtime itself.
pub struct EffectSeq {
    effects: std::vec::IntoIter<Effect>,
    frame: Frame,
}

impl EffectSeq {
    /// Creates a process that performs `effects` in order, then finishes.
    pub fn new(name: &str, loc: Loc, effects: Vec<Effect>) -> Self {
        EffectSeq {
            effects: effects.into_iter(),
            frame: Frame::new(name, loc),
        }
    }
}

impl Process for EffectSeq {
    fn resume(&mut self, _resume: Resume) -> Effect {
        self.effects.next().unwrap_or(Effect::Done)
    }

    fn stack(&self) -> Vec<Frame> {
        vec![self.frame.clone()]
    }
}

impl fmt::Debug for EffectSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EffectSeq")
            .field("frame", &self.frame)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effect_seq_drains_then_done() {
        let mut p = EffectSeq::new("t", Loc::unknown(), vec![Effect::Yield]);
        assert!(matches!(p.resume(Resume::Start), Effect::Yield));
        assert!(matches!(p.resume(Resume::Unit), Effect::Done));
        assert!(matches!(p.resume(Resume::Unit), Effect::Done));
    }

    #[test]
    fn effect_display_has_location() {
        let e = Effect::Send {
            ch: Val::NilChan,
            val: Val::Unit,
            loc: Loc::new("a.go", 3),
        };
        assert!(e.to_string().contains("a.go:3"));
    }
}
