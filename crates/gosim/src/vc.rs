//! Vector clocks for happens-before tracking.
//!
//! A [`VClock`] maps goroutine ids to logical timestamps. The runtime
//! keeps one clock per live goroutine and one per synchronization
//! primitive (channel message slots, mutex release points, WaitGroup
//! completion, Cond notification). Every synchronization edge the Go
//! memory model defines becomes a `join` between the two clocks; race
//! detection then reduces to comparing the clocks captured at two
//! shared-variable accesses with [`VClock::happens_before`].
//!
//! Clocks are sparse: goroutines a clock has never heard from are
//! implicitly at timestamp 0, so short-lived programs with thousands of
//! goroutines stay cheap.

use crate::ids::Gid;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse vector clock over goroutine ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VClock {
    entries: BTreeMap<Gid, u64>,
}

impl VClock {
    /// The zero clock (bottom element of the join semilattice).
    pub fn new() -> Self {
        VClock::default()
    }

    /// The timestamp this clock holds for `gid` (0 if absent).
    pub fn get(&self, gid: Gid) -> u64 {
        self.entries.get(&gid).copied().unwrap_or(0)
    }

    /// Advances this goroutine's own component by one.
    pub fn tick(&mut self, gid: Gid) {
        *self.entries.entry(gid).or_insert(0) += 1;
    }

    /// Pointwise maximum with `other` (the join of the semilattice).
    pub fn join(&mut self, other: &VClock) {
        for (gid, ts) in &other.entries {
            let slot = self.entries.entry(*gid).or_insert(0);
            if *ts > *slot {
                *slot = *ts;
            }
        }
    }

    /// True when `self` ≤ `other` pointwise and `self` ≠ `other`:
    /// the event stamped `self` happened strictly before the event
    /// stamped `other`.
    pub fn happens_before(&self, other: &VClock) -> bool {
        self.le(other) && self != other
    }

    /// True when neither clock happens-before the other — the two
    /// events are concurrent (the race condition precondition).
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Pointwise ≤ (every component of `self` is ≤ in `other`).
    pub fn le(&self, other: &VClock) -> bool {
        self.entries.iter().all(|(gid, ts)| other.get(*gid) >= *ts)
    }

    /// Number of goroutines with a non-zero component.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no goroutine has advanced (the zero clock).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(gid, timestamp)` pairs in gid order.
    pub fn iter(&self) -> impl Iterator<Item = (Gid, u64)> + '_ {
        self.entries.iter().map(|(g, t)| (*g, *t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u64) -> Gid {
        Gid(n)
    }

    #[test]
    fn zero_clock_is_bottom() {
        let z = VClock::new();
        let mut c = VClock::new();
        c.tick(g(1));
        assert!(z.le(&c));
        assert!(z.happens_before(&c));
        assert!(!c.happens_before(&z));
        assert!(!z.happens_before(&z));
    }

    #[test]
    fn tick_advances_only_own_component() {
        let mut c = VClock::new();
        c.tick(g(3));
        c.tick(g(3));
        assert_eq!(c.get(g(3)), 2);
        assert_eq!(c.get(g(4)), 0);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(g(1));
        a.tick(g(1));
        let mut b = VClock::new();
        b.tick(g(2));
        let mut j = a.clone();
        j.join(&b);
        assert_eq!(j.get(g(1)), 2);
        assert_eq!(j.get(g(2)), 1);
        assert!(a.le(&j) && b.le(&j));
    }

    #[test]
    fn concurrent_clocks_do_not_order() {
        let mut a = VClock::new();
        a.tick(g(1));
        let mut b = VClock::new();
        b.tick(g(2));
        assert!(a.concurrent(&b));
        assert!(!a.happens_before(&b));
        assert!(!b.happens_before(&a));
    }

    #[test]
    fn ordered_after_join() {
        let mut a = VClock::new();
        a.tick(g(1));
        let mut b = VClock::new();
        b.join(&a);
        b.tick(g(2));
        assert!(a.happens_before(&b));
        assert!(!a.concurrent(&b));
    }
}
