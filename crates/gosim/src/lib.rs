//! # gosim — a deterministic Go-like runtime for studying goroutine leaks
//!
//! `gosim` simulates the concurrency core of the Go runtime: lightweight
//! goroutines scheduled cooperatively, CSP channels with Go's exact
//! blocking/close/nil semantics, `select` with seeded nondeterministic arm
//! choice, virtual time (timers, tickers, context deadlines), `sync`
//! primitives, per-goroutine memory attribution, and pprof-style
//! [goroutine profiles](profile::GoroutineProfile).
//!
//! It is the substrate for the reproduction of *"Unveiling and Vanquishing
//! Goroutine Leaks in Enterprise Microservices"* (CGO 2024): the paper's
//! GOLEAK and LEAKPROF tools are built on top of this crate (`goleak` and
//! `leakprof` in this workspace), and the mini-Go frontend (`minigo`)
//! lowers Go-like source to this crate's [`script`] IR.
//!
//! ## Quick example
//!
//! Listing 1 of the paper — a partial deadlock when the parent returns
//! early and the child goroutine's send never finds a receiver:
//!
//! ```
//! use gosim::script::{fnb, Expr, Prog};
//! use gosim::{Runtime, Val};
//!
//! let prog = Prog::build(|p| {
//!     p.func(
//!         fnb("transactions.ComputeCost", "transactions/cost.go")
//!             .params(&["err"])
//!             .body(|b| {
//!                 b.make_chan("ch", 0, 5);
//!                 b.go_closure(6, |g| {
//!                     g.send("ch", Expr::int(1), 8);
//!                 });
//!                 b.if_(Expr::var("err"), 12, |t| {
//!                     t.ret(13);
//!                 });
//!                 b.recv("ch", 15);
//!             }),
//!     );
//! });
//!
//! let mut rt = Runtime::with_seed(1);
//! prog.spawn_func(&mut rt, "transactions.ComputeCost", vec![Val::Bool(true)]);
//! rt.run_until_blocked(10_000);
//!
//! // The child goroutine leaked, blocked at the send on cost.go:8.
//! assert_eq!(rt.live_count(), 1);
//! let profile = rt.goroutine_profile("demo");
//! let g = &profile.goroutines[0];
//! assert_eq!(g.status.wait_reason(), "chan send");
//! assert_eq!(g.blocking_frame().unwrap().loc.to_string(), "transactions/cost.go:8");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ids;
mod loc;
mod proc;
mod runtime;
mod val;

pub mod profile;
pub mod rng;
pub mod script;
pub mod vc;

pub use ids::{ChanId, CondId, Gid, SemId, WgId};
pub use loc::{Frame, Loc};
pub use proc::{ArmOp, Effect, EffectSeq, ParkReason, Process, Resume, SelectArm};
pub use profile::{GoStatus, GoroutineProfile, GoroutineRecord};
pub use runtime::{
    AccessEvent, ExitRecord, MemStats, PanicPolicy, RunOutcome, Runtime, RuntimeStats, SchedConfig,
};
pub use val::{ChanRef, TypeTag, Val};
pub use vc::VClock;
