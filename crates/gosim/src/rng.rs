//! Small deterministic PRNG used by the scheduler and by workload
//! generators elsewhere in the workspace.
//!
//! The scheduler needs nondeterministic choice (e.g. which ready `select`
//! arm runs) that is nevertheless reproducible across runs and platforms.
//! We use SplitMix64, which is tiny, fast, and has well-understood
//! statistical quality for this purpose. Keeping the generator in-tree
//! avoids coupling the simulator's replay determinism to an external
//! crate's version-dependent stream.

use serde::{Deserialize, Serialize};

/// SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use gosim::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Returns 0 when `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for the small moduli the scheduler uses.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "range_i64: lo must be <= hi");
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }

    /// Samples an index from a slice of non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted: weights must be non-empty with positive sum"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fork a child generator with an independent stream.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 10);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(4);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut r = SplitMix64::new(5);
        for _ in 0..200 {
            let i = r.weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = SplitMix64::new(6);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut parent = SplitMix64::new(11);
        let mut child = parent.fork();
        let overlap = (0..20)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(overlap < 5);
    }
}
