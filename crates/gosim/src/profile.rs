//! Goroutine profiles — the simulator's equivalent of Go's
//! `pprof` goroutine profile (`/debug/pprof/goroutine?debug=2`).
//!
//! A [`GoroutineProfile`] is an instantaneous snapshot of every live
//! goroutine: its status, full call stack (with synthetic `runtime.*`
//! frames on top when blocked, exactly like the stacks in the paper's
//! Fig 4), its creation context, and how long it has been waiting.
//! Profiles serialize to JSON so that `leakprof` can analyze them offline,
//! mirroring the paper's fetch-then-analyze pipeline.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::Gid;
use crate::loc::Frame;

/// The observable status of a goroutine, matching the categories of the
/// paper's Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GoStatus {
    /// Currently executing.
    Running,
    /// Ready to run, waiting for a processor.
    Runnable,
    /// Blocked sending on a channel.
    ChanSend {
        /// True when blocked on a nil channel (a guaranteed leak).
        nil_chan: bool,
    },
    /// Blocked receiving on a channel.
    ChanReceive {
        /// True when blocked on a nil channel (a guaranteed leak).
        nil_chan: bool,
    },
    /// Blocked in a `select`.
    Select {
        /// Number of communication cases; zero blocks forever.
        ncases: usize,
    },
    /// Blocked on network/file I/O.
    IoWait,
    /// Blocked in a system call.
    Syscall,
    /// Sleeping on a timer.
    Sleep,
    /// Blocked in `sync.Cond.Wait`.
    CondWait,
    /// Blocked acquiring a semaphore (covers `sync.Mutex` and
    /// `sync.WaitGroup.Wait`, which Go reports as `semacquire`).
    SemAcquire,
}

impl GoStatus {
    /// True for the statuses in which the goroutine is parked on a
    /// *channel* operation (send/receive/select) — the message-passing
    /// blocking kinds the paper's detectors target.
    pub fn is_channel_blocked(&self) -> bool {
        matches!(
            self,
            GoStatus::ChanSend { .. } | GoStatus::ChanReceive { .. } | GoStatus::Select { .. }
        )
    }

    /// True when the goroutine is parked for any reason.
    pub fn is_blocked(&self) -> bool {
        !matches!(self, GoStatus::Running | GoStatus::Runnable)
    }

    /// The Go-style wait-reason string shown in real goroutine dumps,
    /// e.g. `chan send` or `select`.
    pub fn wait_reason(&self) -> &'static str {
        match self {
            GoStatus::Running => "running",
            GoStatus::Runnable => "runnable",
            GoStatus::ChanSend { nil_chan: false } => "chan send",
            GoStatus::ChanSend { nil_chan: true } => "chan send (nil chan)",
            GoStatus::ChanReceive { nil_chan: false } => "chan receive",
            GoStatus::ChanReceive { nil_chan: true } => "chan receive (nil chan)",
            GoStatus::Select { .. } => "select",
            GoStatus::IoWait => "IO wait",
            GoStatus::Syscall => "syscall",
            GoStatus::Sleep => "sleep",
            GoStatus::CondWait => "sync.Cond.Wait",
            GoStatus::SemAcquire => "semacquire",
        }
    }
}

impl fmt::Display for GoStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.wait_reason())
    }
}

/// A single goroutine's entry in a profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoroutineRecord {
    /// Goroutine id.
    pub gid: Gid,
    /// Display name of the goroutine's root function.
    pub name: String,
    /// Status at snapshot time.
    pub status: GoStatus,
    /// Call stack, leaf-most frame first. When blocked, the leaf frames
    /// are synthetic runtime frames (`runtime.gopark`,
    /// `runtime.chansend1`, ...) and the first user frame carries the
    /// source location of the blocking operation.
    pub stack: Vec<Frame>,
    /// Where this goroutine was created (`created by ...` in Go dumps).
    pub created_by: Frame,
    /// Virtual ticks the goroutine has been in its current wait.
    pub wait_ticks: u64,
    /// Bytes retained by this goroutine (stack + attributed heap).
    pub retained_bytes: u64,
}

impl GoroutineRecord {
    /// The first non-runtime frame: the user-code operation the goroutine
    /// is blocked at. This is the location LeakProf groups by.
    pub fn blocking_frame(&self) -> Option<&Frame> {
        self.stack.iter().find(|f| !f.is_runtime())
    }

    /// Renders the record in the style of a Go goroutine dump.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "goroutine {} [{}{}]:",
            self.gid.0,
            self.status.wait_reason(),
            if self.wait_ticks > 0 {
                format!(", {} ticks", self.wait_ticks)
            } else {
                String::new()
            }
        );
        for f in &self.stack {
            let _ = writeln!(out, "{}\n\t{}", f.func, f.loc);
        }
        let _ = writeln!(
            out,
            "created by {}\n\t{}",
            self.created_by.func, self.created_by.loc
        );
        out
    }
}

/// An instantaneous snapshot of all live goroutines in one runtime
/// ("process"), the analysis unit of LeakProf.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoroutineProfile {
    /// Identifier of the process/instance the profile was captured from.
    pub instance: String,
    /// Virtual time of the snapshot.
    pub captured_at: u64,
    /// All live goroutines.
    pub goroutines: Vec<GoroutineRecord>,
}

impl GoroutineProfile {
    /// Number of goroutines in the profile.
    pub fn len(&self) -> usize {
        self.goroutines.len()
    }

    /// True when the profile contains no goroutines.
    pub fn is_empty(&self) -> bool {
        self.goroutines.is_empty()
    }

    /// Iterates over goroutines blocked on channel operations.
    pub fn channel_blocked(&self) -> impl Iterator<Item = &GoroutineRecord> {
        self.goroutines
            .iter()
            .filter(|g| g.status.is_channel_blocked())
    }

    /// Renders the profile in pprof's `debug=1` style: identical stacks
    /// are grouped with a count, largest group first. This is the compact
    /// form operators skim when a service holds thousands of goroutines
    /// — a leak shows up as one huge group.
    pub fn render_aggregated(&self) -> String {
        use std::collections::HashMap;
        use std::fmt::Write as _;
        let mut groups: HashMap<(GoStatus, Vec<Frame>), u64> = HashMap::new();
        for g in &self.goroutines {
            *groups.entry((g.status, g.stack.clone())).or_insert(0) += 1;
        }
        let mut ordered: Vec<((GoStatus, Vec<Frame>), u64)> = groups.into_iter().collect();
        ordered.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0 .1.cmp(&b.0 .1)));
        let mut out = format!(
            "goroutine profile: total {} (instance={} t={})\n",
            self.goroutines.len(),
            self.instance,
            self.captured_at
        );
        for ((status, stack), count) in ordered {
            let _ = writeln!(out, "\n{count} @ [{}]", status.wait_reason());
            for f in stack {
                let _ = writeln!(out, "#\t{}\t{}", f.func, f.loc);
            }
        }
        out
    }

    /// Renders the whole profile in Go dump style.
    pub fn render(&self) -> String {
        let mut out = format!(
            "=== goroutine profile: instance={} t={} total={}\n",
            self.instance,
            self.captured_at,
            self.goroutines.len()
        );
        for g in &self.goroutines {
            out.push('\n');
            out.push_str(&g.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::Loc;

    fn record(status: GoStatus) -> GoroutineRecord {
        GoroutineRecord {
            gid: Gid(1),
            name: "pkg.f".into(),
            status,
            stack: vec![
                Frame::runtime("runtime.gopark"),
                Frame::runtime("runtime.chansend"),
                Frame::runtime("runtime.chansend1"),
                Frame::new("pkg.f$1", Loc::new("pkg/f.go", 8)),
            ],
            created_by: Frame::new("pkg.f", Loc::new("pkg/f.go", 6)),
            wait_ticks: 10,
            retained_bytes: 8192,
        }
    }

    #[test]
    fn blocking_frame_skips_runtime_frames() {
        let r = record(GoStatus::ChanSend { nil_chan: false });
        let f = r.blocking_frame().unwrap();
        assert_eq!(f.func, "pkg.f$1");
        assert_eq!(f.loc, Loc::new("pkg/f.go", 8));
    }

    #[test]
    fn channel_blocked_statuses() {
        assert!(GoStatus::ChanSend { nil_chan: false }.is_channel_blocked());
        assert!(GoStatus::Select { ncases: 2 }.is_channel_blocked());
        assert!(!GoStatus::IoWait.is_channel_blocked());
        assert!(GoStatus::IoWait.is_blocked());
        assert!(!GoStatus::Running.is_blocked());
    }

    #[test]
    fn render_mentions_wait_reason_and_creation() {
        let r = record(GoStatus::ChanSend { nil_chan: false });
        let s = r.render();
        assert!(s.contains("chan send"));
        assert!(s.contains("created by pkg.f"));
        assert!(s.contains("pkg/f.go:8"));
    }

    #[test]
    fn profile_serde_roundtrip() {
        let p = GoroutineProfile {
            instance: "svc-0".into(),
            captured_at: 5,
            goroutines: vec![record(GoStatus::Select { ncases: 2 })],
        };
        let js = serde_json::to_string(&p).unwrap();
        let back: GoroutineProfile = serde_json::from_str(&js).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.goroutines[0].status, GoStatus::Select { ncases: 2 });
    }

    #[test]
    fn nil_chan_wait_reasons_are_distinct() {
        assert_ne!(
            GoStatus::ChanSend { nil_chan: true }.wait_reason(),
            GoStatus::ChanSend { nil_chan: false }.wait_reason()
        );
    }
}
