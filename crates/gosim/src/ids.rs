//! Newtype identifiers for runtime objects.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

id_type!(
    /// A goroutine identifier, analogous to the goid in Go runtime traces.
    Gid,
    "goroutine-"
);
id_type!(
    /// A channel identifier.
    ChanId,
    "chan-"
);
id_type!(
    /// A semaphore identifier (`sync.Mutex` is a semaphore of capacity 1).
    SemId,
    "sem-"
);
id_type!(
    /// A wait-group identifier (`sync.WaitGroup`).
    WgId,
    "wg-"
);
id_type!(
    /// A condition-variable identifier (`sync.Cond`).
    CondId,
    "cond-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix_and_number() {
        assert_eq!(Gid(3).to_string(), "goroutine-3");
        assert_eq!(ChanId(9).to_string(), "chan-9");
        assert_eq!(SemId(1).to_string(), "sem-1");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(Gid(1) < Gid(2));
        let raw: u64 = ChanId(5).into();
        assert_eq!(raw, 5);
    }
}
