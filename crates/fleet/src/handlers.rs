//! Canned request-handler programs for simulated services.
//!
//! Each handler is a mini-Go function invoked once per (sampled) request.
//! Leaky variants abandon a child goroutine that retains an allocated
//! buffer — the mechanism behind the paper's Fig 1 (RSS blow-up) and
//! Fig 2 (GC/scheduler CPU inflation). Fixed variants apply exactly the
//! remediations the paper describes (buffered channel, close, Stop call).

use serde::{Deserialize, Serialize};

/// A handler program: source text plus entry-point metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Handler {
    /// Source text (mini-Go).
    pub source: String,
    /// File path used for blocking locations.
    pub path: String,
    /// Qualified entry function (`pkg.Func`).
    pub func: String,
    /// Line of the leaking operation (`None` for fixed variants).
    pub leak_line: Option<u32>,
}

/// The timeout leak (paper Listing 8): each request races a slow
/// producer against a context deadline; on timeout the producer leaks,
/// retaining `buf_bytes` of heap.
pub fn timeout_leak(svc: &str, buf_bytes: u64) -> Handler {
    let path = format!("{svc}/handler.go");
    Handler {
        source: format!(
            "package {svc}\n\nfunc Handle(parent context.Context) {{\n\tctx, cancel := context.WithTimeout(parent, 4)\n\tdefer cancel()\n\tch := make(chan int)\n\tgo func() {{\n\t\ttime.Sleep(40)\n\t\tsim.Alloc({buf_bytes})\n\t\tch <- 1\n\t}}()\n\tselect {{\n\tcase item := <-ch:\n\t\t_ = item\n\tcase <-ctx.Done():\n\t\treturn\n\t}}\n}}\n"
        ),
        path,
        func: format!("{svc}.Handle"),
        leak_line: Some(10),
    }
}

/// The fixed timeout handler: capacity-one channel absorbs the late
/// send, so the producer always exits and its buffer is collected.
pub fn timeout_fixed(svc: &str, buf_bytes: u64) -> Handler {
    let path = format!("{svc}/handler.go");
    Handler {
        source: format!(
            "package {svc}\n\nfunc Handle(parent context.Context) {{\n\tctx, cancel := context.WithTimeout(parent, 4)\n\tdefer cancel()\n\tch := make(chan int, 1)\n\tgo func() {{\n\t\ttime.Sleep(40)\n\t\tsim.Alloc({buf_bytes})\n\t\tch <- 1\n\t}}()\n\tselect {{\n\tcase item := <-ch:\n\t\t_ = item\n\tcase <-ctx.Done():\n\t\treturn\n\t}}\n}}\n"
        ),
        path,
        func: format!("{svc}.Handle"),
        leak_line: None,
    }
}

/// Premature-return leak (Listing 7 shape) with retained buffer.
pub fn premature_return_leak(svc: &str, buf_bytes: u64) -> Handler {
    let path = format!("{svc}/handler.go");
    Handler {
        source: format!(
            "package {svc}\n\nfunc Handle(fail bool) {{\n\tch := make(chan int)\n\tgo func() {{\n\t\tsim.Alloc({buf_bytes})\n\t\tch <- 1\n\t}}()\n\tif fail {{\n\t\treturn\n\t}}\n\t<-ch\n}}\n"
        ),
        path,
        func: format!("{svc}.Handle"),
        leak_line: Some(7),
    }
}

/// Fixed premature-return handler (capacity one).
pub fn premature_return_fixed(svc: &str, buf_bytes: u64) -> Handler {
    let path = format!("{svc}/handler.go");
    Handler {
        source: format!(
            "package {svc}\n\nfunc Handle(fail bool) {{\n\tch := make(chan int, 1)\n\tgo func() {{\n\t\tsim.Alloc({buf_bytes})\n\t\tch <- 1\n\t}}()\n\tif fail {{\n\t\treturn\n\t}}\n\t<-ch\n}}\n"
        ),
        path,
        func: format!("{svc}.Handle"),
        leak_line: None,
    }
}

/// Contract-violation leak (Listing 6 shape): each request starts a
/// worker listener and never stops it.
pub fn contract_leak(svc: &str, buf_bytes: u64) -> Handler {
    let path = format!("{svc}/handler.go");
    Handler {
        source: format!(
            "package {svc}\n\nfunc Handle(stop bool) {{\n\tch := make(chan int)\n\tdone := make(chan int)\n\tgo func() {{\n\t\tsim.Alloc({buf_bytes})\n\t\tfor {{\n\t\t\tselect {{\n\t\t\tcase <-ch:\n\t\t\t\tsim.Work(1)\n\t\t\tcase <-done:\n\t\t\t\treturn\n\t\t\t}}\n\t\t}}\n\t}}()\n\tif stop {{\n\t\tclose(done)\n\t}}\n}}\n"
        ),
        path,
        func: format!("{svc}.Handle"),
        leak_line: Some(9),
    }
}

/// Fixed contract handler: Stop is always called.
pub fn contract_fixed(svc: &str, buf_bytes: u64) -> Handler {
    let mut h = contract_leak(svc, buf_bytes);
    h.leak_line = None;
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use gosim::{Runtime, Val};

    fn leak_count(h: &Handler, arg: Val, ticks: u64) -> usize {
        let prog = minigo::compile(&h.source, &h.path).expect("handler compiles");
        let mut rt = Runtime::with_seed(3);
        prog.spawn_func(&mut rt, &h.func, vec![arg])
            .expect("entry exists");
        rt.advance(ticks, 100_000);
        rt.live_count()
    }

    #[test]
    fn timeout_variants() {
        assert_eq!(leak_count(&timeout_leak("s", 1000), Val::NilChan, 100), 1);
        assert_eq!(leak_count(&timeout_fixed("s", 1000), Val::NilChan, 100), 0);
    }

    #[test]
    fn premature_variants() {
        assert_eq!(
            leak_count(&premature_return_leak("s", 1000), Val::Bool(true), 100),
            1
        );
        assert_eq!(
            leak_count(&premature_return_fixed("s", 1000), Val::Bool(true), 100),
            0
        );
    }

    #[test]
    fn contract_variants() {
        assert_eq!(
            leak_count(&contract_leak("s", 1000), Val::Bool(false), 100),
            1
        );
        assert_eq!(
            leak_count(&contract_fixed("s", 1000), Val::Bool(true), 100),
            0
        );
    }

    #[test]
    fn leaked_goroutine_retains_buffer() {
        let h = timeout_leak("s", 50_000);
        let prog = minigo::compile(&h.source, &h.path).unwrap();
        let mut rt = Runtime::with_seed(1);
        prog.spawn_func(&mut rt, &h.func, vec![Val::NilChan])
            .unwrap();
        rt.advance(100, 100_000);
        assert!(rt.mem_stats().heap_bytes >= 50_000);
    }
}
