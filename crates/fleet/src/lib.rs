//! # fleet — a production microservice fleet simulator
//!
//! The paper's LeakProf findings (Figs 1, 2, 6; Table V) come from
//! services deployed across thousands of hosts. This crate provides the
//! synthetic equivalent: services × instances, each instance backed by a
//! *real* [`gosim::Runtime`] executing its (leaky or fixed) request
//! handler, with diurnal traffic, rolling redeploys, and fix rollouts.
//! RSS and CPU follow simple mechanistic models — resident memory is
//! base + retained goroutine stacks/heap, CPU is request work + GC and
//! scheduler overhead proportional to live goroutines and retained heap
//! — so leak impact and fix impact *emerge* from execution rather than
//! being scripted.
//!
//! Profile collection ([`Fleet::collect_profiles`]) yields genuine
//! pprof-style snapshots that feed `leakprof` unchanged.
//!
//! ```
//! use fleet::{handlers, default_service, Fleet, FleetConfig};
//!
//! let mut fleet = Fleet::new(FleetConfig { ticks_per_day: 24, ..FleetConfig::default() });
//! let mut spec = default_service(
//!     "payments", 2,
//!     handlers::timeout_leak("payments", 32_000),
//!     handlers::timeout_fixed("payments", 32_000),
//! );
//! spec.instances = 2;
//! fleet.add_service(spec);
//! fleet.run_days(1);
//! let profiles = fleet.collect_profiles();
//! assert_eq!(profiles.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod handlers;
pub mod sim;

pub use handlers::Handler;
pub use sim::{default_service, Fleet, FleetConfig, HandlerArg, Sample, Service, ServiceSpec};
