//! The fleet engine: services × instances on virtual days.
//!
//! Each instance owns a *real* [`gosim::Runtime`]. Request arrival is
//! analytic (diurnal sinusoid + noise), but the requests that exercise
//! the leak path are actually executed on the runtime, so leaked
//! goroutines are genuinely parked at their source locations and profile
//! collection goes through the same pprof-style snapshot LeakProf
//! consumes in the paper.
//!
//! Scaling: a production instance sees orders of magnitude more requests
//! than we want to execute. `sample_rate` executes one in every `k`
//! leak-path requests and the memory/CPU models multiply the measured
//! runtime footprint back up, preserving shapes while keeping the
//! simulation laptop-sized (documented substitution in DESIGN.md).

use gosim::rng::SplitMix64;
use gosim::{GoroutineProfile, Runtime, SchedConfig, Val};
use serde::{Deserialize, Serialize};

use crate::handlers::Handler;

/// Fleet-wide configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Seed for arrival noise and scheduler seeds.
    pub seed: u64,
    /// Simulation ticks per virtual day.
    pub ticks_per_day: u32,
    /// Virtual runtime ticks advanced per simulation tick.
    pub rt_ticks_per_tick: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 7,
            ticks_per_day: 96,
            rt_ticks_per_tick: 100,
        }
    }
}

/// Per-service workload and resource model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Service name.
    pub name: String,
    /// Number of instances.
    pub instances: usize,
    /// Peak requests per tick per instance.
    pub peak_rps: f64,
    /// Fraction of requests that hit the leak path.
    pub leak_activation: f64,
    /// Execute one of every `sample_rate` leak-path requests on the real
    /// runtime (metrics scale back up).
    pub sample_rate: u64,
    /// Handler while the bug is live.
    pub leaky: Handler,
    /// Handler after the fix.
    pub fixed: Handler,
    /// Argument passed to the handler entry point.
    pub arg: HandlerArg,
    /// Day at which the fix deploys (`None` = never).
    pub fix_day: Option<u32>,
    /// Day at which a *regression* deploys the leaky handler (for
    /// services that start healthy, as in the paper's Fig 6 incident).
    pub regress_day: Option<u32>,
    /// Redeploy (process restart) interval in days (`None` = never).
    pub redeploy_days: Option<u32>,
    /// Base RSS per instance in bytes (binary, caches, ...).
    pub base_rss: u64,
    /// CPU cost per request, as a fraction of one core-tick.
    pub cpu_per_request: f64,
    /// GC/scheduler CPU cost per live goroutine per tick.
    pub cpu_per_goroutine: f64,
    /// GC CPU cost per retained megabyte per tick.
    pub cpu_per_mb: f64,
}

/// Argument passed to handler invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HandlerArg {
    /// `Handle(nil)` — context-typed handlers.
    NilCtx,
    /// `Handle(true)`.
    True,
    /// `Handle(false)`.
    False,
}

impl HandlerArg {
    fn to_val(self) -> Val {
        match self {
            HandlerArg::NilCtx => Val::NilChan,
            HandlerArg::True => Val::Bool(true),
            HandlerArg::False => Val::Bool(false),
        }
    }
}

/// One metric sample (per instance per tick).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Service name.
    pub service: String,
    /// Instance index.
    pub instance: usize,
    /// Fractional day.
    pub day: f64,
    /// Modeled resident set size in bytes.
    pub rss: u64,
    /// Modeled CPU utilization (0..=1 per core).
    pub cpu: f64,
    /// Live goroutines on the (scaled) runtime × sample rate.
    pub goroutines: u64,
    /// Requests served this tick (modeled).
    pub requests: u64,
}

struct Instance {
    idx: usize,
    rt: Runtime,
    prog: gosim::script::Prog,
    func: String,
    rng: SplitMix64,
    carry: f64,
}

impl Instance {
    fn new(idx: usize, seed: u64, handler: &Handler) -> Instance {
        let prog = minigo::compile(&handler.source, &handler.path)
            .unwrap_or_else(|e| panic!("handler does not compile: {e:?}"));
        Instance {
            idx,
            rt: Runtime::new(SchedConfig {
                seed,
                ..SchedConfig::default()
            }),
            prog,
            func: handler.func.clone(),
            rng: SplitMix64::new(seed ^ 0xF1EE7),
            carry: 0.0,
        }
    }
}

/// A service under simulation.
pub struct Service {
    /// The specification.
    pub spec: ServiceSpec,
    instances: Vec<Instance>,
    fixed_deployed: bool,
    regressed: bool,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("name", &self.spec.name)
            .field("instances", &self.instances.len())
            .field("fixed", &self.fixed_deployed)
            .finish()
    }
}

/// The whole fleet.
pub struct Fleet {
    /// Configuration.
    pub config: FleetConfig,
    services: Vec<Service>,
    tick: u64,
    rng: SplitMix64,
    samples: Vec<Sample>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("services", &self.services.len())
            .field("tick", &self.tick)
            .finish()
    }
}

impl Fleet {
    /// Creates an empty fleet.
    pub fn new(config: FleetConfig) -> Fleet {
        let rng = SplitMix64::new(config.seed);
        Fleet {
            config,
            services: Vec::new(),
            tick: 0,
            rng,
            samples: Vec::new(),
        }
    }

    /// Adds a service; instances boot with the leaky handler unless
    /// `fix_day == Some(0)`.
    pub fn add_service(&mut self, spec: ServiceSpec) {
        let mut instances = Vec::with_capacity(spec.instances);
        let starts_healthy = spec.fix_day == Some(0) || spec.regress_day.is_some_and(|d| d > 0);
        let handler = if starts_healthy {
            &spec.fixed
        } else {
            &spec.leaky
        };
        for i in 0..spec.instances {
            let seed = self.rng.next_u64();
            instances.push(Instance::new(i, seed, handler));
        }
        self.services.push(Service {
            spec,
            instances,
            fixed_deployed: starts_healthy,
            regressed: false,
        });
    }

    /// Current virtual day (fractional).
    pub fn day(&self) -> f64 {
        self.tick as f64 / self.config.ticks_per_day as f64
    }

    /// All collected samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Drains collected samples (for incremental consumers).
    pub fn take_samples(&mut self) -> Vec<Sample> {
        std::mem::take(&mut self.samples)
    }

    /// Diurnal demand multiplier in [0.35, 1.0]: crests mid-day,
    /// troughs at night, like the paper's Fig 2 time series.
    pub fn diurnal(&self, day: f64) -> f64 {
        let phase = (day.fract()) * std::f64::consts::TAU;
        0.675 - 0.325 * phase.cos()
    }

    /// Runs one simulation tick across the fleet.
    pub fn step(&mut self) {
        self.tick += 1;
        let day = self.day();
        let diurnal = self.diurnal(day);
        let ticks_per_day = self.config.ticks_per_day;
        let rt_ticks = self.config.rt_ticks_per_tick;

        for svc in &mut self.services {
            // Regression deployment: a new build introduces the leak.
            if !svc.regressed {
                if let Some(reg) = svc.spec.regress_day {
                    if reg > 0 && day >= reg as f64 {
                        for inst in &mut svc.instances {
                            *inst = Instance::new(inst.idx, inst.rng.next_u64(), &svc.spec.leaky);
                        }
                        svc.regressed = true;
                        svc.fixed_deployed = false;
                    }
                }
            }
            // Fix deployment: swap handler + rolling restart.
            if !svc.fixed_deployed {
                if let Some(fix) = svc.spec.fix_day {
                    if day >= fix as f64 {
                        for inst in &mut svc.instances {
                            *inst = Instance::new(inst.idx, inst.rng.next_u64(), &svc.spec.fixed);
                        }
                        svc.fixed_deployed = true;
                    }
                }
            }
            // Scheduled redeploys.
            if let Some(period) = svc.spec.redeploy_days {
                let period_ticks = period as u64 * ticks_per_day as u64;
                if period_ticks > 0 && self.tick.is_multiple_of(period_ticks) {
                    let handler = if svc.fixed_deployed {
                        &svc.spec.fixed
                    } else {
                        &svc.spec.leaky
                    };
                    for inst in &mut svc.instances {
                        *inst = Instance::new(inst.idx, inst.rng.next_u64(), handler);
                    }
                }
            }

            for inst in &mut svc.instances {
                // Request arrivals with ±10% noise.
                let noise = 0.9 + 0.2 * inst.rng.next_f64();
                let requests = (svc.spec.peak_rps * diurnal * noise).max(0.0);
                // Leak-path requests, sampled 1-in-k onto the runtime.
                let leak_requests = requests * svc.spec.leak_activation;
                let exact = leak_requests / svc.spec.sample_rate as f64 + inst.carry;
                let to_spawn = exact.floor() as u64;
                inst.carry = exact - to_spawn as f64;
                for _ in 0..to_spawn.min(256) {
                    inst.prog
                        .spawn_func(&mut inst.rt, &inst.func, vec![svc.spec.arg.to_val()])
                        .expect("handler entry exists");
                }
                inst.rt.advance(rt_ticks, 400_000);

                // Resource models.
                let mem = inst.rt.mem_stats();
                let scaled_goroutines = mem.goroutines as u64 * svc.spec.sample_rate;
                let scaled_retained = mem.total() * svc.spec.sample_rate;
                let rss = svc.spec.base_rss + scaled_retained;
                let cpu_req = requests * svc.spec.cpu_per_request;
                // GC cycles track the allocation (request) rate; each
                // cycle's cost scales with the live goroutine population
                // and retained heap it must scan. This is why leak-driven
                // CPU inflation is worst at the diurnal crest (paper
                // Fig 2: max reduction 34% > average reduction 16.5%).
                // GC pacing: below the pacer's allocation-rate floor the
                // collector mostly idles; above it, cycles track the
                // allocation rate and each cycle steals mutator time
                // proportional to the live goroutines/heap it scans.
                // This concentrates leak-driven CPU inflation at the
                // diurnal crest (paper Fig 2: max reduction 34% vs
                // average 16.5%).
                let raw_load = (requests / svc.spec.peak_rps).clamp(0.0, 1.5);
                let gc_drive = ((raw_load - 0.80) / 0.20).clamp(0.0, 1.5);
                let cpu_gc = gc_drive
                    * (scaled_goroutines as f64 * svc.spec.cpu_per_goroutine
                        + (scaled_retained as f64 / 1_048_576.0) * svc.spec.cpu_per_mb);
                let cpu = (cpu_req + cpu_gc).min(4.0);

                self.samples.push(Sample {
                    service: svc.spec.name.clone(),
                    instance: inst.idx,
                    day,
                    rss,
                    cpu,
                    goroutines: scaled_goroutines,
                    requests: requests.round() as u64,
                });
            }
        }
    }

    /// Runs `n` whole days.
    pub fn run_days(&mut self, n: u32) {
        for _ in 0..(n as u64 * self.config.ticks_per_day as u64) {
            self.step();
        }
    }

    /// Collects a goroutine profile from every instance of every service
    /// — the daily LeakProf sweep. Goroutine counts in the profiles are
    /// un-sampled (real runtime contents); consumers scale thresholds by
    /// `sample_rate` when comparing with the paper's absolute numbers.
    pub fn collect_profiles(&self) -> Vec<GoroutineProfile> {
        let mut out = Vec::new();
        for svc in &self.services {
            for inst in &svc.instances {
                out.push(
                    inst.rt
                        .goroutine_profile(format!("{}-{}", svc.spec.name, inst.idx)),
                );
            }
        }
        out
    }

    /// Handler sources for LeakProf's AST filter, as (source, path).
    pub fn handler_sources(&self) -> Vec<(String, String)> {
        self.services
            .iter()
            .map(|s| {
                let h = if s.fixed_deployed {
                    &s.spec.fixed
                } else {
                    &s.spec.leaky
                };
                (h.source.clone(), h.path.clone())
            })
            .collect()
    }

    /// Immutable access to services.
    pub fn services(&self) -> &[Service] {
        &self.services
    }
}

/// A reasonable default resource model for a mid-size service.
pub fn default_service(
    name: &str,
    instances: usize,
    leaky: Handler,
    fixed: Handler,
) -> ServiceSpec {
    ServiceSpec {
        name: name.to_string(),
        instances,
        peak_rps: 40.0,
        leak_activation: 0.3,
        sample_rate: 8,
        leaky,
        fixed,
        arg: HandlerArg::NilCtx,
        fix_day: None,
        regress_day: None,
        redeploy_days: None,
        base_rss: 512 * 1024 * 1024,
        cpu_per_request: 0.004,
        cpu_per_goroutine: 0.25e-6,
        cpu_per_mb: 4.0e-5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handlers;

    fn tiny_service(fix_day: Option<u32>) -> ServiceSpec {
        ServiceSpec {
            instances: 2,
            peak_rps: 20.0,
            sample_rate: 2,
            fix_day,
            ..default_service(
                "svc",
                2,
                handlers::timeout_leak("svc", 40_000),
                handlers::timeout_fixed("svc", 40_000),
            )
        }
    }

    #[test]
    fn leaky_service_rss_grows_monotonically_by_day() {
        let mut fleet = Fleet::new(FleetConfig {
            ticks_per_day: 24,
            ..FleetConfig::default()
        });
        fleet.add_service(tiny_service(None));
        fleet.run_days(4);
        let daily_max: Vec<u64> = (0..4)
            .map(|d| {
                fleet
                    .samples()
                    .iter()
                    .filter(|s| s.day > d as f64 && s.day <= (d + 1) as f64)
                    .map(|s| s.rss)
                    .max()
                    .unwrap()
            })
            .collect();
        assert!(
            daily_max.windows(2).all(|w| w[1] >= w[0]),
            "leak ⇒ non-decreasing daily peak RSS: {daily_max:?}"
        );
        assert!(daily_max[3] > daily_max[0], "RSS must actually grow");
    }

    #[test]
    fn fix_deployment_flattens_rss() {
        let mut fleet = Fleet::new(FleetConfig {
            ticks_per_day: 24,
            ..FleetConfig::default()
        });
        fleet.add_service(tiny_service(Some(2)));
        fleet.run_days(4);
        let peak_before = fleet
            .samples()
            .iter()
            .filter(|s| s.day <= 2.0)
            .map(|s| s.rss)
            .max()
            .unwrap();
        let peak_after = fleet
            .samples()
            .iter()
            .filter(|s| s.day > 3.0)
            .map(|s| s.rss)
            .max()
            .unwrap();
        assert!(
            peak_after < peak_before,
            "fix must reduce peak RSS: before {peak_before} after {peak_after}"
        );
    }

    #[test]
    fn profiles_show_blocked_goroutines_at_leak_site() {
        let mut fleet = Fleet::new(FleetConfig {
            ticks_per_day: 24,
            ..FleetConfig::default()
        });
        fleet.add_service(tiny_service(None));
        fleet.run_days(2);
        let profiles = fleet.collect_profiles();
        assert_eq!(profiles.len(), 2);
        let blocked: usize = profiles.iter().map(|p| p.channel_blocked().count()).sum();
        assert!(blocked > 10, "leaked senders accumulate, got {blocked}");
        // All blocked at the declared leak line.
        for p in &profiles {
            for g in p.channel_blocked() {
                assert_eq!(g.blocking_frame().unwrap().loc.line, 10);
            }
        }
    }

    #[test]
    fn redeploy_resets_rss_sawtooth() {
        let mut spec = tiny_service(None);
        spec.redeploy_days = Some(2);
        let mut fleet = Fleet::new(FleetConfig {
            ticks_per_day: 24,
            ..FleetConfig::default()
        });
        fleet.add_service(spec);
        fleet.run_days(4);
        // RSS right after redeploy (day just past 2) is far below the
        // peak just before it.
        let before: u64 = fleet
            .samples()
            .iter()
            .filter(|s| s.day > 1.9 && s.day <= 2.0)
            .map(|s| s.rss)
            .max()
            .unwrap();
        let after: u64 = fleet
            .samples()
            .iter()
            .filter(|s| s.day > 2.0 && s.day <= 2.1)
            .map(|s| s.rss)
            .min()
            .unwrap();
        assert!(after < before, "redeploy resets RSS: {after} !< {before}");
    }

    #[test]
    fn diurnal_cycle_shapes_cpu() {
        let mut fleet = Fleet::new(FleetConfig {
            ticks_per_day: 48,
            ..FleetConfig::default()
        });
        let mut spec = tiny_service(Some(0)); // fixed from day 0: CPU ~ requests
        spec.leak_activation = 0.0;
        fleet.add_service(spec);
        fleet.run_days(1);
        let noon = fleet
            .samples()
            .iter()
            .filter(|s| (0.45..0.55).contains(&s.day))
            .map(|s| s.cpu)
            .fold(0.0f64, f64::max);
        let night = fleet
            .samples()
            .iter()
            .filter(|s| s.day < 0.07)
            .map(|s| s.cpu)
            .fold(0.0f64, f64::max);
        assert!(
            noon > night * 1.5,
            "diurnal crest: noon {noon} vs night {night}"
        );
    }
}
