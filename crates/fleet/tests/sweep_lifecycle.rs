//! Integration: the full LeakProf report lifecycle over a live fleet —
//! regression, daily sweeps with dedup, owner acknowledgement, fix
//! rollout, and automatic Fixed transition (paper §VII: 33 reported,
//! 24 acknowledged, 21 fixed).

use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};
use leakprof::{Config, IssueStatus, LeakProf, SweepStore};

#[test]
fn report_lifecycle_over_live_fleet() {
    let mut f = Fleet::new(FleetConfig {
        ticks_per_day: 24,
        seed: 21,
        ..FleetConfig::default()
    });
    let mut spec = default_service(
        "pay",
        3,
        handlers::timeout_leak("pay", 8_000),
        handlers::timeout_fixed("pay", 8_000),
    );
    spec.arg = HandlerArg::NilCtx;
    spec.leak_activation = 0.6;
    spec.fix_day = Some(3); // the fix ships on day 3
    f.add_service(spec);

    let mut lp = LeakProf::new(Config {
        threshold: 20,
        ast_filter: true,
        top_n: 5,
    });
    for (src, path) in f.handler_sources() {
        lp.index_source(&src, &path).unwrap();
    }
    lp.add_owner("pay/", "team-pay");

    let mut store = SweepStore::new();

    // Day 1: the leak crosses the threshold -> NEW issue.
    f.run_days(1);
    let d1 = store.record_sweep(&lp.analyze(&f.collect_profiles()));
    assert_eq!(d1.new.len(), 1, "day-1 sweep surfaces the leak");
    let op = d1.new[0].clone();
    assert_eq!(op.loc.to_string(), "pay/handler.go:10");

    // Day 2: same leak -> ONGOING, not re-alerted; owner acknowledges.
    f.run_days(1);
    let d2 = store.record_sweep(&lp.analyze(&f.collect_profiles()));
    assert!(d2.new.is_empty(), "no duplicate alert");
    assert_eq!(d2.ongoing.len(), 1);
    assert!(store.acknowledge(&op));

    // Day 3: fix deploys (instances restart with the fixed handler).
    // Day 4 sweep: the site has vanished -> auto-Fixed.
    f.run_days(2);
    let d4 = store.record_sweep(&lp.analyze(&f.collect_profiles()));
    assert!(d4.ongoing.is_empty(), "fixed service shows no suspects");
    assert_eq!(d4.vanished.len(), 1);
    assert_eq!(store.issue(&op).unwrap().status, IssueStatus::Fixed);

    let (reported, acked, fixed, rejected) = store.lifecycle();
    assert_eq!((reported, acked, fixed, rejected), (1, 1, 1, 0));
    assert_eq!(store.issue(&op).unwrap().owner.as_deref(), Some("team-pay"));

    // The store persists across tool runs.
    let reloaded = SweepStore::from_json(&store.to_json()).unwrap();
    assert_eq!(reloaded.lifecycle(), store.lifecycle());
}
