//! The mini-Go abstract syntax tree.
//!
//! The AST is deliberately close to Go's surface syntax for the
//! concurrency subset the paper analyzes. It is consumed by three
//! clients: the lowering pass to the `gosim` script IR
//! ([`crate::lower`]), the static analyzers in the `staticlint` crate,
//! and LeakProf's criterion-2 filter (trivially-transient `select`
//! detection), mirroring how the paper's tooling runs simple AST-level
//! analyses over Go source.

use serde::{Deserialize, Serialize};

/// A parsed source file (one package fragment).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct File {
    /// Package name from the `package` clause.
    pub package: String,
    /// File path used for locations (set by the caller of the parser).
    pub path: String,
    /// Top-level function declarations.
    pub funcs: Vec<FuncDecl>,
}

impl File {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }
}

/// A function declaration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Optional result type (informational; the subset is loosely typed).
    pub ret: Option<TypeExpr>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Line of the `func` keyword.
    pub line: u32,
}

/// A function parameter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeExpr,
}

/// A (simplified) type expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeExpr {
    /// `int`.
    Int,
    /// `bool`.
    Bool,
    /// `string`.
    Str,
    /// `float64`.
    Float,
    /// `chan T`.
    Chan(Box<TypeExpr>),
    /// `context.Context`.
    Ctx,
    /// `interface{}` / `any`.
    Any,
    /// `[]T`.
    List(Box<TypeExpr>),
    /// `sync.WaitGroup`.
    WaitGroup,
    /// `sync.Mutex`.
    Mutex,
    /// `sync.Cond`.
    Cond,
    /// Any other named type (`*Item`, `error`, user structs...).
    Named(String),
}

/// An expression (effect-free in this subset).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `nil`.
    Nil,
    /// Identifier.
    Ident(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `len(e)`.
    Len(Box<Expr>),
    /// `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `[]T{a, b, c}` — list literal (element type elided).
    ListLit(Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// `!`
    Not,
    /// `-`
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// The source of a receive operation. `<-ctx.Done()`, `<-time.After(d)`
/// and `<-time.Tick(d)` are recognized structurally because LeakProf's
/// criterion-2 filter (paper Section V-A) treats them as transient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RecvSrc {
    /// A plain channel expression.
    Chan(Expr),
    /// `ctx.Done()` for the named context variable.
    CtxDone(String),
    /// `time.After(d)`.
    TimeAfter(Expr),
    /// `time.Tick(d)`.
    TimeTick(Expr),
}

/// A function or method call.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallExpr {
    /// Call target.
    pub target: CallTarget,
    /// Arguments.
    pub args: Vec<Expr>,
    /// Line of the call.
    pub line: u32,
}

/// What a call refers to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallTarget {
    /// `f(...)` — a plain function (user-defined, or a cancel handle).
    Func(String),
    /// `recv.name(...)` — a method or package-qualified call
    /// (`wg.Add`, `mu.Lock`, `time.Sleep`, `sim.Work`, ...).
    Method {
        /// Receiver or package identifier.
        recv: String,
        /// Method or function name.
        name: String,
    },
}

/// How a goroutine is spawned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GoCall {
    /// `go func() { ... }()`.
    Closure {
        /// Closure body.
        body: Vec<Stmt>,
    },
    /// `go f(args...)`.
    Named {
        /// Callee.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// A goroutine spawned through a wrapper API taking a closure, e.g.
    /// `asyncutil.Go(func() { ... })`. The paper highlights that such
    /// wrappers blindside static analyzers unless each wrapper is
    /// special-cased; the dynamic pipeline treats them as ordinary spawns
    /// while the naive static baselines ignore them.
    Wrapper {
        /// Wrapper callee, e.g. `asyncutil.Go`.
        wrapper: String,
        /// Closure body.
        body: Vec<Stmt>,
    },
}

/// One `case` of a `select` statement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SelCase {
    /// `case v, ok := <-src:`.
    Recv {
        /// Value binding.
        name: Option<String>,
        /// `ok` binding.
        ok: Option<String>,
        /// Receive source.
        src: RecvSrc,
        /// Case body.
        body: Vec<Stmt>,
        /// Line of the `case`.
        line: u32,
    },
    /// `case ch <- val:`.
    Send {
        /// Channel expression.
        ch: Expr,
        /// Sent value.
        val: Expr,
        /// Case body.
        body: Vec<Stmt>,
        /// Line of the `case`.
        line: u32,
    },
}

impl SelCase {
    /// The case body.
    pub fn body(&self) -> &[Stmt] {
        match self {
            SelCase::Recv { body, .. } | SelCase::Send { body, .. } => body,
        }
    }

    /// The case line.
    pub fn line(&self) -> u32 {
        match self {
            SelCase::Recv { line, .. } | SelCase::Send { line, .. } => *line,
        }
    }
}

/// Loop flavors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ForKind {
    /// `for { ... }`.
    Infinite,
    /// `for cond { ... }`.
    While(Expr),
    /// `for v := range ch { ... }`.
    Range {
        /// Element binding (`_` elided to `None`).
        var: Option<String>,
        /// Ranged channel expression.
        ch: Expr,
    },
    /// `for i := 0; i < n; i++ { ... }` (this exact shape).
    CStyle {
        /// Induction variable.
        var: String,
        /// Upper bound expression.
        n: Expr,
    },
}

/// A statement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Stmt {
    /// `x := expr` / `x = expr`.
    Assign {
        /// Target.
        name: String,
        /// Value.
        expr: Expr,
        /// True for `:=`.
        decl: bool,
        /// Line.
        line: u32,
    },
    /// `ch := make(chan T, cap)`.
    MakeChan {
        /// Target.
        name: String,
        /// Element type.
        elem: TypeExpr,
        /// Capacity (`None` = unbuffered).
        cap: Option<Expr>,
        /// Line.
        line: u32,
    },
    /// `ch <- val`.
    Send {
        /// Channel.
        ch: Expr,
        /// Value.
        val: Expr,
        /// Line.
        line: u32,
    },
    /// `v, ok := <-src` (all bindings optional; bare receive when both
    /// `None`).
    Recv {
        /// Value binding.
        name: Option<String>,
        /// `ok` binding.
        ok: Option<String>,
        /// Source.
        src: RecvSrc,
        /// Line.
        line: u32,
    },
    /// `close(ch)`.
    Close {
        /// Channel.
        ch: Expr,
        /// Line.
        line: u32,
    },
    /// `go ...`.
    Go {
        /// Spawn form.
        call: GoCall,
        /// Line of the `go`.
        line: u32,
    },
    /// A call used as a statement (`f()`, `wg.Add(1)`, `time.Sleep(d)`).
    Call {
        /// Optional `x :=` binding of the result.
        ret: Option<String>,
        /// The call.
        call: CallExpr,
        /// Line.
        line: u32,
    },
    /// `ctx, cancel := context.WithTimeout(parent, d)` /
    /// `context.WithCancel(parent)`.
    CtxDecl {
        /// Context variable.
        ctx: String,
        /// Cancel-handle variable.
        cancel: String,
        /// Timeout expression (`None` for `WithCancel`).
        timeout: Option<Expr>,
        /// Line.
        line: u32,
    },
    /// `select { ... }`.
    Select {
        /// Cases.
        cases: Vec<SelCase>,
        /// Optional `default` body.
        default: Option<Vec<Stmt>>,
        /// Line of the `select`.
        line: u32,
    },
    /// `if cond { ... } else { ... }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        els: Option<Vec<Stmt>>,
        /// Line.
        line: u32,
    },
    /// Any `for` loop.
    For {
        /// Loop flavor.
        kind: ForKind,
        /// Body.
        body: Vec<Stmt>,
        /// Line.
        line: u32,
    },
    /// `return expr?`.
    Return {
        /// Optional value.
        expr: Option<Expr>,
        /// Line.
        line: u32,
    },
    /// `break`.
    Break {
        /// Line.
        line: u32,
    },
    /// `continue`.
    Continue {
        /// Line.
        line: u32,
    },
    /// `defer call`.
    Defer {
        /// Deferred call (`close(ch)` is represented as target
        /// `Func("close")`).
        call: CallExpr,
        /// Line.
        line: u32,
    },
    /// `var name T` (used for `sync.WaitGroup`, `sync.Mutex`, zero-valued
    /// channels, and plain scalars).
    VarDecl {
        /// Name.
        name: String,
        /// Type.
        ty: TypeExpr,
        /// Optional initializer.
        init: Option<Expr>,
        /// Line.
        line: u32,
    },
    /// `panic("msg")`.
    Panic {
        /// Message.
        msg: String,
        /// Line.
        line: u32,
    },
}

impl Stmt {
    /// The statement's source line.
    pub fn line(&self) -> u32 {
        use Stmt::*;
        match self {
            Assign { line, .. }
            | MakeChan { line, .. }
            | Send { line, .. }
            | Recv { line, .. }
            | Close { line, .. }
            | Go { line, .. }
            | Call { line, .. }
            | CtxDecl { line, .. }
            | Select { line, .. }
            | If { line, .. }
            | For { line, .. }
            | Return { line, .. }
            | Break { line }
            | Continue { line }
            | Defer { line, .. }
            | VarDecl { line, .. }
            | Panic { line, .. } => *line,
        }
    }
}

/// Walks every statement in a body, depth-first, invoking `f` on each.
/// Used by the AST-level analyses (range linter, transient-select filter).
pub fn walk_stmts<'a>(body: &'a [Stmt], f: &mut dyn FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        match s {
            Stmt::Go {
                call: GoCall::Closure { body },
                ..
            }
            | Stmt::Go {
                call: GoCall::Wrapper { body, .. },
                ..
            } => walk_stmts(body, f),
            Stmt::Select { cases, default, .. } => {
                for c in cases {
                    walk_stmts(c.body(), f);
                }
                if let Some(d) = default {
                    walk_stmts(d, f);
                }
            }
            Stmt::If { then, els, .. } => {
                walk_stmts(then, f);
                if let Some(e) = els {
                    walk_stmts(e, f);
                }
            }
            Stmt::For { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_nested_statements() {
        let body = vec![Stmt::If {
            cond: Expr::Bool(true),
            then: vec![Stmt::For {
                kind: ForKind::Infinite,
                body: vec![Stmt::Break { line: 3 }],
                line: 2,
            }],
            els: None,
            line: 1,
        }];
        let mut lines = Vec::new();
        walk_stmts(&body, &mut |s| lines.push(s.line()));
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn file_func_lookup() {
        let f = File {
            package: "p".into(),
            path: "p/a.go".into(),
            funcs: vec![FuncDecl {
                name: "F".into(),
                params: vec![],
                ret: None,
                body: vec![],
                line: 1,
            }],
        };
        assert!(f.func("F").is_some());
        assert!(f.func("G").is_none());
    }
}
