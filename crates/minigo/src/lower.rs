//! Lowering: mini-Go AST → `gosim` script IR.
//!
//! The lowering is mostly 1:1. The interesting cases:
//!
//! * `<-time.After(d)` (in statements and `select` arms) hoists the timer
//!   channel creation before the receive, matching Go's evaluation order;
//! * `ctx.Done()` resolves to the context's done-channel variable (a
//!   context is represented by its done channel);
//! * `cancel()` calls are recognized by tracking the cancel-handle names
//!   introduced by `context.WithTimeout/WithCancel`;
//! * wrapper spawns (`pkg.Go(func(){...})`) lower to ordinary goroutine
//!   spawns — the dynamic pipeline sees through wrappers, unlike the
//!   naive static baselines;
//! * `sim.*` intrinsics (`sim.Work`, `sim.Alloc`, `sim.IOWait`,
//!   `sim.Syscall`, `sim.Block`) model computation, allocation, and
//!   non-channel blocking for workload generation.

use std::collections::HashSet;
use std::sync::Arc;

use gosim::script::{
    block, Arm, ArmIr, BinOp as IrBin, Block, Expr as IrExpr, FuncDef, Prog, Stmt as IrStmt,
};
use gosim::{Loc, ParkReason, TypeTag, Val};

use crate::ast::{
    BinOp, CallExpr, CallTarget, Expr, File, ForKind, FuncDecl, GoCall, RecvSrc, SelCase, Stmt,
    TypeExpr, UnOp,
};
use crate::parser::Diag;

/// Lowers a set of parsed files into a single executable program.
///
/// Function names are qualified as `package.Func` except `main`, which
/// keeps its bare name so [`gosim::script::Prog::spawn_main`] works.
///
/// # Errors
///
/// Returns diagnostics for constructs outside the supported subset.
pub fn lower_files(files: &[File]) -> Result<Prog, Vec<Diag>> {
    let mut funcs = Vec::new();
    let mut errors = Vec::new();
    for file in files {
        for f in &file.funcs {
            let mut cx = Lowerer {
                package: file.package.clone(),
                file: Arc::from(file.path.as_str()),
                func_display: qualify(&file.package, &f.name),
                closure_count: 0,
                tmp_count: 0,
                cancels: HashSet::new(),
                conds: HashSet::new(),
                errors: Vec::new(),
            };
            let def = cx.func(f);
            errors.extend(cx.errors);
            funcs.push(def);
        }
    }
    if errors.is_empty() {
        Ok(Prog::new(funcs))
    } else {
        Err(errors)
    }
}

/// Lowers a single file.
///
/// # Errors
///
/// See [`lower_files`].
pub fn lower_file(file: &File) -> Result<Prog, Vec<Diag>> {
    lower_files(std::slice::from_ref(file))
}

fn qualify(pkg: &str, name: &str) -> String {
    if name == "main" {
        "main".to_string()
    } else {
        format!("{pkg}.{name}")
    }
}

struct Lowerer {
    package: String,
    file: Arc<str>,
    func_display: String,
    closure_count: u32,
    tmp_count: u32,
    /// Variables known to hold cancel handles.
    cancels: HashSet<String>,
    /// Variables declared as `sync.Cond`.
    conds: HashSet<String>,
    errors: Vec<Diag>,
}

impl Lowerer {
    fn loc(&self, line: u32) -> Loc {
        Loc::new(self.file.clone(), line)
    }

    fn err(&mut self, line: u32, msg: impl Into<String>) {
        self.errors.push(Diag {
            msg: msg.into(),
            line,
        });
    }

    fn func(&mut self, f: &FuncDecl) -> FuncDef {
        let body = self.stmts(&f.body);
        FuncDef {
            name: self.func_display.clone(),
            file: self.file.clone(),
            params: f.params.iter().map(|p| p.name.clone()).collect(),
            body,
        }
    }

    fn stmts(&mut self, body: &[Stmt]) -> Block {
        let mut out = Vec::new();
        for s in body {
            self.stmt(s, &mut out);
        }
        block(out)
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<IrStmt>) {
        match s {
            Stmt::Assign {
                name, expr, line, ..
            } => {
                let e = self.expr(expr, *line);
                out.push(IrStmt::Assign {
                    var: name.clone(),
                    expr: e,
                    loc: self.loc(*line),
                });
            }
            Stmt::MakeChan {
                name,
                elem,
                cap,
                line,
            } => {
                let cap_e = match cap {
                    Some(e) => self.expr(e, *line),
                    None => IrExpr::int(0),
                };
                out.push(IrStmt::MakeChan {
                    var: name.clone(),
                    cap: cap_e,
                    elem: type_tag(elem),
                    loc: self.loc(*line),
                });
            }
            Stmt::Send { ch, val, line } => {
                let c = self.expr(ch, *line);
                let v = self.expr(val, *line);
                out.push(IrStmt::Send {
                    ch: c,
                    val: v,
                    loc: self.loc(*line),
                });
            }
            Stmt::Recv {
                name,
                ok,
                src,
                line,
            } => {
                let ch = self.recv_channel(src, *line, out);
                out.push(IrStmt::Recv {
                    var: name.clone(),
                    ok: ok.clone(),
                    ch,
                    loc: self.loc(*line),
                });
            }
            Stmt::Close { ch, line } => {
                let c = self.expr(ch, *line);
                out.push(IrStmt::Close {
                    ch: c,
                    loc: self.loc(*line),
                });
            }
            Stmt::Go { call, line } => self.go_stmt(call, *line, out),
            Stmt::Call { ret, call, line } => self.call_stmt(ret.as_deref(), call, *line, out),
            Stmt::CtxDecl {
                ctx,
                cancel,
                timeout,
                line,
            } => {
                self.cancels.insert(cancel.clone());
                let d = timeout.as_ref().map(|e| self.expr(e, *line));
                out.push(IrStmt::CtxWithTimeout {
                    ctx_var: ctx.clone(),
                    cancel_var: cancel.clone(),
                    d,
                    loc: self.loc(*line),
                });
            }
            Stmt::Select {
                cases,
                default,
                line,
            } => {
                let mut arms = Vec::new();
                for case in cases {
                    match case {
                        SelCase::Recv {
                            name,
                            ok,
                            src,
                            body,
                            line: cline,
                        } => {
                            let ch = self.recv_channel(src, *cline, out);
                            let b = self.stmts(body);
                            arms.push(Arm {
                                op: ArmIr::Recv {
                                    var: name.clone(),
                                    ok: ok.clone(),
                                    ch,
                                },
                                body: b,
                                loc: self.loc(*cline),
                            });
                        }
                        SelCase::Send {
                            ch,
                            val,
                            body,
                            line: cline,
                        } => {
                            let c = self.expr(ch, *cline);
                            let v = self.expr(val, *cline);
                            let b = self.stmts(body);
                            arms.push(Arm {
                                op: ArmIr::Send { ch: c, val: v },
                                body: b,
                                loc: self.loc(*cline),
                            });
                        }
                    }
                }
                let d = default.as_ref().map(|b| self.stmts(b));
                out.push(IrStmt::Select {
                    arms,
                    default: d,
                    loc: self.loc(*line),
                });
            }
            Stmt::If {
                cond,
                then,
                els,
                line,
            } => {
                let c = self.expr(cond, *line);
                let t = self.stmts(then);
                let e = match els {
                    Some(b) => self.stmts(b),
                    None => block(vec![]),
                };
                out.push(IrStmt::If {
                    cond: c,
                    then: t,
                    els: e,
                    loc: self.loc(*line),
                });
            }
            Stmt::For { kind, body, line } => {
                let b = self.stmts(body);
                let stmt = match kind {
                    ForKind::Infinite => IrStmt::While {
                        cond: None,
                        body: b,
                        loc: self.loc(*line),
                    },
                    ForKind::While(c) => IrStmt::While {
                        cond: Some(self.expr(c, *line)),
                        body: b,
                        loc: self.loc(*line),
                    },
                    ForKind::Range { var, ch } => IrStmt::ForRange {
                        var: var.clone(),
                        ch: self.expr(ch, *line),
                        body: b,
                        loc: self.loc(*line),
                    },
                    ForKind::CStyle { var, n } => IrStmt::ForN {
                        var: var.clone(),
                        n: self.expr(n, *line),
                        body: b,
                        loc: self.loc(*line),
                    },
                };
                out.push(stmt);
            }
            Stmt::Return { expr, line } => {
                let e = expr.as_ref().map(|e| self.expr(e, *line));
                out.push(IrStmt::Return {
                    expr: e,
                    loc: self.loc(*line),
                });
            }
            Stmt::Break { line } => out.push(IrStmt::Break {
                loc: self.loc(*line),
            }),
            Stmt::Continue { line } => out.push(IrStmt::Continue {
                loc: self.loc(*line),
            }),
            Stmt::Defer { call, line } => {
                let mut inner = Vec::new();
                self.call_stmt(None, call, *line, &mut inner);
                match inner.len() {
                    1 => out.push(IrStmt::Defer {
                        stmt: Box::new(inner.pop().expect("len checked")),
                        loc: self.loc(*line),
                    }),
                    0 => {}
                    _ => self.err(*line, "unsupported multi-statement defer"),
                }
            }
            Stmt::VarDecl {
                name,
                ty,
                init,
                line,
            } => match ty {
                TypeExpr::WaitGroup => out.push(IrStmt::MakeWg {
                    var: name.clone(),
                    loc: self.loc(*line),
                }),
                TypeExpr::Mutex => out.push(IrStmt::MakeMutex {
                    var: name.clone(),
                    loc: self.loc(*line),
                }),
                TypeExpr::Cond => {
                    self.conds.insert(name.clone());
                    out.push(IrStmt::MakeCond {
                        var: name.clone(),
                        loc: self.loc(*line),
                    })
                }
                _ => {
                    let value = match init {
                        Some(e) => self.expr(e, *line),
                        None => IrExpr::Lit(zero_val(ty)),
                    };
                    out.push(IrStmt::Assign {
                        var: name.clone(),
                        expr: value,
                        loc: self.loc(*line),
                    });
                }
            },
            Stmt::Panic { msg, line } => out.push(IrStmt::Panic {
                msg: msg.clone(),
                loc: self.loc(*line),
            }),
        }
    }

    /// Resolves the channel expression of a receive source, hoisting
    /// `time.After`/`time.Tick` into fresh temporaries.
    fn recv_channel(&mut self, src: &RecvSrc, line: u32, out: &mut Vec<IrStmt>) -> IrExpr {
        match src {
            RecvSrc::Chan(e) => self.expr(e, line),
            RecvSrc::CtxDone(ctx) => IrExpr::var(ctx.clone()),
            RecvSrc::TimeAfter(d) => {
                let tmp = self.fresh_tmp();
                let d = self.expr(d, line);
                out.push(IrStmt::After {
                    var: tmp.clone(),
                    d,
                    loc: self.loc(line),
                });
                IrExpr::var(tmp)
            }
            RecvSrc::TimeTick(d) => {
                let tmp = self.fresh_tmp();
                let d = self.expr(d, line);
                out.push(IrStmt::TickCh {
                    var: tmp.clone(),
                    period: d,
                    loc: self.loc(line),
                });
                IrExpr::var(tmp)
            }
        }
    }

    fn fresh_tmp(&mut self) -> String {
        self.tmp_count += 1;
        format!("__tmp{}", self.tmp_count)
    }

    fn go_stmt(&mut self, call: &GoCall, line: u32, out: &mut Vec<IrStmt>) {
        match call {
            GoCall::Closure { body } | GoCall::Wrapper { body, .. } => {
                self.closure_count += 1;
                let name = format!("{}${}", self.func_display, self.closure_count);
                let b = self.stmts(body);
                out.push(IrStmt::GoClosure {
                    name,
                    body: b,
                    loc: self.loc(line),
                });
            }
            GoCall::Named { func, args } => {
                let qualified = if func.contains('.') {
                    func.clone()
                } else {
                    qualify(&self.package, func)
                };
                let args = args.iter().map(|a| self.expr(a, line)).collect();
                out.push(IrStmt::GoCall {
                    func: qualified,
                    args,
                    loc: self.loc(line),
                });
            }
        }
    }

    fn call_stmt(&mut self, ret: Option<&str>, call: &CallExpr, line: u32, out: &mut Vec<IrStmt>) {
        let loc = self.loc(line);
        let args: Vec<IrExpr> = call.args.iter().map(|a| self.expr(a, line)).collect();
        let arg = |i: usize| -> IrExpr { args.get(i).cloned().unwrap_or(IrExpr::int(0)) };
        match &call.target {
            CallTarget::Func(name) => match name.as_str() {
                "close" => out.push(IrStmt::Close { ch: arg(0), loc }),
                "panic" => out.push(IrStmt::Panic {
                    msg: "panic".into(),
                    loc,
                }),
                f if self.cancels.contains(f) => out.push(IrStmt::CancelCtx {
                    ch: IrExpr::var(f),
                    loc,
                }),
                f => out.push(IrStmt::Call {
                    ret: ret.map(|s| s.to_string()),
                    func: qualify(&self.package, f),
                    args,
                    loc,
                }),
            },
            CallTarget::Method { recv, name } => match (recv.as_str(), name.as_str()) {
                ("time", "Sleep") => out.push(IrStmt::Sleep { d: arg(0), loc }),
                ("time", "After") => {
                    let var = ret
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| self.fresh_tmp());
                    out.push(IrStmt::After {
                        var,
                        d: arg(0),
                        loc,
                    });
                }
                ("time", "Tick") => {
                    let var = ret
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| self.fresh_tmp());
                    out.push(IrStmt::TickCh {
                        var,
                        period: arg(0),
                        loc,
                    });
                }
                ("sim", "Work") => out.push(IrStmt::Work { units: arg(0), loc }),
                ("sim", "Alloc") => out.push(IrStmt::Alloc { bytes: arg(0), loc }),
                ("sim", "IOWait") => out.push(IrStmt::Park {
                    reason: ParkReason::IoWait,
                    dur: args.first().cloned(),
                    loc,
                }),
                ("sim", "Syscall") => out.push(IrStmt::Park {
                    reason: ParkReason::Syscall,
                    dur: args.first().cloned(),
                    loc,
                }),
                ("sim", "Block") => out.push(IrStmt::Park {
                    reason: ParkReason::IoWait,
                    dur: None,
                    loc,
                }),
                (cv, "Wait") if self.conds.contains(cv) => out.push(IrStmt::CondWait {
                    cond: IrExpr::var(cv),
                    loc,
                }),
                (cv, "Signal") if self.conds.contains(cv) => out.push(IrStmt::CondNotify {
                    cond: IrExpr::var(cv),
                    all: false,
                    loc,
                }),
                (cv, "Broadcast") if self.conds.contains(cv) => out.push(IrStmt::CondNotify {
                    cond: IrExpr::var(cv),
                    all: true,
                    loc,
                }),
                (wg, "Add") => out.push(IrStmt::WgAdd {
                    wg: IrExpr::var(wg),
                    delta: arg(0),
                    loc,
                }),
                (wg, "Done") => out.push(IrStmt::WgDone {
                    wg: IrExpr::var(wg),
                    loc,
                }),
                (wg, "Wait") => out.push(IrStmt::WgWait {
                    wg: IrExpr::var(wg),
                    loc,
                }),
                (mu, "Lock") => out.push(IrStmt::Lock {
                    mu: IrExpr::var(mu),
                    loc,
                }),
                (mu, "Unlock") => out.push(IrStmt::Unlock {
                    mu: IrExpr::var(mu),
                    loc,
                }),
                (pkg, f) => {
                    // Cross-package call: resolve as `pkg.f`.
                    out.push(IrStmt::Call {
                        ret: ret.map(|s| s.to_string()),
                        func: format!("{pkg}.{f}"),
                        args,
                        loc,
                    });
                }
            },
        }
    }

    #[allow(clippy::only_used_in_recursion)]
    fn expr(&mut self, e: &Expr, line: u32) -> IrExpr {
        match e {
            Expr::Int(v) => IrExpr::int(*v),
            Expr::Str(s) => IrExpr::str(s.clone()),
            Expr::Bool(b) => IrExpr::bool(*b),
            Expr::Nil => IrExpr::Lit(Val::NilChan),
            Expr::Ident(name) => IrExpr::var(name.clone()),
            Expr::Unary(UnOp::Not, inner) => IrExpr::Not(Box::new(self.expr(inner, line))),
            Expr::Unary(UnOp::Neg, inner) => IrExpr::Bin(
                IrBin::Sub,
                Box::new(IrExpr::int(0)),
                Box::new(self.expr(inner, line)),
            ),
            Expr::Binary(op, a, b) => IrExpr::Bin(
                bin_op(*op),
                Box::new(self.expr(a, line)),
                Box::new(self.expr(b, line)),
            ),
            Expr::Len(inner) => IrExpr::Len(Box::new(self.expr(inner, line))),
            Expr::Index(base, idx) => IrExpr::Index(
                Box::new(self.expr(base, line)),
                Box::new(self.expr(idx, line)),
            ),
            Expr::ListLit(items) => {
                IrExpr::List(items.iter().map(|i| self.expr(i, line)).collect())
            }
        }
    }
}

fn bin_op(op: BinOp) -> IrBin {
    match op {
        BinOp::Add => IrBin::Add,
        BinOp::Sub => IrBin::Sub,
        BinOp::Mul => IrBin::Mul,
        BinOp::Div => IrBin::Div,
        BinOp::Mod => IrBin::Mod,
        BinOp::Eq => IrBin::Eq,
        BinOp::Ne => IrBin::Ne,
        BinOp::Lt => IrBin::Lt,
        BinOp::Le => IrBin::Le,
        BinOp::Gt => IrBin::Gt,
        BinOp::Ge => IrBin::Ge,
        BinOp::And => IrBin::And,
        BinOp::Or => IrBin::Or,
    }
}

fn type_tag(t: &TypeExpr) -> TypeTag {
    match t {
        TypeExpr::Int => TypeTag::Int,
        TypeExpr::Bool => TypeTag::Bool,
        TypeExpr::Str => TypeTag::Str,
        TypeExpr::Float => TypeTag::Float,
        TypeExpr::Chan(_) => TypeTag::Chan,
        TypeExpr::List(_) => TypeTag::List,
        _ => TypeTag::Unit,
    }
}

fn zero_val(t: &TypeExpr) -> Val {
    match t {
        TypeExpr::Int => Val::Int(0),
        TypeExpr::Bool => Val::Bool(false),
        TypeExpr::Str => Val::Str(String::new()),
        TypeExpr::Float => Val::Float(0.0),
        TypeExpr::Chan(_) => Val::NilChan,
        _ => Val::Unit,
    }
}
