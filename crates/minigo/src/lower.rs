//! Lowering: mini-Go AST → `gosim` script IR.
//!
//! The lowering is mostly 1:1. The interesting cases:
//!
//! * `<-time.After(d)` (in statements and `select` arms) hoists the timer
//!   channel creation before the receive, matching Go's evaluation order;
//! * `ctx.Done()` resolves to the context's done-channel variable (a
//!   context is represented by its done channel);
//! * `cancel()` calls are recognized by tracking the cancel-handle names
//!   introduced by `context.WithTimeout/WithCancel`;
//! * wrapper spawns (`pkg.Go(func(){...})`) lower to ordinary goroutine
//!   spawns — the dynamic pipeline sees through wrappers, unlike the
//!   naive static baselines;
//! * `sim.*` intrinsics (`sim.Work`, `sim.Alloc`, `sim.IOWait`,
//!   `sim.Syscall`, `sim.Block`) model computation, allocation, and
//!   non-channel blocking for workload generation.

use std::collections::HashSet;
use std::sync::Arc;

use gosim::script::{
    block, Arm, ArmIr, BinOp as IrBin, Block, Expr as IrExpr, FuncDef, Prog, Stmt as IrStmt,
};
use gosim::{Loc, ParkReason, TypeTag, Val};

use crate::ast::{
    BinOp, CallExpr, CallTarget, Expr, File, ForKind, FuncDecl, GoCall, RecvSrc, SelCase, Stmt,
    TypeExpr, UnOp,
};
use crate::parser::Diag;

/// Lowers a set of parsed files into a single executable program.
///
/// Function names are qualified as `package.Func` except `main`, which
/// keeps its bare name so [`gosim::script::Prog::spawn_main`] works.
///
/// # Errors
///
/// Returns diagnostics for constructs outside the supported subset.
pub fn lower_files(files: &[File]) -> Result<Prog, Vec<Diag>> {
    lower_files_inner(files, false)
}

/// Lowers files with race instrumentation: every read/write of a
/// variable shared between goroutines (captured by a closure spawned
/// with `go`, or referenced from several closures) additionally emits a
/// [`gosim::Effect::Access`] event carrying the variable name and
/// source line. The un-instrumented [`lower_files`] path is untouched,
/// so programs compiled without race mode pay nothing.
pub fn lower_files_race(files: &[File]) -> Result<Prog, Vec<Diag>> {
    lower_files_inner(files, true)
}

fn lower_files_inner(files: &[File], race: bool) -> Result<Prog, Vec<Diag>> {
    let mut funcs = Vec::new();
    let mut errors = Vec::new();
    for file in files {
        for f in &file.funcs {
            let shared = if race {
                shared_vars(&f.body)
            } else {
                HashSet::new()
            };
            let mut cx = Lowerer {
                package: file.package.clone(),
                file: Arc::from(file.path.as_str()),
                func_display: qualify(&file.package, &f.name),
                closure_count: 0,
                tmp_count: 0,
                cancels: HashSet::new(),
                conds: HashSet::new(),
                errors: Vec::new(),
                race,
                shared,
                suppress_access: false,
            };
            let def = cx.func(f);
            errors.extend(cx.errors);
            funcs.push(def);
        }
    }
    if errors.is_empty() {
        Ok(Prog::new(funcs))
    } else {
        Err(errors)
    }
}

/// Lowers a single file.
///
/// # Errors
///
/// See [`lower_files`].
pub fn lower_file(file: &File) -> Result<Prog, Vec<Diag>> {
    lower_files(std::slice::from_ref(file))
}

/// Computes the variables of a function body that more than one
/// goroutine can touch: names referenced both inside and outside a `go`
/// closure, in two different closures, or inside a closure spawned
/// within a loop (every iteration spawns another goroutine over the
/// same captured frame). Synchronization handles — channels, contexts,
/// cancel functions, `sync` primitives, timer channels — are excluded:
/// operating on them *is* synchronization, not shared data access.
fn shared_vars(body: &[Stmt]) -> HashSet<String> {
    let mut scan = SharedScan::default();
    scan.stmts(body, 0, false);
    scan.refs
        .iter()
        .filter(|(name, ctxs)| {
            !scan.excluded.contains(*name)
                && ctxs.iter().any(|&c| c > 0)
                && (ctxs.len() >= 2 || scan.looped.contains(*name))
        })
        .map(|(name, _)| name.clone())
        .collect()
}

#[derive(Default)]
struct SharedScan {
    /// name → the set of contexts referencing it (0 = the function body,
    /// each `go` closure gets a fresh context id).
    refs: std::collections::HashMap<String, HashSet<usize>>,
    /// Names referenced inside a closure that is spawned within a loop.
    looped: HashSet<String>,
    /// Synchronization handles, never data-race candidates.
    excluded: HashSet<String>,
    next_ctx: usize,
}

impl SharedScan {
    fn reference(&mut self, name: &str, ctx: usize, in_loop: bool) {
        self.refs.entry(name.to_string()).or_default().insert(ctx);
        if ctx > 0 && in_loop {
            self.looped.insert(name.to_string());
        }
    }

    fn expr(&mut self, e: &Expr, ctx: usize, in_loop: bool) {
        match e {
            Expr::Ident(n) => self.reference(n, ctx, in_loop),
            Expr::Unary(_, inner) | Expr::Len(inner) => self.expr(inner, ctx, in_loop),
            Expr::Binary(_, a, b) | Expr::Index(a, b) => {
                self.expr(a, ctx, in_loop);
                self.expr(b, ctx, in_loop);
            }
            Expr::ListLit(items) => {
                for i in items {
                    self.expr(i, ctx, in_loop);
                }
            }
            Expr::Int(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Nil => {}
        }
    }

    fn recv_src(&mut self, src: &RecvSrc, ctx: usize, in_loop: bool) {
        match src {
            RecvSrc::Chan(e) => self.expr(e, ctx, in_loop),
            RecvSrc::CtxDone(c) => self.reference(c, ctx, in_loop),
            RecvSrc::TimeAfter(d) | RecvSrc::TimeTick(d) => self.expr(d, ctx, in_loop),
        }
    }

    fn call(&mut self, call: &CallExpr, ctx: usize, in_loop: bool) {
        for a in &call.args {
            self.expr(a, ctx, in_loop);
        }
        // Method receivers are either packages (`time`, `sim`) or sync
        // primitives (`wg`, `mu`, `cv`) — none are data-race candidates,
        // so receivers are deliberately not referenced here.
    }

    fn stmts(&mut self, body: &[Stmt], ctx: usize, in_loop: bool) {
        for s in body {
            self.stmt(s, ctx, in_loop);
        }
    }

    fn stmt(&mut self, s: &Stmt, ctx: usize, in_loop: bool) {
        match s {
            Stmt::Assign { name, expr, .. } => {
                self.reference(name, ctx, in_loop);
                self.expr(expr, ctx, in_loop);
            }
            Stmt::MakeChan { name, cap, .. } => {
                self.excluded.insert(name.clone());
                if let Some(c) = cap {
                    self.expr(c, ctx, in_loop);
                }
            }
            Stmt::Send { ch, val, .. } => {
                self.expr(ch, ctx, in_loop);
                self.expr(val, ctx, in_loop);
            }
            Stmt::Recv { name, ok, src, .. } => {
                if let Some(n) = name {
                    self.reference(n, ctx, in_loop);
                }
                if let Some(o) = ok {
                    self.reference(o, ctx, in_loop);
                }
                self.recv_src(src, ctx, in_loop);
            }
            Stmt::Close { ch, .. } => self.expr(ch, ctx, in_loop),
            Stmt::Go { call, .. } => match call {
                GoCall::Closure { body } | GoCall::Wrapper { body, .. } => {
                    self.next_ctx += 1;
                    let closure_ctx = self.next_ctx;
                    self.stmts(body, closure_ctx, in_loop);
                }
                GoCall::Named { args, .. } => {
                    for a in args {
                        self.expr(a, ctx, in_loop);
                    }
                }
            },
            Stmt::Call { ret, call, .. } => {
                if let Some(r) = ret {
                    // time.After/time.Tick results are timer channels.
                    let is_timer_chan = matches!(
                        &call.target,
                        CallTarget::Method { recv, name }
                            if recv == "time" && (name == "After" || name == "Tick")
                    );
                    if is_timer_chan {
                        self.excluded.insert(r.clone());
                    } else {
                        self.reference(r, ctx, in_loop);
                    }
                }
                self.call(call, ctx, in_loop);
            }
            Stmt::CtxDecl {
                ctx: c,
                cancel,
                timeout,
                ..
            } => {
                self.excluded.insert(c.clone());
                self.excluded.insert(cancel.clone());
                if let Some(t) = timeout {
                    self.expr(t, ctx, in_loop);
                }
            }
            Stmt::Select { cases, default, .. } => {
                for case in cases {
                    match case {
                        SelCase::Recv {
                            name,
                            ok,
                            src,
                            body,
                            ..
                        } => {
                            if let Some(n) = name {
                                self.reference(n, ctx, in_loop);
                            }
                            if let Some(o) = ok {
                                self.reference(o, ctx, in_loop);
                            }
                            self.recv_src(src, ctx, in_loop);
                            self.stmts(body, ctx, in_loop);
                        }
                        SelCase::Send { ch, val, body, .. } => {
                            self.expr(ch, ctx, in_loop);
                            self.expr(val, ctx, in_loop);
                            self.stmts(body, ctx, in_loop);
                        }
                    }
                }
                if let Some(d) = default {
                    self.stmts(d, ctx, in_loop);
                }
            }
            Stmt::If {
                cond, then, els, ..
            } => {
                self.expr(cond, ctx, in_loop);
                self.stmts(then, ctx, in_loop);
                if let Some(e) = els {
                    self.stmts(e, ctx, in_loop);
                }
            }
            Stmt::For { kind, body, .. } => {
                match kind {
                    ForKind::Infinite => {}
                    ForKind::While(c) => self.expr(c, ctx, in_loop),
                    ForKind::Range { var, ch } => {
                        if let Some(v) = var {
                            self.reference(v, ctx, in_loop);
                        }
                        self.expr(ch, ctx, in_loop);
                    }
                    ForKind::CStyle { var, n } => {
                        self.reference(var, ctx, in_loop);
                        self.expr(n, ctx, in_loop);
                    }
                }
                self.stmts(body, ctx, true);
            }
            Stmt::Return { expr, .. } => {
                if let Some(e) = expr {
                    self.expr(e, ctx, in_loop);
                }
            }
            Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Panic { .. } => {}
            Stmt::Defer { call, .. } => self.call(call, ctx, in_loop),
            Stmt::VarDecl { name, ty, init, .. } => {
                match ty {
                    TypeExpr::WaitGroup | TypeExpr::Mutex | TypeExpr::Cond | TypeExpr::Chan(_) => {
                        self.excluded.insert(name.clone());
                    }
                    _ => self.reference(name, ctx, in_loop),
                }
                if let Some(e) = init {
                    self.expr(e, ctx, in_loop);
                }
            }
        }
    }
}

/// Collects shared-variable identifiers referenced by an expression,
/// deduplicated, in first-appearance order.
fn collect_shared_idents(e: &Expr, shared: &HashSet<String>, acc: &mut Vec<String>) {
    match e {
        Expr::Ident(n) => {
            if shared.contains(n) && !acc.iter().any(|x| x == n) {
                acc.push(n.clone());
            }
        }
        Expr::Unary(_, inner) | Expr::Len(inner) => collect_shared_idents(inner, shared, acc),
        Expr::Binary(_, a, b) | Expr::Index(a, b) => {
            collect_shared_idents(a, shared, acc);
            collect_shared_idents(b, shared, acc);
        }
        Expr::ListLit(items) => {
            for i in items {
                collect_shared_idents(i, shared, acc);
            }
        }
        Expr::Int(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Nil => {}
    }
}

fn qualify(pkg: &str, name: &str) -> String {
    if name == "main" {
        "main".to_string()
    } else {
        format!("{pkg}.{name}")
    }
}

struct Lowerer {
    package: String,
    file: Arc<str>,
    func_display: String,
    closure_count: u32,
    tmp_count: u32,
    /// Variables known to hold cancel handles.
    cancels: HashSet<String>,
    /// Variables declared as `sync.Cond`.
    conds: HashSet<String>,
    errors: Vec<Diag>,
    /// Race instrumentation enabled for this function.
    race: bool,
    /// Variables shared between goroutines in this function (computed on
    /// the AST before lowering; empty unless `race`).
    shared: HashSet<String>,
    /// Suppresses access injection (inside `defer`, which must lower to
    /// exactly one statement).
    suppress_access: bool,
}

impl Lowerer {
    fn loc(&self, line: u32) -> Loc {
        Loc::new(self.file.clone(), line)
    }

    fn err(&mut self, line: u32, msg: impl Into<String>) {
        self.errors.push(Diag {
            msg: msg.into(),
            line,
        });
    }

    fn func(&mut self, f: &FuncDecl) -> FuncDef {
        let body = self.stmts(&f.body);
        FuncDef {
            name: self.func_display.clone(),
            file: self.file.clone(),
            params: f.params.iter().map(|p| p.name.clone()).collect(),
            body,
        }
    }

    fn stmts(&mut self, body: &[Stmt]) -> Block {
        block(self.stmts_vec(body))
    }

    fn stmts_vec(&mut self, body: &[Stmt]) -> Vec<IrStmt> {
        let mut out = Vec::new();
        for s in body {
            self.stmt(s, &mut out);
        }
        out
    }

    /// Emits a read [`IrStmt::Access`] for every shared variable the
    /// expression references (race mode only).
    fn inject_reads(&mut self, e: &Expr, line: u32, out: &mut Vec<IrStmt>) {
        if !self.race || self.suppress_access {
            return;
        }
        let mut names = Vec::new();
        collect_shared_idents(e, &self.shared, &mut names);
        for var in names {
            out.push(IrStmt::Access {
                var,
                is_write: false,
                loc: self.loc(line),
            });
        }
    }

    /// Emits a write [`IrStmt::Access`] if `name` is shared (race mode
    /// only).
    fn inject_write(&mut self, name: &str, line: u32, out: &mut Vec<IrStmt>) {
        if !self.race || self.suppress_access || !self.shared.contains(name) {
            return;
        }
        out.push(IrStmt::Access {
            var: name.to_string(),
            is_write: true,
            loc: self.loc(line),
        });
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<IrStmt>) {
        match s {
            Stmt::Assign {
                name, expr, line, ..
            } => {
                self.inject_reads(expr, *line, out);
                let e = self.expr(expr, *line);
                out.push(IrStmt::Assign {
                    var: name.clone(),
                    expr: e,
                    loc: self.loc(*line),
                });
                self.inject_write(name, *line, out);
            }
            Stmt::MakeChan {
                name,
                elem,
                cap,
                line,
            } => {
                let cap_e = match cap {
                    Some(e) => self.expr(e, *line),
                    None => IrExpr::int(0),
                };
                out.push(IrStmt::MakeChan {
                    var: name.clone(),
                    cap: cap_e,
                    elem: type_tag(elem),
                    loc: self.loc(*line),
                });
            }
            Stmt::Send { ch, val, line } => {
                self.inject_reads(val, *line, out);
                let c = self.expr(ch, *line);
                let v = self.expr(val, *line);
                out.push(IrStmt::Send {
                    ch: c,
                    val: v,
                    loc: self.loc(*line),
                });
            }
            Stmt::Recv {
                name,
                ok,
                src,
                line,
            } => {
                let ch = self.recv_channel(src, *line, out);
                out.push(IrStmt::Recv {
                    var: name.clone(),
                    ok: ok.clone(),
                    ch,
                    loc: self.loc(*line),
                });
                if let Some(n) = name {
                    self.inject_write(n, *line, out);
                }
            }
            Stmt::Close { ch, line } => {
                let c = self.expr(ch, *line);
                out.push(IrStmt::Close {
                    ch: c,
                    loc: self.loc(*line),
                });
            }
            Stmt::Go { call, line } => self.go_stmt(call, *line, out),
            Stmt::Call { ret, call, line } => self.call_stmt(ret.as_deref(), call, *line, out),
            Stmt::CtxDecl {
                ctx,
                cancel,
                timeout,
                line,
            } => {
                self.cancels.insert(cancel.clone());
                let d = timeout.as_ref().map(|e| self.expr(e, *line));
                out.push(IrStmt::CtxWithTimeout {
                    ctx_var: ctx.clone(),
                    cancel_var: cancel.clone(),
                    d,
                    loc: self.loc(*line),
                });
            }
            Stmt::Select {
                cases,
                default,
                line,
            } => {
                let mut arms = Vec::new();
                for case in cases {
                    match case {
                        SelCase::Recv {
                            name,
                            ok,
                            src,
                            body,
                            line: cline,
                        } => {
                            let ch = self.recv_channel(src, *cline, out);
                            // The binding write belongs to the arm body:
                            // it happens only when this arm is chosen.
                            let mut bvec = Vec::new();
                            if let Some(n) = name {
                                self.inject_write(n, *cline, &mut bvec);
                            }
                            bvec.extend(self.stmts_vec(body));
                            arms.push(Arm {
                                op: ArmIr::Recv {
                                    var: name.clone(),
                                    ok: ok.clone(),
                                    ch,
                                },
                                body: block(bvec),
                                loc: self.loc(*cline),
                            });
                        }
                        SelCase::Send {
                            ch,
                            val,
                            body,
                            line: cline,
                        } => {
                            let c = self.expr(ch, *cline);
                            let v = self.expr(val, *cline);
                            let mut bvec = Vec::new();
                            self.inject_reads(val, *cline, &mut bvec);
                            bvec.extend(self.stmts_vec(body));
                            arms.push(Arm {
                                op: ArmIr::Send { ch: c, val: v },
                                body: block(bvec),
                                loc: self.loc(*cline),
                            });
                        }
                    }
                }
                let d = default.as_ref().map(|b| self.stmts(b));
                out.push(IrStmt::Select {
                    arms,
                    default: d,
                    loc: self.loc(*line),
                });
            }
            Stmt::If {
                cond,
                then,
                els,
                line,
            } => {
                self.inject_reads(cond, *line, out);
                let c = self.expr(cond, *line);
                let t = self.stmts(then);
                let e = match els {
                    Some(b) => self.stmts(b),
                    None => block(vec![]),
                };
                out.push(IrStmt::If {
                    cond: c,
                    then: t,
                    els: e,
                    loc: self.loc(*line),
                });
            }
            Stmt::For { kind, body, line } => {
                // Accesses that recur each iteration (condition reads,
                // induction-variable writes) are prepended to the body so
                // race mode sees them per-iteration, not just once.
                let mut bvec = Vec::new();
                match kind {
                    ForKind::While(c) => self.inject_reads(c, *line, &mut bvec),
                    ForKind::CStyle { var, .. } => self.inject_write(var, *line, &mut bvec),
                    ForKind::Infinite | ForKind::Range { .. } => {}
                }
                bvec.extend(self.stmts_vec(body));
                let b = block(bvec);
                let stmt = match kind {
                    ForKind::Infinite => IrStmt::While {
                        cond: None,
                        body: b,
                        loc: self.loc(*line),
                    },
                    ForKind::While(c) => {
                        self.inject_reads(c, *line, out);
                        IrStmt::While {
                            cond: Some(self.expr(c, *line)),
                            body: b,
                            loc: self.loc(*line),
                        }
                    }
                    ForKind::Range { var, ch } => IrStmt::ForRange {
                        var: var.clone(),
                        ch: self.expr(ch, *line),
                        body: b,
                        loc: self.loc(*line),
                    },
                    ForKind::CStyle { var, n } => {
                        self.inject_reads(n, *line, out);
                        IrStmt::ForN {
                            var: var.clone(),
                            n: self.expr(n, *line),
                            body: b,
                            loc: self.loc(*line),
                        }
                    }
                };
                out.push(stmt);
            }
            Stmt::Return { expr, line } => {
                if let Some(e) = expr {
                    self.inject_reads(e, *line, out);
                }
                let e = expr.as_ref().map(|e| self.expr(e, *line));
                out.push(IrStmt::Return {
                    expr: e,
                    loc: self.loc(*line),
                });
            }
            Stmt::Break { line } => out.push(IrStmt::Break {
                loc: self.loc(*line),
            }),
            Stmt::Continue { line } => out.push(IrStmt::Continue {
                loc: self.loc(*line),
            }),
            Stmt::Defer { call, line } => {
                let mut inner = Vec::new();
                // A defer must lower to exactly one statement, so access
                // injection is suppressed inside the deferred call.
                let saved = self.suppress_access;
                self.suppress_access = true;
                self.call_stmt(None, call, *line, &mut inner);
                self.suppress_access = saved;
                match inner.len() {
                    1 => out.push(IrStmt::Defer {
                        stmt: Box::new(inner.pop().expect("len checked")),
                        loc: self.loc(*line),
                    }),
                    0 => {}
                    _ => self.err(*line, "unsupported multi-statement defer"),
                }
            }
            Stmt::VarDecl {
                name,
                ty,
                init,
                line,
            } => match ty {
                TypeExpr::WaitGroup => out.push(IrStmt::MakeWg {
                    var: name.clone(),
                    loc: self.loc(*line),
                }),
                TypeExpr::Mutex => out.push(IrStmt::MakeMutex {
                    var: name.clone(),
                    loc: self.loc(*line),
                }),
                TypeExpr::Cond => {
                    self.conds.insert(name.clone());
                    out.push(IrStmt::MakeCond {
                        var: name.clone(),
                        loc: self.loc(*line),
                    })
                }
                _ => {
                    if let Some(e) = init {
                        self.inject_reads(e, *line, out);
                    }
                    let value = match init {
                        Some(e) => self.expr(e, *line),
                        None => IrExpr::Lit(zero_val(ty)),
                    };
                    out.push(IrStmt::Assign {
                        var: name.clone(),
                        expr: value,
                        loc: self.loc(*line),
                    });
                    self.inject_write(name, *line, out);
                }
            },
            Stmt::Panic { msg, line } => out.push(IrStmt::Panic {
                msg: msg.clone(),
                loc: self.loc(*line),
            }),
        }
    }

    /// Resolves the channel expression of a receive source, hoisting
    /// `time.After`/`time.Tick` into fresh temporaries.
    fn recv_channel(&mut self, src: &RecvSrc, line: u32, out: &mut Vec<IrStmt>) -> IrExpr {
        match src {
            RecvSrc::Chan(e) => self.expr(e, line),
            RecvSrc::CtxDone(ctx) => IrExpr::var(ctx.clone()),
            RecvSrc::TimeAfter(d) => {
                let tmp = self.fresh_tmp();
                let d = self.expr(d, line);
                out.push(IrStmt::After {
                    var: tmp.clone(),
                    d,
                    loc: self.loc(line),
                });
                IrExpr::var(tmp)
            }
            RecvSrc::TimeTick(d) => {
                let tmp = self.fresh_tmp();
                let d = self.expr(d, line);
                out.push(IrStmt::TickCh {
                    var: tmp.clone(),
                    period: d,
                    loc: self.loc(line),
                });
                IrExpr::var(tmp)
            }
        }
    }

    fn fresh_tmp(&mut self) -> String {
        self.tmp_count += 1;
        format!("__tmp{}", self.tmp_count)
    }

    fn go_stmt(&mut self, call: &GoCall, line: u32, out: &mut Vec<IrStmt>) {
        match call {
            GoCall::Closure { body } | GoCall::Wrapper { body, .. } => {
                self.closure_count += 1;
                let name = format!("{}${}", self.func_display, self.closure_count);
                let b = self.stmts(body);
                out.push(IrStmt::GoClosure {
                    name,
                    body: b,
                    loc: self.loc(line),
                });
            }
            GoCall::Named { func, args } => {
                let qualified = if func.contains('.') {
                    func.clone()
                } else {
                    qualify(&self.package, func)
                };
                for a in args {
                    self.inject_reads(a, line, out);
                }
                let args = args.iter().map(|a| self.expr(a, line)).collect();
                out.push(IrStmt::GoCall {
                    func: qualified,
                    args,
                    loc: self.loc(line),
                });
            }
        }
    }

    fn call_stmt(&mut self, ret: Option<&str>, call: &CallExpr, line: u32, out: &mut Vec<IrStmt>) {
        let loc = self.loc(line);
        for a in &call.args {
            self.inject_reads(a, line, out);
        }
        let args: Vec<IrExpr> = call.args.iter().map(|a| self.expr(a, line)).collect();
        let arg = |i: usize| -> IrExpr { args.get(i).cloned().unwrap_or(IrExpr::int(0)) };
        match &call.target {
            CallTarget::Func(name) => match name.as_str() {
                "close" => out.push(IrStmt::Close { ch: arg(0), loc }),
                "panic" => out.push(IrStmt::Panic {
                    msg: "panic".into(),
                    loc,
                }),
                f if self.cancels.contains(f) => out.push(IrStmt::CancelCtx {
                    ch: IrExpr::var(f),
                    loc,
                }),
                f => out.push(IrStmt::Call {
                    ret: ret.map(|s| s.to_string()),
                    func: qualify(&self.package, f),
                    args,
                    loc,
                }),
            },
            CallTarget::Method { recv, name } => match (recv.as_str(), name.as_str()) {
                ("time", "Sleep") => out.push(IrStmt::Sleep { d: arg(0), loc }),
                ("time", "After") => {
                    let var = ret
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| self.fresh_tmp());
                    out.push(IrStmt::After {
                        var,
                        d: arg(0),
                        loc,
                    });
                }
                ("time", "Tick") => {
                    let var = ret
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| self.fresh_tmp());
                    out.push(IrStmt::TickCh {
                        var,
                        period: arg(0),
                        loc,
                    });
                }
                ("sim", "Work") => out.push(IrStmt::Work { units: arg(0), loc }),
                ("sim", "Alloc") => out.push(IrStmt::Alloc { bytes: arg(0), loc }),
                ("sim", "IOWait") => out.push(IrStmt::Park {
                    reason: ParkReason::IoWait,
                    dur: args.first().cloned(),
                    loc,
                }),
                ("sim", "Syscall") => out.push(IrStmt::Park {
                    reason: ParkReason::Syscall,
                    dur: args.first().cloned(),
                    loc,
                }),
                ("sim", "Block") => out.push(IrStmt::Park {
                    reason: ParkReason::IoWait,
                    dur: None,
                    loc,
                }),
                (cv, "Wait") if self.conds.contains(cv) => out.push(IrStmt::CondWait {
                    cond: IrExpr::var(cv),
                    loc,
                }),
                (cv, "Signal") if self.conds.contains(cv) => out.push(IrStmt::CondNotify {
                    cond: IrExpr::var(cv),
                    all: false,
                    loc,
                }),
                (cv, "Broadcast") if self.conds.contains(cv) => out.push(IrStmt::CondNotify {
                    cond: IrExpr::var(cv),
                    all: true,
                    loc,
                }),
                (wg, "Add") => out.push(IrStmt::WgAdd {
                    wg: IrExpr::var(wg),
                    delta: arg(0),
                    loc,
                }),
                (wg, "Done") => out.push(IrStmt::WgDone {
                    wg: IrExpr::var(wg),
                    loc,
                }),
                (wg, "Wait") => out.push(IrStmt::WgWait {
                    wg: IrExpr::var(wg),
                    loc,
                }),
                (mu, "Lock") => out.push(IrStmt::Lock {
                    mu: IrExpr::var(mu),
                    loc,
                }),
                (mu, "Unlock") => out.push(IrStmt::Unlock {
                    mu: IrExpr::var(mu),
                    loc,
                }),
                (pkg, f) => {
                    // Cross-package call: resolve as `pkg.f`.
                    out.push(IrStmt::Call {
                        ret: ret.map(|s| s.to_string()),
                        func: format!("{pkg}.{f}"),
                        args,
                        loc,
                    });
                }
            },
        }
        if let Some(r) = ret {
            self.inject_write(r, line, out);
        }
    }

    #[allow(clippy::only_used_in_recursion)]
    fn expr(&mut self, e: &Expr, line: u32) -> IrExpr {
        match e {
            Expr::Int(v) => IrExpr::int(*v),
            Expr::Str(s) => IrExpr::str(s.clone()),
            Expr::Bool(b) => IrExpr::bool(*b),
            Expr::Nil => IrExpr::Lit(Val::NilChan),
            Expr::Ident(name) => IrExpr::var(name.clone()),
            Expr::Unary(UnOp::Not, inner) => IrExpr::Not(Box::new(self.expr(inner, line))),
            Expr::Unary(UnOp::Neg, inner) => IrExpr::Bin(
                IrBin::Sub,
                Box::new(IrExpr::int(0)),
                Box::new(self.expr(inner, line)),
            ),
            Expr::Binary(op, a, b) => IrExpr::Bin(
                bin_op(*op),
                Box::new(self.expr(a, line)),
                Box::new(self.expr(b, line)),
            ),
            Expr::Len(inner) => IrExpr::Len(Box::new(self.expr(inner, line))),
            Expr::Index(base, idx) => IrExpr::Index(
                Box::new(self.expr(base, line)),
                Box::new(self.expr(idx, line)),
            ),
            Expr::ListLit(items) => {
                IrExpr::List(items.iter().map(|i| self.expr(i, line)).collect())
            }
        }
    }
}

fn bin_op(op: BinOp) -> IrBin {
    match op {
        BinOp::Add => IrBin::Add,
        BinOp::Sub => IrBin::Sub,
        BinOp::Mul => IrBin::Mul,
        BinOp::Div => IrBin::Div,
        BinOp::Mod => IrBin::Mod,
        BinOp::Eq => IrBin::Eq,
        BinOp::Ne => IrBin::Ne,
        BinOp::Lt => IrBin::Lt,
        BinOp::Le => IrBin::Le,
        BinOp::Gt => IrBin::Gt,
        BinOp::Ge => IrBin::Ge,
        BinOp::And => IrBin::And,
        BinOp::Or => IrBin::Or,
    }
}

fn type_tag(t: &TypeExpr) -> TypeTag {
    match t {
        TypeExpr::Int => TypeTag::Int,
        TypeExpr::Bool => TypeTag::Bool,
        TypeExpr::Str => TypeTag::Str,
        TypeExpr::Float => TypeTag::Float,
        TypeExpr::Chan(_) => TypeTag::Chan,
        TypeExpr::List(_) => TypeTag::List,
        _ => TypeTag::Unit,
    }
}

fn zero_val(t: &TypeExpr) -> Val {
    match t {
        TypeExpr::Int => Val::Int(0),
        TypeExpr::Bool => Val::Bool(false),
        TypeExpr::Str => Val::Str(String::new()),
        TypeExpr::Float => Val::Float(0.0),
        TypeExpr::Chan(_) => Val::NilChan,
        _ => Val::Unit,
    }
}
