//! Recursive-descent parser for mini-Go.

use std::fmt;

use crate::ast::*;
use crate::token::{lex, Spanned, Tok};

/// A parse diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Message.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for Diag {}

/// Parses a mini-Go source file.
///
/// # Errors
///
/// Returns all diagnostics accumulated during lexing/parsing.
pub fn parse_file(src: &str, path: &str) -> Result<File, Vec<Diag>> {
    let toks = lex(src).map_err(|e| {
        vec![Diag {
            msg: e.msg,
            line: e.line,
        }]
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        errors: Vec::new(),
    };
    let file = p.file(path);
    if p.errors.is_empty() {
        Ok(file)
    } else {
        Err(p.errors)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    errors: Vec<Diag>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    fn peek_at(&self, n: usize) -> &Tok {
        &self.toks[(self.pos + n).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].tok.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == want {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: Tok) {
        if !self.eat(&want) {
            let msg = format!("expected `{want}`, found `{}`", self.peek());
            self.err(msg);
            // do not consume; caller-level sync handles recovery
        }
    }

    fn err(&mut self, msg: String) {
        let line = self.line();
        self.errors.push(Diag { msg, line });
    }

    fn ident(&mut self) -> String {
        match self.bump() {
            Tok::Ident(s) => s,
            other => {
                self.err(format!("expected identifier, found `{other}`"));
                "<error>".into()
            }
        }
    }

    fn skip_semis(&mut self) {
        while self.eat(&Tok::Semi) {}
    }

    /// Skips tokens until a top-level sync point.
    fn sync_top(&mut self) {
        let mut depth = 0i32;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::LBrace => {
                    depth += 1;
                    self.bump();
                }
                Tok::RBrace => {
                    self.bump();
                    depth -= 1;
                    if depth <= 0 {
                        return;
                    }
                }
                Tok::Func if depth == 0 => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // -- file ---------------------------------------------------------------

    fn file(&mut self, path: &str) -> File {
        self.skip_semis();
        self.expect(Tok::Package);
        let package = self.ident();
        self.skip_semis();
        let mut funcs = Vec::new();
        loop {
            self.skip_semis();
            match self.peek() {
                Tok::Eof => break,
                Tok::Import => {
                    self.bump();
                    self.skip_import();
                }
                Tok::Func => {
                    if let Some(f) = self.func_decl() {
                        funcs.push(f);
                    }
                }
                other => {
                    let msg = format!("unexpected token at top level: `{other}`");
                    self.err(msg);
                    self.sync_top();
                }
            }
        }
        File {
            package,
            path: path.to_string(),
            funcs,
        }
    }

    fn skip_import(&mut self) {
        if self.eat(&Tok::LParen) {
            while !matches!(self.peek(), Tok::RParen | Tok::Eof) {
                self.bump();
            }
            self.expect(Tok::RParen);
        } else {
            // single import: a string, possibly aliased
            if matches!(self.peek(), Tok::Ident(_)) {
                self.bump();
            }
            if matches!(self.peek(), Tok::Str(_)) {
                self.bump();
            }
        }
    }

    fn func_decl(&mut self) -> Option<FuncDecl> {
        let line = self.line();
        self.expect(Tok::Func);
        let name = self.ident();
        self.expect(Tok::LParen);
        let mut params = Vec::new();
        while !matches!(self.peek(), Tok::RParen | Tok::Eof) {
            let pname = self.ident();
            let ty = self.type_expr();
            params.push(Param { name: pname, ty });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen);
        let ret = if matches!(self.peek(), Tok::LBrace) {
            None
        } else {
            Some(self.type_expr())
        };
        let body = self.block();
        Some(FuncDecl {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    fn type_expr(&mut self) -> TypeExpr {
        match self.peek().clone() {
            Tok::Chan => {
                self.bump();
                TypeExpr::Chan(Box::new(self.type_expr()))
            }
            Tok::Star => {
                self.bump();
                let name = self.dotted_name();
                TypeExpr::Named(format!("*{name}"))
            }
            Tok::LBracket => {
                self.bump();
                self.expect(Tok::RBracket);
                TypeExpr::List(Box::new(self.type_expr()))
            }
            Tok::Interface => {
                self.bump();
                self.expect(Tok::LBrace);
                self.expect(Tok::RBrace);
                TypeExpr::Any
            }
            Tok::LParen => {
                // multi-value return `(T, error)`: keep the first type
                self.bump();
                let t = self.type_expr();
                while !matches!(self.peek(), Tok::RParen | Tok::Eof) {
                    self.bump();
                }
                self.expect(Tok::RParen);
                t
            }
            Tok::Ident(_) => {
                let name = self.dotted_name();
                match name.as_str() {
                    "int" | "int64" => TypeExpr::Int,
                    "bool" => TypeExpr::Bool,
                    "string" => TypeExpr::Str,
                    "float64" => TypeExpr::Float,
                    "any" => TypeExpr::Any,
                    "context.Context" => TypeExpr::Ctx,
                    "sync.WaitGroup" => TypeExpr::WaitGroup,
                    "sync.Mutex" => TypeExpr::Mutex,
                    "sync.Cond" => TypeExpr::Cond,
                    other => TypeExpr::Named(other.to_string()),
                }
            }
            other => {
                self.err(format!("expected type, found `{other}`"));
                self.bump();
                TypeExpr::Any
            }
        }
    }

    fn dotted_name(&mut self) -> String {
        let mut s = self.ident();
        while self.peek() == &Tok::Dot {
            self.bump();
            s.push('.');
            s.push_str(&self.ident());
        }
        s
    }

    // -- statements -----------------------------------------------------------

    fn block(&mut self) -> Vec<Stmt> {
        self.expect(Tok::LBrace);
        let stmts = self.stmt_list(&[Tok::RBrace]);
        self.expect(Tok::RBrace);
        stmts
    }

    /// Parses statements until one of `stop` tokens (not consumed).
    fn stmt_list(&mut self, stop: &[Tok]) -> Vec<Stmt> {
        let mut out = Vec::new();
        loop {
            self.skip_semis();
            if stop.contains(self.peek()) || self.peek() == &Tok::Eof {
                return out;
            }
            let before = self.pos;
            if let Some(s) = self.stmt() {
                out.push(s);
            }
            if self.pos == before {
                // no progress: bail out of this block
                self.bump();
            }
        }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Var => {
                self.bump();
                let name = self.ident();
                let ty = self.type_expr();
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr())
                } else {
                    None
                };
                Some(Stmt::VarDecl {
                    name,
                    ty,
                    init,
                    line,
                })
            }
            Tok::If => Some(self.if_stmt()),
            Tok::For => Some(self.for_stmt()),
            Tok::Select => Some(self.select_stmt()),
            Tok::Go => Some(self.go_stmt()),
            Tok::Return => {
                self.bump();
                let expr = if matches!(self.peek(), Tok::Semi | Tok::RBrace) {
                    None
                } else {
                    Some(self.expr())
                };
                Some(Stmt::Return { expr, line })
            }
            Tok::Break => {
                self.bump();
                Some(Stmt::Break { line })
            }
            Tok::Continue => {
                self.bump();
                Some(Stmt::Continue { line })
            }
            Tok::Defer => {
                self.bump();
                match self.call_like()? {
                    CallLike::Call(call) => Some(Stmt::Defer { call, line }),
                    CallLike::Wrapper { .. } => {
                        self.err("deferred wrapper spawns are not supported".into());
                        None
                    }
                }
            }
            Tok::Close => {
                self.bump();
                self.expect(Tok::LParen);
                let ch = self.expr();
                self.expect(Tok::RParen);
                Some(Stmt::Close { ch, line })
            }
            Tok::Panic => {
                self.bump();
                self.expect(Tok::LParen);
                let msg = match self.bump() {
                    Tok::Str(s) => s,
                    other => {
                        self.err(format!("panic expects a string literal, found `{other}`"));
                        String::new()
                    }
                };
                self.expect(Tok::RParen);
                Some(Stmt::Panic { msg, line })
            }
            Tok::Arrow => {
                self.bump();
                let src = self.recv_src();
                Some(Stmt::Recv {
                    name: None,
                    ok: None,
                    src,
                    line,
                })
            }
            Tok::Ident(_) => self.ident_stmt(),
            other => {
                self.err(format!("unexpected token in statement position: `{other}`"));
                self.bump();
                None
            }
        }
    }

    /// Statements that start with an identifier.
    fn ident_stmt(&mut self) -> Option<Stmt> {
        let line = self.line();
        match (self.peek_at(1).clone(), self.peek_at(2).clone()) {
            // x := ...
            (Tok::Define, _) => {
                let name = self.ident();
                self.bump(); // :=
                self.define_rhs(name, line)
            }
            // x = expr
            (Tok::Assign, _) => {
                let name = self.ident();
                self.bump();
                let expr = self.expr();
                Some(Stmt::Assign {
                    name,
                    expr,
                    decl: false,
                    line,
                })
            }
            // x, y := ...
            (Tok::Comma, _) => {
                let first = self.ident();
                self.bump(); // ,
                let second = self.ident();
                self.expect(Tok::Define);
                if self.eat(&Tok::Arrow) {
                    let src = self.recv_src();
                    Some(Stmt::Recv {
                        name: none_if_blank(first),
                        ok: none_if_blank(second),
                        src,
                        line,
                    })
                } else {
                    // ctx, cancel := context.WithTimeout(parent, d)
                    let callee = self.dotted_name();
                    self.expect(Tok::LParen);
                    let args = self.args();
                    self.expect(Tok::RParen);
                    match callee.as_str() {
                        "context.WithTimeout" | "context.WithDeadline" => Some(Stmt::CtxDecl {
                            ctx: first,
                            cancel: second,
                            timeout: args.into_iter().nth(1),
                            line,
                        }),
                        "context.WithCancel" => Some(Stmt::CtxDecl {
                            ctx: first,
                            cancel: second,
                            timeout: None,
                            line,
                        }),
                        other => {
                            // Generic two-value call: keep the first binding.
                            Some(Stmt::Call {
                                ret: none_if_blank(first),
                                call: CallExpr {
                                    target: split_target(other),
                                    args,
                                    line,
                                },
                                line,
                            })
                        }
                    }
                }
            }
            // x <- expr (send to channel-valued identifier)
            (Tok::Arrow, _) => {
                let name = self.ident();
                self.bump(); // <-
                let val = self.expr();
                Some(Stmt::Send {
                    ch: Expr::Ident(name),
                    val,
                    line,
                })
            }
            // f(...) or obj.method(...) / pkg.func(...), possibly a
            // wrapper spawn taking a closure literal.
            (Tok::LParen, _) | (Tok::Dot, _) => match self.call_like()? {
                CallLike::Call(call) => Some(Stmt::Call {
                    ret: None,
                    call,
                    line,
                }),
                CallLike::Wrapper { wrapper, body, .. } => Some(Stmt::Go {
                    call: GoCall::Wrapper { wrapper, body },
                    line,
                }),
            },
            // i++ / i--
            (Tok::Inc, _) | (Tok::Dec, _) => {
                let name = self.ident();
                let op = if self.bump() == Tok::Inc {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                Some(Stmt::Assign {
                    name: name.clone(),
                    expr: Expr::Binary(op, Box::new(Expr::Ident(name)), Box::new(Expr::Int(1))),
                    decl: false,
                    line,
                })
            }
            // chans[i] <- v
            (Tok::LBracket, _) => {
                let e = self.expr();
                if self.eat(&Tok::Arrow) {
                    let val = self.expr();
                    Some(Stmt::Send { ch: e, val, line })
                } else {
                    self.err("expected `<-` after indexed expression".into());
                    None
                }
            }
            (other, _) => {
                self.err(format!("unexpected token after identifier: `{other}`"));
                self.bump();
                None
            }
        }
    }

    /// Right-hand side of `name := ...`.
    fn define_rhs(&mut self, name: String, line: u32) -> Option<Stmt> {
        match self.peek().clone() {
            Tok::Make => {
                self.bump();
                self.expect(Tok::LParen);
                self.expect(Tok::Chan);
                let elem = self.type_expr();
                let cap = if self.eat(&Tok::Comma) {
                    Some(self.expr())
                } else {
                    None
                };
                self.expect(Tok::RParen);
                Some(Stmt::MakeChan {
                    name,
                    elem,
                    cap,
                    line,
                })
            }
            Tok::Arrow => {
                self.bump();
                let src = self.recv_src();
                Some(Stmt::Recv {
                    name: none_if_blank(name),
                    ok: None,
                    src,
                    line,
                })
            }
            Tok::Ident(_)
                if matches!(self.peek_at(1), Tok::LParen)
                    || (matches!(self.peek_at(1), Tok::Dot)
                        && matches!(self.peek_at(3), Tok::LParen)) =>
            {
                match self.call_like()? {
                    CallLike::Call(call) => Some(Stmt::Call {
                        ret: none_if_blank(name),
                        call,
                        line,
                    }),
                    CallLike::Wrapper { .. } => {
                        self.err("wrapper spawns cannot bind a result".into());
                        None
                    }
                }
            }
            _ => {
                let expr = self.expr();
                Some(Stmt::Assign {
                    name,
                    expr,
                    decl: true,
                    line,
                })
            }
        }
    }

    /// Parses `f(args)`, `pkg.f(args)`, `recv.method(args)`, `close(ch)`,
    /// `cancel()`, or a wrapper spawn `pkg.Go(func(){...})`.
    fn call_like(&mut self) -> Option<CallLike> {
        let line = self.line();
        if self.peek() == &Tok::Close {
            self.bump();
            self.expect(Tok::LParen);
            let ch = self.expr();
            self.expect(Tok::RParen);
            return Some(CallLike::Call(CallExpr {
                target: CallTarget::Func("close".into()),
                args: vec![ch],
                line,
            }));
        }
        let name = self.dotted_name();
        self.expect(Tok::LParen);
        // wrapper spawn: single closure literal argument
        if self.peek() == &Tok::Func {
            self.bump();
            self.expect(Tok::LParen);
            self.expect(Tok::RParen);
            let body = self.block();
            self.expect(Tok::RParen);
            return Some(CallLike::Wrapper {
                wrapper: name,
                body,
                line,
            });
        }
        let args = self.args();
        self.expect(Tok::RParen);
        Some(CallLike::Call(CallExpr {
            target: split_target(&name),
            args,
            line,
        }))
    }

    fn args(&mut self) -> Vec<Expr> {
        let mut out = Vec::new();
        while !matches!(self.peek(), Tok::RParen | Tok::Eof) {
            out.push(self.expr());
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        out
    }

    fn recv_src(&mut self) -> RecvSrc {
        // time.After(d) / time.Tick(d) / ctx.Done() / plain expr
        if let Tok::Ident(first) = self.peek().clone() {
            if self.peek_at(1) == &Tok::Dot {
                if let Tok::Ident(second) = self.peek_at(2).clone() {
                    if self.peek_at(3) == &Tok::LParen {
                        self.bump();
                        self.bump();
                        self.bump();
                        self.bump(); // ident . ident (
                        match (first.as_str(), second.as_str()) {
                            ("time", "After") => {
                                let d = self.expr();
                                self.expect(Tok::RParen);
                                return RecvSrc::TimeAfter(d);
                            }
                            ("time", "Tick") => {
                                let d = self.expr();
                                self.expect(Tok::RParen);
                                return RecvSrc::TimeTick(d);
                            }
                            (ctx, "Done") => {
                                self.expect(Tok::RParen);
                                return RecvSrc::CtxDone(ctx.to_string());
                            }
                            (a, b) => {
                                self.err(format!("cannot receive from call {a}.{b}(...)"));
                                return RecvSrc::Chan(Expr::Nil);
                            }
                        }
                    }
                }
            }
        }
        RecvSrc::Chan(self.expr())
    }

    fn if_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.expect(Tok::If);
        let cond = self.expr();
        let then = self.block();
        let els = if self.eat(&Tok::Else) {
            if self.peek() == &Tok::If {
                Some(vec![self.if_stmt()])
            } else {
                Some(self.block())
            }
        } else {
            None
        };
        Stmt::If {
            cond,
            then,
            els,
            line,
        }
    }

    fn for_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.expect(Tok::For);
        // for { ... }
        if self.peek() == &Tok::LBrace {
            let body = self.block();
            return Stmt::For {
                kind: ForKind::Infinite,
                body,
                line,
            };
        }
        // for range ch { ... }
        if self.peek() == &Tok::Range {
            self.bump();
            let ch = self.expr();
            let body = self.block();
            return Stmt::For {
                kind: ForKind::Range { var: None, ch },
                body,
                line,
            };
        }
        // for v := range ch  |  for i := 0; i < n; i++
        if matches!(self.peek(), Tok::Ident(_)) && self.peek_at(1) == &Tok::Define {
            let var = self.ident();
            self.bump(); // :=
            if self.eat(&Tok::Range) {
                let ch = self.expr();
                let body = self.block();
                return Stmt::For {
                    kind: ForKind::Range {
                        var: none_if_blank(var),
                        ch,
                    },
                    body,
                    line,
                };
            }
            // C-style: <var> := 0 ; <var> < n ; <var>++
            let start = self.expr();
            if !matches!(start, Expr::Int(0)) {
                self.err("only `i := 0` is supported as a for-loop initializer".into());
            }
            self.expect(Tok::Semi);
            // condition must be `var < n`
            let cond = self.expr();
            let n = match cond {
                Expr::Binary(BinOp::Lt, lhs, rhs) if matches!(*lhs, Expr::Ident(ref v) if *v == var) => {
                    *rhs
                }
                _ => {
                    self.err("only `i < n` is supported as a for-loop condition".into());
                    Expr::Int(0)
                }
            };
            self.expect(Tok::Semi);
            let post_var = self.ident();
            if post_var != var {
                self.err("for-loop post statement must increment the induction variable".into());
            }
            self.expect(Tok::Inc);
            let body = self.block();
            return Stmt::For {
                kind: ForKind::CStyle { var, n },
                body,
                line,
            };
        }
        // for cond { ... }
        let cond = self.expr();
        let body = self.block();
        Stmt::For {
            kind: ForKind::While(cond),
            body,
            line,
        }
    }

    fn select_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.expect(Tok::Select);
        self.expect(Tok::LBrace);
        let mut cases = Vec::new();
        let mut default = None;
        loop {
            self.skip_semis();
            match self.peek().clone() {
                Tok::RBrace => {
                    self.bump();
                    break;
                }
                Tok::Eof => break,
                Tok::Case => {
                    let cline = self.line();
                    self.bump();
                    let case = self.comm_case(cline);
                    cases.push(case);
                }
                Tok::Default => {
                    self.bump();
                    self.expect(Tok::Colon);
                    default = Some(self.stmt_list(&[Tok::Case, Tok::Default, Tok::RBrace]));
                }
                other => {
                    self.err(format!(
                        "expected `case`/`default` in select, found `{other}`"
                    ));
                    self.bump();
                }
            }
        }
        Stmt::Select {
            cases,
            default,
            line,
        }
    }

    fn comm_case(&mut self, line: u32) -> SelCase {
        // case <-src: | case v := <-src: | case v, ok := <-src: | case ch <- e:
        if self.eat(&Tok::Arrow) {
            let src = self.recv_src();
            self.expect(Tok::Colon);
            let body = self.stmt_list(&[Tok::Case, Tok::Default, Tok::RBrace]);
            return SelCase::Recv {
                name: None,
                ok: None,
                src,
                body,
                line,
            };
        }
        if matches!(self.peek(), Tok::Ident(_)) && self.peek_at(1) == &Tok::Define {
            let name = self.ident();
            self.bump();
            self.expect(Tok::Arrow);
            let src = self.recv_src();
            self.expect(Tok::Colon);
            let body = self.stmt_list(&[Tok::Case, Tok::Default, Tok::RBrace]);
            return SelCase::Recv {
                name: none_if_blank(name),
                ok: None,
                src,
                body,
                line,
            };
        }
        if matches!(self.peek(), Tok::Ident(_)) && self.peek_at(1) == &Tok::Comma {
            let name = self.ident();
            self.bump();
            let ok = self.ident();
            self.expect(Tok::Define);
            self.expect(Tok::Arrow);
            let src = self.recv_src();
            self.expect(Tok::Colon);
            let body = self.stmt_list(&[Tok::Case, Tok::Default, Tok::RBrace]);
            return SelCase::Recv {
                name: none_if_blank(name),
                ok: none_if_blank(ok),
                src,
                body,
                line,
            };
        }
        // send case
        let ch = self.expr();
        self.expect(Tok::Arrow);
        let val = self.expr();
        self.expect(Tok::Colon);
        let body = self.stmt_list(&[Tok::Case, Tok::Default, Tok::RBrace]);
        SelCase::Send {
            ch,
            val,
            body,
            line,
        }
    }

    fn go_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.expect(Tok::Go);
        if self.peek() == &Tok::Func {
            self.bump();
            self.expect(Tok::LParen);
            self.expect(Tok::RParen);
            let body = self.block();
            self.expect(Tok::LParen);
            self.expect(Tok::RParen);
            return Stmt::Go {
                call: GoCall::Closure { body },
                line,
            };
        }
        let func = self.dotted_name();
        self.expect(Tok::LParen);
        let args = self.args();
        self.expect(Tok::RParen);
        Stmt::Go {
            call: GoCall::Named { func, args },
            line,
        }
    }

    // -- expressions ----------------------------------------------------------

    fn expr(&mut self) -> Expr {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_bp: u8) -> Expr {
        let mut lhs = self.unary_expr();
        loop {
            let (op, bp) = match self.peek() {
                Tok::OrOr => (BinOp::Or, 1),
                Tok::AndAnd => (BinOp::And, 2),
                Tok::EqEq => (BinOp::Eq, 3),
                Tok::NotEq => (BinOp::Ne, 3),
                Tok::Lt => (BinOp::Lt, 3),
                Tok::Le => (BinOp::Le, 3),
                Tok::Gt => (BinOp::Gt, 3),
                Tok::Ge => (BinOp::Ge, 3),
                Tok::Plus => (BinOp::Add, 4),
                Tok::Minus => (BinOp::Sub, 4),
                Tok::Star => (BinOp::Mul, 5),
                Tok::Slash => (BinOp::Div, 5),
                Tok::Percent => (BinOp::Mod, 5),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.bin_expr(bp + 1);
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        lhs
    }

    fn unary_expr(&mut self) -> Expr {
        match self.peek() {
            Tok::Not => {
                self.bump();
                Expr::Unary(UnOp::Not, Box::new(self.unary_expr()))
            }
            Tok::Minus => {
                self.bump();
                Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Expr {
        let mut e = self.primary_expr();
        while let Tok::LBracket = self.peek() {
            self.bump();
            let idx = self.expr();
            self.expect(Tok::RBracket);
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        e
    }

    fn primary_expr(&mut self) -> Expr {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Expr::Int(v),
            Tok::Str(s) => Expr::Str(s),
            Tok::True => Expr::Bool(true),
            Tok::False => Expr::Bool(false),
            Tok::Nil => Expr::Nil,
            Tok::Len => {
                self.expect(Tok::LParen);
                let e = self.expr();
                self.expect(Tok::RParen);
                Expr::Len(Box::new(e))
            }
            Tok::Ident(name) => Expr::Ident(name),
            Tok::LParen => {
                let e = self.expr();
                self.expect(Tok::RParen);
                e
            }
            Tok::LBracket => {
                // []T{a, b}
                self.expect(Tok::RBracket);
                let _elem = self.type_expr();
                self.expect(Tok::LBrace);
                let mut items = Vec::new();
                while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
                    items.push(self.expr());
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBrace);
                Expr::ListLit(items)
            }
            other => {
                self.errors.push(Diag {
                    msg: format!("expected expression, found `{other}`"),
                    line,
                });
                Expr::Nil
            }
        }
    }
}

/// Result of parsing a call-shaped statement.
enum CallLike {
    /// An ordinary call.
    Call(CallExpr),
    /// A wrapper spawn: `pkg.Go(func(){...})`.
    Wrapper {
        /// Wrapper callee.
        wrapper: String,
        /// Closure body.
        body: Vec<Stmt>,
        /// Line.
        #[allow(dead_code)]
        line: u32,
    },
}

fn none_if_blank(s: String) -> Option<String> {
    if s == "_" {
        None
    } else {
        Some(s)
    }
}

fn split_target(name: &str) -> CallTarget {
    match name.split_once('.') {
        Some((recv, method)) => CallTarget::Method {
            recv: recv.to_string(),
            name: method.to_string(),
        },
        None => CallTarget::Func(name.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> File {
        match parse_file(src, "test.go") {
            Ok(f) => f,
            Err(diags) => panic!("parse errors: {diags:?}"),
        }
    }

    #[test]
    fn parses_listing_one() {
        let f = parse(
            r#"package transactions

func ComputeCost(err bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	disc := <-ch
	_ = disc
}
"#,
        );
        assert_eq!(f.package, "transactions");
        let func = f.func("ComputeCost").unwrap();
        assert!(matches!(func.body[0], Stmt::MakeChan { .. }));
        assert!(matches!(func.body[1], Stmt::Go { .. }));
        assert!(matches!(func.body[2], Stmt::If { .. }));
        assert!(matches!(func.body[3], Stmt::Recv { .. }));
    }

    #[test]
    fn parses_select_with_ctx_done_and_timeafter() {
        let f = parse(
            r#"package p

func Handler(ctx context.Context) {
	ch := make(chan int)
	select {
	case item := <-ch:
		_ = item
	case <-ctx.Done():
		return
	case <-time.After(100):
		break
	default:
		return
	}
}
"#,
        );
        let func = f.func("Handler").unwrap();
        match &func.body[1] {
            Stmt::Select { cases, default, .. } => {
                assert_eq!(cases.len(), 3);
                assert!(default.is_some());
                assert!(matches!(
                    cases[1],
                    SelCase::Recv {
                        src: RecvSrc::CtxDone(_),
                        ..
                    }
                ));
                assert!(matches!(
                    cases[2],
                    SelCase::Recv {
                        src: RecvSrc::TimeAfter(_),
                        ..
                    }
                ));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_range_and_cstyle_loops() {
        let f = parse(
            r#"package p

func Loops(ch chan int, n int) {
	for v := range ch {
		_ = v
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	for {
		break
	}
	for n > 0 {
		n = n - 1
	}
}
"#,
        );
        let body = &f.func("Loops").unwrap().body;
        assert!(matches!(
            &body[0],
            Stmt::For {
                kind: ForKind::Range { .. },
                ..
            }
        ));
        assert!(matches!(
            &body[1],
            Stmt::For {
                kind: ForKind::CStyle { .. },
                ..
            }
        ));
        assert!(matches!(
            &body[2],
            Stmt::For {
                kind: ForKind::Infinite,
                ..
            }
        ));
        assert!(matches!(
            &body[3],
            Stmt::For {
                kind: ForKind::While(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_sync_primitives_and_defer() {
        let f = parse(
            r#"package p

func W() {
	var wg sync.WaitGroup
	var mu sync.Mutex
	wg.Add(2)
	go func() {
		defer wg.Done()
		mu.Lock()
		mu.Unlock()
	}()
	wg.Wait()
}
"#,
        );
        let body = &f.func("W").unwrap().body;
        assert!(matches!(
            &body[0],
            Stmt::VarDecl {
                ty: TypeExpr::WaitGroup,
                ..
            }
        ));
        assert!(matches!(
            &body[1],
            Stmt::VarDecl {
                ty: TypeExpr::Mutex,
                ..
            }
        ));
        assert!(matches!(
            &body[2],
            Stmt::Call {
                call: CallExpr {
                    target: CallTarget::Method { .. },
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn parses_context_decl_and_cancel() {
        let f = parse(
            r#"package p

func H(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, 100)
	defer cancel()
	<-ctx.Done()
}
"#,
        );
        let body = &f.func("H").unwrap().body;
        assert!(matches!(
            &body[0],
            Stmt::CtxDecl {
                timeout: Some(_),
                ..
            }
        ));
        assert!(matches!(&body[1], Stmt::Defer { .. }));
        assert!(matches!(
            &body[2],
            Stmt::Recv {
                src: RecvSrc::CtxDone(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_named_go_and_args() {
        let f = parse(
            r#"package p

func A(ch chan int) {
	go worker(ch, 3)
}

func worker(ch chan int, n int) {
	ch <- n
}
"#,
        );
        let body = &f.func("A").unwrap().body;
        match &body[0] {
            Stmt::Go {
                call: GoCall::Named { func, args },
                ..
            } => {
                assert_eq!(func, "worker");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected named go, got {other:?}"),
        }
    }

    #[test]
    fn recovers_with_errors_on_bad_input() {
        let err = parse_file("package p\nfunc F() { ??? }", "x.go").unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn expression_precedence() {
        let f =
            parse("package p\nfunc F(a int, b int) {\n\tx := a + b * 2 == a && true\n\t_ = x\n}\n");
        let body = &f.func("F").unwrap().body;
        match &body[0] {
            Stmt::Assign {
                expr: Expr::Binary(BinOp::And, lhs, _),
                ..
            } => {
                assert!(matches!(**lhs, Expr::Binary(BinOp::Eq, _, _)));
            }
            other => panic!("precedence broke: {other:?}"),
        }
    }

    #[test]
    fn blank_identifier_elides_bindings() {
        let f = parse("package p\nfunc F(ch chan int) {\n\t_, ok := <-ch\n\t_ = ok\n}\n");
        let body = &f.func("F").unwrap().body;
        assert!(matches!(
            &body[0],
            Stmt::Recv {
                name: None,
                ok: Some(_),
                ..
            }
        ));
    }
}
