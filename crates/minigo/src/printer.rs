//! Pretty-printer: AST → mini-Go source.
//!
//! The printer is the inverse of the parser up to formatting: for every
//! file in the supported subset, `parse(print(ast))` yields a
//! structurally identical AST. That property is enforced by round-trip
//! tests (including property tests over the corpus generator), and it is
//! what lets tools rewrite programs — e.g. emitting a fixed variant of a
//! leaky function — without a separate code generator.

use std::fmt::Write;

use crate::ast::{
    CallExpr, CallTarget, Expr, File, ForKind, FuncDecl, GoCall, RecvSrc, SelCase, Stmt, TypeExpr,
    UnOp,
};

/// Renders a whole file.
pub fn print_file(file: &File) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "package {}", file.package);
    for f in &file.funcs {
        out.push('\n');
        out.push_str(&print_func(f));
    }
    out
}

/// Renders one function declaration.
pub fn print_func(f: &FuncDecl) -> String {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{} {}", p.name, print_type(&p.ty)))
        .collect();
    let ret = match &f.ret {
        Some(t) => format!(" {}", print_type(t)),
        None => String::new(),
    };
    let mut out = format!("func {}({}){ret} {{\n", f.name, params.join(", "));
    print_block(&f.body, 1, &mut out);
    out.push_str("}\n");
    out
}

/// Renders a type expression.
pub fn print_type(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Int => "int".into(),
        TypeExpr::Bool => "bool".into(),
        TypeExpr::Str => "string".into(),
        TypeExpr::Float => "float64".into(),
        TypeExpr::Chan(e) => format!("chan {}", print_type(e)),
        TypeExpr::Ctx => "context.Context".into(),
        TypeExpr::Any => "interface{}".into(),
        TypeExpr::List(e) => format!("[]{}", print_type(e)),
        TypeExpr::WaitGroup => "sync.WaitGroup".into(),
        TypeExpr::Mutex => "sync.Mutex".into(),
        TypeExpr::Cond => "sync.Cond".into(),
        TypeExpr::Named(n) => n.clone(),
    }
}

/// Renders an expression.
pub fn print_expr(e: &Expr) -> String {
    prec_expr(e, 0)
}

fn bin_prec(op: crate::ast::BinOp) -> u8 {
    use crate::ast::BinOp::*;
    match op {
        Or => 1,
        And => 2,
        Eq | Ne | Lt | Le | Gt | Ge => 3,
        Add | Sub => 4,
        Mul | Div | Mod => 5,
    }
}

fn bin_sym(op: crate::ast::BinOp) -> &'static str {
    use crate::ast::BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Mod => "%",
        Eq => "==",
        Ne => "!=",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        And => "&&",
        Or => "||",
    }
}

fn prec_expr(e: &Expr, min: u8) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Bool(b) => b.to_string(),
        Expr::Nil => "nil".into(),
        Expr::Ident(n) => n.clone(),
        Expr::Unary(UnOp::Not, inner) => format!("!{}", prec_expr(inner, 6)),
        Expr::Unary(UnOp::Neg, inner) => {
            let s = prec_expr(inner, 6);
            // `--x` would lex as the decrement token; parenthesize.
            if s.starts_with('-') {
                format!("-({s})")
            } else {
                format!("-{s}")
            }
        }
        Expr::Binary(op, a, b) => {
            let p = bin_prec(*op);
            let s = format!(
                "{} {} {}",
                prec_expr(a, p),
                bin_sym(*op),
                prec_expr(b, p + 1)
            );
            if p < min {
                format!("({s})")
            } else {
                s
            }
        }
        Expr::Len(inner) => format!("len({})", print_expr(inner)),
        Expr::Index(base, idx) => {
            format!("{}[{}]", prec_expr(base, 6), print_expr(idx))
        }
        Expr::ListLit(items) => {
            let inner: Vec<String> = items.iter().map(print_expr).collect();
            format!("[]int{{{}}}", inner.join(", "))
        }
    }
}

fn recv_src(src: &RecvSrc) -> String {
    match src {
        RecvSrc::Chan(e) => print_expr(e),
        RecvSrc::CtxDone(c) => format!("{c}.Done()"),
        RecvSrc::TimeAfter(d) => format!("time.After({})", print_expr(d)),
        RecvSrc::TimeTick(d) => format!("time.Tick({})", print_expr(d)),
    }
}

fn call(c: &CallExpr) -> String {
    let target = match &c.target {
        CallTarget::Func(f) => f.clone(),
        CallTarget::Method { recv, name } => format!("{recv}.{name}"),
    };
    let args: Vec<String> = c.args.iter().map(print_expr).collect();
    format!("{target}({})", args.join(", "))
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push('\t');
    }
}

fn print_block(stmts: &[Stmt], depth: usize, out: &mut String) {
    for s in stmts {
        print_stmt(s, depth, out);
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match s {
        Stmt::Assign {
            name, expr, decl, ..
        } => {
            let op = if *decl { ":=" } else { "=" };
            let _ = writeln!(out, "{name} {op} {}", print_expr(expr));
        }
        Stmt::MakeChan {
            name, elem, cap, ..
        } => {
            let cap_s = match cap {
                Some(e) => format!(", {}", print_expr(e)),
                None => String::new(),
            };
            let _ = writeln!(out, "{name} := make(chan {}{cap_s})", print_type(elem));
        }
        Stmt::Send { ch, val, .. } => {
            let _ = writeln!(out, "{} <- {}", print_expr(ch), print_expr(val));
        }
        Stmt::Recv { name, ok, src, .. } => match (name, ok) {
            (None, None) => {
                let _ = writeln!(out, "<-{}", recv_src(src));
            }
            (Some(n), None) => {
                let _ = writeln!(out, "{n} := <-{}", recv_src(src));
            }
            (n, o) => {
                let _ = writeln!(
                    out,
                    "{}, {} := <-{}",
                    n.as_deref().unwrap_or("_"),
                    o.as_deref().unwrap_or("_"),
                    recv_src(src)
                );
            }
        },
        Stmt::Close { ch, .. } => {
            let _ = writeln!(out, "close({})", print_expr(ch));
        }
        Stmt::Go { call: go, .. } => match go {
            GoCall::Closure { body } => {
                let _ = writeln!(out, "go func() {{");
                print_block(body, depth + 1, out);
                indent(depth, out);
                out.push_str("}()\n");
            }
            GoCall::Named { func, args } => {
                let args: Vec<String> = args.iter().map(print_expr).collect();
                let _ = writeln!(out, "go {func}({})", args.join(", "));
            }
            GoCall::Wrapper { wrapper, body } => {
                let _ = writeln!(out, "{wrapper}(func() {{");
                print_block(body, depth + 1, out);
                indent(depth, out);
                out.push_str("})\n");
            }
        },
        Stmt::Call { ret, call: c, .. } => {
            match ret {
                Some(r) => {
                    let _ = writeln!(out, "{r} := {}", call(c));
                }
                None => {
                    let _ = writeln!(out, "{}", call(c));
                }
            };
        }
        Stmt::CtxDecl {
            ctx,
            cancel,
            timeout,
            ..
        } => {
            let rhs = match timeout {
                Some(d) => format!("context.WithTimeout(parent, {})", print_expr(d)),
                None => "context.WithCancel(parent)".to_string(),
            };
            let _ = writeln!(out, "{ctx}, {cancel} := {rhs}");
        }
        Stmt::Select { cases, default, .. } => {
            out.push_str("select {\n");
            for case in cases {
                indent(depth, out);
                match case {
                    SelCase::Recv { name, ok, src, .. } => match (name, ok) {
                        (None, None) => {
                            let _ = writeln!(out, "case <-{}:", recv_src(src));
                        }
                        (Some(n), None) => {
                            let _ = writeln!(out, "case {n} := <-{}:", recv_src(src));
                        }
                        (n, o) => {
                            let _ = writeln!(
                                out,
                                "case {}, {} := <-{}:",
                                n.as_deref().unwrap_or("_"),
                                o.as_deref().unwrap_or("_"),
                                recv_src(src)
                            );
                        }
                    },
                    SelCase::Send { ch, val, .. } => {
                        let _ = writeln!(out, "case {} <- {}:", print_expr(ch), print_expr(val));
                    }
                }
                print_block(case.body(), depth + 1, out);
            }
            if let Some(d) = default {
                indent(depth, out);
                out.push_str("default:\n");
                print_block(d, depth + 1, out);
            }
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::If {
            cond, then, els, ..
        } => {
            let _ = writeln!(out, "if {} {{", print_expr(cond));
            print_block(then, depth + 1, out);
            indent(depth, out);
            match els {
                Some(e) => {
                    out.push_str("} else {\n");
                    print_block(e, depth + 1, out);
                    indent(depth, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        Stmt::For { kind, body, .. } => {
            match kind {
                ForKind::Infinite => out.push_str("for {\n"),
                ForKind::While(c) => {
                    let _ = writeln!(out, "for {} {{", print_expr(c));
                }
                ForKind::Range { var, ch } => {
                    let _ = match var {
                        Some(v) => writeln!(out, "for {v} := range {} {{", print_expr(ch)),
                        None => writeln!(out, "for range {} {{", print_expr(ch)),
                    };
                }
                ForKind::CStyle { var, n } => {
                    let _ = writeln!(out, "for {var} := 0; {var} < {}; {var}++ {{", print_expr(n));
                }
            }
            print_block(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        Stmt::Return { expr, .. } => {
            let _ = match expr {
                Some(e) => writeln!(out, "return {}", print_expr(e)),
                None => writeln!(out, "return"),
            };
        }
        Stmt::Break { .. } => out.push_str("break\n"),
        Stmt::Continue { .. } => out.push_str("continue\n"),
        Stmt::Defer { call: c, .. } => {
            let _ = writeln!(out, "defer {}", call(c));
        }
        Stmt::VarDecl { name, ty, init, .. } => {
            let _ = match init {
                Some(e) => writeln!(out, "var {name} {} = {}", print_type(ty), print_expr(e)),
                None => writeln!(out, "var {name} {}", print_type(ty)),
            };
        }
        Stmt::Panic { msg, .. } => {
            let _ = writeln!(out, "panic({msg:?})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    /// Strips location info so ASTs can be compared structurally.
    fn canon(file: &File) -> String {
        // Serialize, then erase line numbers, which legitimately change
        // across reformatting.
        let js = serde_json::to_value(file).expect("ast serializes");
        fn strip(v: &mut serde_json::Value) {
            match v {
                serde_json::Value::Object(m) => {
                    m.remove("line");
                    m.remove("path");
                    for (_, x) in m.iter_mut() {
                        strip(x);
                    }
                }
                serde_json::Value::Array(xs) => {
                    for x in xs {
                        strip(x);
                    }
                }
                _ => {}
            }
        }
        let mut js = js;
        strip(&mut js);
        js.to_string()
    }

    fn roundtrip(src: &str) {
        let a = parse_file(src, "t.go").expect("original parses");
        let printed = print_file(&a);
        let b = parse_file(&printed, "t.go")
            .unwrap_or_else(|e| panic!("printed source fails to parse: {e:?}\n{printed}"));
        assert_eq!(
            canon(&a),
            canon(&b),
            "roundtrip changed the AST:\n{printed}"
        );
    }

    #[test]
    fn roundtrips_listing_one() {
        roundtrip(
            r#"
package transactions

func ComputeCost(err bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	disc := <-ch
	_ = disc
}
"#,
        );
    }

    #[test]
    fn roundtrips_select_and_context() {
        roundtrip(
            r#"
package p

func Handler(parent context.Context, ch chan int) {
	ctx, cancel := context.WithTimeout(parent, 100)
	defer cancel()
	select {
	case v, ok := <-ch:
		_ = v
		_ = ok
	case <-ctx.Done():
		return
	case <-time.After(5):
		break
	default:
		sim.Work(1)
	}
}
"#,
        );
    }

    #[test]
    fn roundtrips_loops_sync_and_wrappers() {
        roundtrip(
            r#"
package p

func W(n int) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var cv sync.Cond
	wg.Add(n)
	for i := 0; i < n; i++ {
		asyncutil.Go(func() {
			defer wg.Done()
			mu.Lock()
			mu.Unlock()
		})
	}
	for n > 0 {
		n = n - 1
	}
	for {
		break
	}
	wg.Wait()
	cv.Signal()
}
"#,
        );
    }

    #[test]
    fn roundtrips_expressions_with_precedence() {
        roundtrip(
            r#"
package p

func E(a int, b int) {
	x := (a + b) * 2
	y := a + b*2
	z := !(a < b) && b >= 0 || a == 1
	w := -a + len([]int{1, 2, 3})
	_ = x
	_ = y
	_ = z
	_ = w
}
"#,
        );
    }

    #[test]
    fn printed_listing_still_leaks_identically() {
        // The printer must preserve behaviour, not just structure.
        let src = r#"
package p

func F(fail bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if fail {
		return
	}
	<-ch
}
"#;
        let ast = parse_file(src, "p/f.go").unwrap();
        let printed = print_file(&ast);
        let prog = crate::compile(&printed, "p/f.go").expect("printed source compiles");
        let mut rt = gosim::Runtime::with_seed(0);
        prog.spawn_func(&mut rt, "p.F", vec![true.into()]).unwrap();
        rt.run_until_blocked(10_000);
        assert_eq!(rt.live_count(), 1);
    }
}
