//! Tokens and the lexer for mini-Go.
//!
//! The lexer follows Go's automatic-semicolon-insertion rule: a newline
//! terminates a statement when the preceding token could end one.

use std::fmt;

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (unescaped content).
    Str(String),
    // keywords
    /// `package`
    Package,
    /// `import`
    Import,
    /// `func`
    Func,
    /// `go`
    Go,
    /// `chan`
    Chan,
    /// `select`
    Select,
    /// `case`
    Case,
    /// `default`
    Default,
    /// `if`
    If,
    /// `else`
    Else,
    /// `for`
    For,
    /// `range`
    Range,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `defer`
    Defer,
    /// `var`
    Var,
    /// `make`
    Make,
    /// `close`
    Close,
    /// `panic`
    Panic,
    /// `len`
    Len,
    /// `nil`
    Nil,
    /// `true`
    True,
    /// `false`
    False,
    /// `struct`
    Struct,
    /// `type`
    Type,
    /// `interface`
    Interface,
    /// `map`
    Map,
    /// `const`
    Const,
    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;` (explicit or auto-inserted)
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `:=`
    Define,
    /// `=`
    Assign,
    /// `<-`
    Arrow,
    /// `++`
    Inc,
    /// `--`
    Dec,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// End of file.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            other => write!(f, "{}", other.symbol()),
        }
    }
}

impl Tok {
    fn symbol(&self) -> &'static str {
        match self {
            Tok::Package => "package",
            Tok::Import => "import",
            Tok::Func => "func",
            Tok::Go => "go",
            Tok::Chan => "chan",
            Tok::Select => "select",
            Tok::Case => "case",
            Tok::Default => "default",
            Tok::If => "if",
            Tok::Else => "else",
            Tok::For => "for",
            Tok::Range => "range",
            Tok::Return => "return",
            Tok::Break => "break",
            Tok::Continue => "continue",
            Tok::Defer => "defer",
            Tok::Var => "var",
            Tok::Make => "make",
            Tok::Close => "close",
            Tok::Panic => "panic",
            Tok::Len => "len",
            Tok::Nil => "nil",
            Tok::True => "true",
            Tok::False => "false",
            Tok::Struct => "struct",
            Tok::Type => "type",
            Tok::Interface => "interface",
            Tok::Map => "map",
            Tok::Const => "const",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::Dot => ".",
            Tok::Define => ":=",
            Tok::Assign => "=",
            Tok::Arrow => "<-",
            Tok::Inc => "++",
            Tok::Dec => "--",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Not => "!",
            Tok::Amp => "&",
            Tok::Eof => "<eof>",
            Tok::Ident(_) | Tok::Int(_) | Tok::Str(_) => unreachable!(),
        }
    }

    /// Go's ASI rule: does a newline after this token insert a semicolon?
    fn ends_statement(&self) -> bool {
        matches!(
            self,
            Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Str(_)
                | Tok::Nil
                | Tok::True
                | Tok::False
                | Tok::Return
                | Tok::Break
                | Tok::Continue
                | Tok::RParen
                | Tok::RBrace
                | Tok::RBracket
                | Tok::Inc
                | Tok::Dec
        )
    }
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub msg: String,
    /// Line of the offending input.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes mini-Go source.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings/comments or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out: Vec<Spanned> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! push {
        ($tok:expr) => {
            out.push(Spanned { tok: $tok, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                if out.last().map(|t| t.tok.ends_statement()).unwrap_or(false) {
                    push!(Tok::Semi);
                }
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            msg: "unterminated block comment".into(),
                            line: start,
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            msg: "unterminated string".into(),
                            line: start,
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1] as char;
                            s.push(match esc {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => other,
                            });
                            i += 2;
                        }
                        b'\n' => {
                            return Err(LexError {
                                msg: "newline in string".into(),
                                line: start,
                            })
                        }
                        b => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                push!(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| LexError {
                    msg: format!("bad integer {text}"),
                    line,
                })?;
                push!(Tok::Int(v));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "package" => Tok::Package,
                    "import" => Tok::Import,
                    "func" => Tok::Func,
                    "go" => Tok::Go,
                    "chan" => Tok::Chan,
                    "select" => Tok::Select,
                    "case" => Tok::Case,
                    "default" => Tok::Default,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "for" => Tok::For,
                    "range" => Tok::Range,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "defer" => Tok::Defer,
                    "var" => Tok::Var,
                    "make" => Tok::Make,
                    "close" => Tok::Close,
                    "panic" => Tok::Panic,
                    "len" => Tok::Len,
                    "nil" => Tok::Nil,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "struct" => Tok::Struct,
                    "type" => Tok::Type,
                    "interface" => Tok::Interface,
                    "map" => Tok::Map,
                    "const" => Tok::Const,
                    _ => Tok::Ident(word.to_string()),
                };
                push!(tok);
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, adv) = match two {
                    ":=" => (Tok::Define, 2),
                    "<-" => (Tok::Arrow, 2),
                    "++" => (Tok::Inc, 2),
                    "--" => (Tok::Dec, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::NotEq, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => match c {
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ',' => (Tok::Comma, 1),
                        ';' => (Tok::Semi, 1),
                        ':' => (Tok::Colon, 1),
                        '.' => (Tok::Dot, 1),
                        '=' => (Tok::Assign, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '!' => (Tok::Not, 1),
                        '&' => (Tok::Amp, 1),
                        other => {
                            return Err(LexError {
                                msg: format!("unexpected character {other:?}"),
                                line,
                            })
                        }
                    },
                };
                push!(tok);
                i += adv;
            }
        }
    }
    if out.last().map(|t| t.tok.ends_statement()).unwrap_or(false) {
        out.push(Spanned {
            tok: Tok::Semi,
            line,
        });
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_channel_operations() {
        let t = toks("ch <- 1\nv := <-ch");
        assert_eq!(
            t,
            vec![
                Tok::Ident("ch".into()),
                Tok::Arrow,
                Tok::Int(1),
                Tok::Semi,
                Tok::Ident("v".into()),
                Tok::Define,
                Tok::Arrow,
                Tok::Ident("ch".into()),
                Tok::Semi,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn asi_only_after_statement_enders() {
        // `func f() {` — no semicolon after `{`
        let t = toks("func f() {\n}\n");
        assert_eq!(
            t,
            vec![
                Tok::Func,
                Tok::Ident("f".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("x := 1 // trailing\n/* block\ncomment */ y := 2");
        assert!(t.contains(&Tok::Ident("x".into())));
        assert!(t.contains(&Tok::Ident("y".into())));
        assert!(!t.iter().any(|t| matches!(t, Tok::Str(_))));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let spans = lex("a\nb\nc").unwrap();
        let lines: Vec<u32> = spans
            .iter()
            .filter(|s| matches!(s.tok, Tok::Ident(_)))
            .map(|s| s.line)
            .collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn string_escapes() {
        let t = toks(r#"s := "a\nb""#);
        assert!(t.contains(&Tok::Str("a\nb".into())));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("s := \"abc").is_err());
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn keywords_vs_identifiers() {
        let t = toks("gopher go ranger range");
        assert_eq!(
            t,
            vec![
                Tok::Ident("gopher".into()),
                Tok::Go,
                Tok::Ident("ranger".into()),
                Tok::Range,
                Tok::Eof
            ]
        );
    }
}
