//! # minigo — a mini-Go frontend for the goroutine-leak toolchain
//!
//! `minigo` parses a Go-like language covering exactly the concurrency
//! subset studied by *"Unveiling and Vanquishing Goroutine Leaks in
//! Enterprise Microservices"* (CGO 2024): goroutines (`go`, closures, and
//! wrapper spawns), channels (`make`/send/receive/`close`), `select` with
//! `default`, `for range ch`, timers (`time.Sleep/After/Tick`), contexts
//! (`context.WithTimeout/WithCancel`, `ctx.Done()`), `defer`, and the
//! `sync` primitives. Programs lower to the [`gosim`] script IR and run
//! on the simulated runtime.
//!
//! The AST ([`ast`]) is also the input of the baseline static analyzers
//! (`staticlint` crate) and of LeakProf's transient-operation filter.
//!
//! ## Example
//!
//! ```
//! use gosim::Runtime;
//!
//! let src = r#"
//! package transactions
//!
//! func ComputeCost(err bool) {
//!     ch := make(chan int)
//!     go func() {
//!         ch <- 1
//!     }()
//!     if err {
//!         return
//!     }
//!     disc := <-ch
//!     _ = disc
//! }
//! "#;
//!
//! let prog = minigo::compile(src, "transactions/cost.go").expect("compiles");
//! let mut rt = Runtime::with_seed(0);
//! prog.spawn_func(&mut rt, "transactions.ComputeCost", vec![true.into()]);
//! rt.run_until_blocked(10_000);
//! assert_eq!(rt.live_count(), 1); // the sender goroutine leaked
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod printer;
pub mod program;
pub mod token;

pub use lower::{lower_file, lower_files, lower_files_race};
pub use parser::{parse_file, Diag};
pub use printer::{print_expr, print_file, print_func};
pub use program::{FuncRef, Program};

use gosim::script::Prog;

/// Parses and lowers one source file into an executable program.
///
/// # Errors
///
/// Returns accumulated lex/parse/lowering diagnostics.
pub fn compile(src: &str, path: &str) -> Result<Prog, Vec<Diag>> {
    let file = parse_file(src, path)?;
    lower_file(&file)
}

/// Parses and lowers several source files (same or different packages)
/// into one program, enabling cross-package calls.
///
/// # Errors
///
/// Returns accumulated diagnostics across all files.
pub fn compile_many(sources: &[(String, String)]) -> Result<Prog, Vec<Diag>> {
    let mut files = Vec::new();
    let mut errors = Vec::new();
    for (src, path) in sources {
        match parse_file(src, path) {
            Ok(f) => files.push(f),
            Err(mut e) => errors.append(&mut e),
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    lower_files(&files)
}

/// Like [`compile_many`], but with race instrumentation: shared-variable
/// reads and writes emit [`gosim::Effect::Access`] events for the
/// happens-before race detector (`racecheck` crate). Requires
/// [`gosim::Runtime::enable_hb`] on the runtime to collect events.
///
/// # Errors
///
/// Returns accumulated diagnostics across all files.
pub fn compile_many_race(sources: &[(String, String)]) -> Result<Prog, Vec<Diag>> {
    let mut files = Vec::new();
    let mut errors = Vec::new();
    for (src, path) in sources {
        match parse_file(src, path) {
            Ok(f) => files.push(f),
            Err(mut e) => errors.append(&mut e),
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    lower_files_race(&files)
}
