//! Cross-file program index: symbol resolution over a set of parsed files.
//!
//! A [`Program`] owns a collection of [`ast::File`]s (typically every file
//! of one package, or a whole repository slice) and indexes the contained
//! function declarations by `(package, name)`. Static analyses use it to
//! resolve call edges that span files — the capability the per-file
//! extraction in `staticlint::skeleton` deliberately lacks.

use crate::ast::{File, FuncDecl};
use crate::parser::{parse_file, Diag};
use std::collections::HashMap;

/// A resolved reference to a function declaration inside a [`Program`].
#[derive(Clone, Copy, Debug)]
pub struct FuncRef<'a> {
    /// The file the function is declared in.
    pub file: &'a File,
    /// The function declaration itself.
    pub func: &'a FuncDecl,
}

impl<'a> FuncRef<'a> {
    /// Package-qualified name (`pkg.Func`).
    #[must_use]
    pub fn qualified(&self) -> String {
        format!("{}.{}", self.file.package, self.func.name)
    }
}

/// An indexed collection of parsed files with `(package, func)` symbol
/// resolution.
///
/// Duplicate definitions (same package + name in two files) resolve to the
/// first file in insertion order, mirroring [`File::func`]'s first-match
/// behaviour within a single file.
#[derive(Clone, Debug, Default)]
pub struct Program {
    files: Vec<File>,
    /// `(package, func name)` → `(file index, func index)`.
    index: HashMap<(String, String), (usize, usize)>,
}

impl Program {
    /// Builds a program over already-parsed files.
    #[must_use]
    pub fn new(files: Vec<File>) -> Self {
        let mut index = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, func) in file.funcs.iter().enumerate() {
                index
                    .entry((file.package.clone(), func.name.clone()))
                    .or_insert((fi, gi));
            }
        }
        Program { files, index }
    }

    /// Parses `(source, path)` pairs and builds a program.
    ///
    /// # Errors
    ///
    /// Returns accumulated diagnostics across all files.
    pub fn from_sources(sources: &[(String, String)]) -> Result<Self, Vec<Diag>> {
        let mut files = Vec::new();
        let mut errors = Vec::new();
        for (src, path) in sources {
            match parse_file(src, path) {
                Ok(f) => files.push(f),
                Err(mut e) => errors.append(&mut e),
            }
        }
        if !errors.is_empty() {
            return Err(errors);
        }
        Ok(Program::new(files))
    }

    /// The files of the program, in insertion order.
    #[must_use]
    pub fn files(&self) -> &[File] {
        &self.files
    }

    /// Number of indexed functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when the program holds no functions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Resolves `pkg.name` to its declaration, across all files.
    #[must_use]
    pub fn resolve(&self, pkg: &str, name: &str) -> Option<FuncRef<'_>> {
        let (fi, gi) = *self.index.get(&(pkg.to_string(), name.to_string()))?;
        Some(FuncRef {
            file: &self.files[fi],
            func: &self.files[fi].funcs[gi],
        })
    }

    /// Iterates over every function of the program in deterministic
    /// (file, declaration) order.
    pub fn funcs(&self) -> impl Iterator<Item = FuncRef<'_>> {
        self.files
            .iter()
            .flat_map(|file| file.funcs.iter().map(move |func| FuncRef { file, func }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: &str =
        "package p\n\nfunc Main() {\n\tch := make(chan int)\n\tgo Helper(ch)\n\tch <- 1\n}\n";
    const B: &str = "package p\n\nfunc Helper(in chan int) {\n\t<-in\n}\n";

    fn prog() -> Program {
        Program::from_sources(&[
            (A.to_string(), "p/a.go".to_string()),
            (B.to_string(), "p/b.go".to_string()),
        ])
        .expect("parses")
    }

    #[test]
    fn resolves_across_files_within_package() {
        let p = prog();
        let h = p.resolve("p", "Helper").expect("resolved");
        assert_eq!(h.file.path, "p/b.go");
        assert_eq!(h.qualified(), "p.Helper");
        assert!(p.resolve("p", "Missing").is_none());
        assert!(p.resolve("q", "Helper").is_none());
    }

    #[test]
    fn iterates_all_functions_deterministically() {
        let p = prog();
        let names: Vec<String> = p.funcs().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["p.Main".to_string(), "p.Helper".to_string()]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn first_definition_wins_on_duplicates() {
        let dup = "package p\n\nfunc Main() {\n\tx := 1\n\t_ = x\n}\n";
        let p = Program::from_sources(&[
            (A.to_string(), "p/a.go".to_string()),
            (dup.to_string(), "p/dup.go".to_string()),
        ])
        .expect("parses");
        let m = p.resolve("p", "Main").expect("resolved");
        assert_eq!(m.file.path, "p/a.go");
    }
}
