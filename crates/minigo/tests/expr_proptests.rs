//! Property test: random expression trees survive print → parse with
//! structure (and therefore precedence/associativity) intact.

use minigo::ast::{BinOp, Expr, UnOp};
use proptest::prelude::*;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::Int),
        any::<bool>().prop_map(Expr::Bool),
        "[a-z0-9]{0,6}".prop_map(|s| Expr::Ident(format!("x{s}"))),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            inner.clone().prop_map(|e| Expr::Len(Box::new(e))),
            proptest::collection::vec(inner, 0..3).prop_map(Expr::ListLit),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn canon(e: &Expr) -> String {
    // Structural fingerprint ignoring source positions (Expr has none).
    format!("{e:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn printed_expressions_reparse_identically(e in arb_expr()) {
        let printed = minigo::print_expr(&e);
        // Embed in a minimal statement to reuse the file parser.
        let src = format!("package p\n\nfunc F() {{\n\tx := {printed}\n\t_ = x\n}}\n");
        let file = minigo::parse_file(&src, "t.go")
            .unwrap_or_else(|d| panic!("printed expr failed to parse: {d:?}\n{printed}"));
        let f = file.func("F").expect("func F");
        let reparsed = match &f.body[0] {
            minigo::ast::Stmt::Assign { expr, .. } => expr,
            other => panic!("expected assign, got {other:?}"),
        };
        prop_assert_eq!(canon(&e), canon(reparsed), "precedence lost for: {}", printed);
    }
}
