//! End-to-end tests: every leaky listing from the paper, written in
//! mini-Go source, compiled, executed on gosim, and checked for the
//! exact leak (or absence of one in the fixed variant).

use gosim::{GoStatus, Runtime, Val};

fn run_func(src: &str, path: &str, func: &str, args: Vec<Val>) -> Runtime {
    let prog = minigo::compile(src, path).unwrap_or_else(|e| panic!("compile failed: {e:?}"));
    let mut rt = Runtime::with_seed(7);
    prog.spawn_func(&mut rt, func, args)
        .unwrap_or_else(|| panic!("no function {func}"));
    rt.advance(10_000, 1_000_000);
    rt
}

#[test]
fn listing1_compute_cost_leaks_on_error_path() {
    let src = r#"
package transactions

func ComputeCost(err bool) {
	ch := make(chan int)
	go func() {
		sim.Work(5)
		ch <- 1
	}()
	if err {
		return
	}
	disc := <-ch
	_ = disc
}
"#;
    // Error path: the anonymous sender leaks at line 8 (ch <- 1).
    let rt = run_func(
        src,
        "transactions/cost.go",
        "transactions.ComputeCost",
        vec![true.into()],
    );
    assert_eq!(rt.live_count(), 1);
    let profile = rt.goroutine_profile("t");
    let g = &profile.goroutines[0];
    assert_eq!(g.status, GoStatus::ChanSend { nil_chan: false });
    assert_eq!(
        g.blocking_frame().unwrap().loc.to_string(),
        "transactions/cost.go:8"
    );
    assert_eq!(g.name, "transactions.ComputeCost$1");

    // Happy path: no leak.
    let rt2 = run_func(
        src,
        "transactions/cost.go",
        "transactions.ComputeCost",
        vec![false.into()],
    );
    assert_eq!(rt2.live_count(), 0);
}

#[test]
fn listing3_unclosed_range_leaks_all_workers() {
    let src = r#"
package pipeline

func FanOut(workers int, items int) {
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for item := range ch {
				sim.Work(item)
			}
		}()
	}
	for i := 0; i < items; i++ {
		ch <- i
	}
}
"#;
    let rt = run_func(
        src,
        "pipeline/fan.go",
        "pipeline.FanOut",
        vec![4i64.into(), 8i64.into()],
    );
    assert_eq!(rt.live_count(), 4);
    for g in &rt.goroutine_profile("t").goroutines {
        assert_eq!(g.status, GoStatus::ChanReceive { nil_chan: false });
        assert_eq!(
            g.blocking_frame().unwrap().loc.line,
            8,
            "blocked at the range receive"
        );
    }
}

#[test]
fn listing3_fixed_with_close() {
    let src = r#"
package pipeline

func FanOut(workers int, items int) {
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for item := range ch {
				sim.Work(item)
			}
		}()
	}
	for i := 0; i < items; i++ {
		ch <- i
	}
	close(ch)
}
"#;
    let rt = run_func(
        src,
        "pipeline/fan.go",
        "pipeline.FanOut",
        vec![4i64.into(), 8i64.into()],
    );
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn listing4_timer_loop_never_terminates() {
    let src = r#"
package metrics

func statsReporter() {
	go func() {
		for {
			<-time.After(100)
			sim.Work(1)
		}
	}()
}
"#;
    let prog = minigo::compile(src, "metrics/stats.go").unwrap();
    let mut rt = Runtime::with_seed(0);
    prog.spawn_func(&mut rt, "metrics.statsReporter", vec![])
        .unwrap();
    // Run a long virtual window: the goroutine wakes and re-blocks forever.
    rt.advance(10_000, 1_000_000);
    assert_eq!(rt.live_count(), 1, "runaway reporter persists");
    assert!(rt.goroutine_profile("t").goroutines[0]
        .status
        .is_channel_blocked());
}

#[test]
fn listing5_double_send() {
    let src = r#"
package items

func Pair(fail bool) {
	ch := make(chan int)
	go sender(ch, fail)
	item := <-ch
	_ = item
}

func sender(ch chan int, fail bool) {
	if fail {
		ch <- 0
	}
	ch <- 1
}
"#;
    // On the failure path the second send blocks forever.
    let rt = run_func(src, "items/pair.go", "items.Pair", vec![true.into()]);
    assert_eq!(rt.live_count(), 1);
    let g = &rt.goroutine_profile("t").goroutines[0];
    assert_eq!(g.status, GoStatus::ChanSend { nil_chan: false });
    assert_eq!(g.name, "items.sender");
    assert_eq!(g.blocking_frame().unwrap().loc.line, 15);

    let rt2 = run_func(src, "items/pair.go", "items.Pair", vec![false.into()]);
    assert_eq!(rt2.live_count(), 0);
}

#[test]
fn listing6_method_contract_violation() {
    let src = r#"
package worker

func Use(callStop bool) {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		for {
			select {
			case <-ch:
				sim.Work(1)
			case <-done:
				return
			}
		}
	}()
	if callStop {
		close(done)
	}
}
"#;
    let leak = run_func(src, "worker/w.go", "worker.Use", vec![false.into()]);
    assert_eq!(leak.live_count(), 1);
    assert_eq!(
        leak.goroutine_profile("t").goroutines[0].status,
        GoStatus::Select { ncases: 2 }
    );

    let ok = run_func(src, "worker/w.go", "worker.Use", vec![true.into()]);
    assert_eq!(ok.live_count(), 0);
}

#[test]
fn listing7_premature_return() {
    let src = r#"
package h

func F(early bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if early {
		return
	}
	<-ch
}
"#;
    let rt = run_func(src, "h/f.go", "h.F", vec![true.into()]);
    assert_eq!(rt.live_count(), 1);
    // Fix: buffer of one.
    let fixed = r#"
package h

func F(early bool) {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	if early {
		return
	}
	<-ch
}
"#;
    let rt2 = run_func(fixed, "h/f.go", "h.F", vec![true.into()]);
    assert_eq!(rt2.live_count(), 0);
}

#[test]
fn listing8_timeout_leak_with_context() {
    let src = r#"
package h

func Handler(parent context.Context) {
	ctx, cancel := context.WithTimeout(parent, 10)
	defer cancel()
	ch := make(chan int)
	go func() {
		sim.Work(1)
		time.Sleep(100)
		ch <- 1
	}()
	select {
	case item := <-ch:
		_ = item
	case <-ctx.Done():
		return
	}
}
"#;
    let rt = run_func(src, "h/handler.go", "h.Handler", vec![Val::NilChan]);
    assert_eq!(
        rt.live_count(),
        1,
        "producer leaks after the deadline fires"
    );
    let g = &rt.goroutine_profile("t").goroutines[0];
    assert_eq!(g.status, GoStatus::ChanSend { nil_chan: false });
    assert_eq!(g.blocking_frame().unwrap().loc.line, 11);
}

#[test]
fn listing9_ncast_leak_and_fix() {
    let src = r#"
package bcast

func First(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i
		}()
	}
	first := <-ch
	_ = first
}
"#;
    let rt = run_func(src, "bcast/first.go", "bcast.First", vec![6i64.into()]);
    assert_eq!(rt.live_count(), 5, "n-1 senders leak");

    let fixed = r#"
package bcast

func First(n int) {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i
		}()
	}
	first := <-ch
	_ = first
}
"#;
    let rt2 = run_func(fixed, "bcast/first.go", "bcast.First", vec![6i64.into()]);
    assert_eq!(rt2.live_count(), 0, "capacity n fix drains all sends");
}

#[test]
fn wrapper_spawn_behaves_like_go() {
    let src = r#"
package w

func F() {
	ch := make(chan int)
	asyncutil.Go(func() {
		ch <- 1
	})
}
"#;
    let rt = run_func(src, "w/f.go", "w.F", vec![]);
    assert_eq!(
        rt.live_count(),
        1,
        "wrapper-spawned sender leaks like a plain go"
    );
    let g = &rt.goroutine_profile("t").goroutines[0];
    assert_eq!(g.name, "w.F$1");
}

#[test]
fn select_with_default_is_nonblocking() {
    let src = r#"
package s

func F() {
	ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	default:
		sim.Work(1)
	}
}
"#;
    let rt = run_func(src, "s/f.go", "s.F", vec![]);
    assert_eq!(rt.live_count(), 0);
}

#[test]
fn cross_package_calls_via_compile_many() {
    let lib = r#"
package util

func Produce(ch chan int, n int) {
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}
"#;
    let app = r#"
package app

func Main() {
	ch := make(chan int)
	go util.Produce(ch, 3)
	for v := range ch {
		sim.Work(v)
	}
}
"#;
    let prog = minigo::compile_many(&[
        (lib.to_string(), "util/produce.go".to_string()),
        (app.to_string(), "app/main.go".to_string()),
    ])
    .unwrap();
    let mut rt = Runtime::with_seed(0);
    prog.spawn_func(&mut rt, "app.Main", vec![]).unwrap();
    rt.run_until_blocked(100_000);
    assert_eq!(rt.live_count(), 0);
    assert_eq!(rt.stats().msgs_transferred, 3);
}

#[test]
fn nil_channel_declared_var_blocks() {
    let src = r#"
package n

func F() {
	var ch chan int
	go func() {
		ch <- 1
	}()
	<-ch
}
"#;
    let rt = run_func(src, "n/f.go", "n.F", vec![]);
    assert_eq!(rt.live_count(), 2);
    let statuses: Vec<GoStatus> = rt
        .goroutine_profile("t")
        .goroutines
        .iter()
        .map(|g| g.status)
        .collect();
    assert!(statuses.contains(&GoStatus::ChanSend { nil_chan: true }));
    assert!(statuses.contains(&GoStatus::ChanReceive { nil_chan: true }));
}

#[test]
fn waitgroup_source_round_trip() {
    let src = r#"
package wgtest

func F(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			sim.Work(1)
		}()
	}
	wg.Wait()
}
"#;
    let rt = run_func(src, "wgtest/f.go", "wgtest.F", vec![5i64.into()]);
    assert_eq!(rt.live_count(), 0);
}
