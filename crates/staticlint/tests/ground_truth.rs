//! Ground-truth acceptance tests for the interprocedural engine.
//!
//! The corpus's cross-file leak patterns place the blocking operation in
//! a helper file behind a handshake, so every intraprocedural baseline
//! either skips the escaping channel or blocks (and reports) at the
//! guard instead of the true site. These tests pin the headline claim:
//! [`staticlint::Interproc`] localizes all of them at the labelled truth
//! line, each of the three baselines localizes none, and the engine adds
//! zero false positives on a leak-free corpus slice.

use corpus::patterns::{render_benign, render_leaky, BenignPattern, LeakPattern, Rendered};
use corpus::{Corpus, CorpusConfig, KindMix};
use gosim::rng::SplitMix64;
use staticlint::{AbsInt, Analyzer, Interproc, ModelCheck, PathCheck};

const CROSS_FILE: [LeakPattern; 3] = [
    LeakPattern::CrossFileHandoff,
    LeakPattern::CrossFileFanout,
    LeakPattern::CrossFileMissingClose,
];

fn parse_rendered(r: &Rendered) -> Vec<minigo::ast::File> {
    let mut files = vec![minigo::parse_file(&r.source, &r.path).expect("scenario parses")];
    for (path, text) in &r.helpers {
        files.push(minigo::parse_file(text, path).expect("helper parses"));
    }
    files
}

#[test]
fn interproc_localizes_every_cross_file_pattern_at_truth() {
    let mut rng = SplitMix64::new(0xCAFE);
    for pattern in CROSS_FILE {
        let r = render_leaky(pattern, "pkgt", 1, &mut rng);
        assert!(pattern.is_cross_file() && !r.helpers.is_empty());
        let files = parse_rendered(&r);
        let findings = Interproc::new().analyze_files(&files);
        for site in &r.truth {
            assert!(
                findings
                    .iter()
                    .any(|f| f.loc.file.as_ref() == site.file && f.loc.line == site.line),
                "{pattern:?}: interproc missed truth {}:{}; findings: {findings:?}",
                site.file,
                site.line
            );
        }
    }
}

#[test]
fn all_three_baselines_miss_every_cross_file_pattern() {
    let baselines: Vec<(&str, Box<dyn Analyzer>)> = vec![
        ("pathcheck", Box::new(PathCheck::new())),
        ("absint", Box::new(AbsInt::new())),
        ("modelcheck", Box::new(ModelCheck::new())),
    ];
    let mut rng = SplitMix64::new(0xCAFE);
    for pattern in CROSS_FILE {
        let r = render_leaky(pattern, "pkgt", 1, &mut rng);
        let files = parse_rendered(&r);
        for (name, tool) in &baselines {
            let findings = tool.analyze_files(&files);
            for site in &r.truth {
                assert!(
                    !findings
                        .iter()
                        .any(|f| f.loc.file.as_ref() == site.file && f.loc.line == site.line),
                    "{pattern:?}: baseline {name} localized the cross-file truth site \
                     {}:{} — the pattern no longer demonstrates the interprocedural gap",
                    site.file,
                    site.line
                );
            }
        }
    }
}

#[test]
fn interproc_is_silent_on_benign_templates() {
    let mut rng = SplitMix64::new(7);
    for pattern in BenignPattern::all() {
        let r = render_benign(pattern, "pkgb", 2, &mut rng);
        let files = parse_rendered(&r);
        let findings = Interproc::new().analyze_files(&files);
        assert!(
            findings.is_empty(),
            "{pattern:?} is benign but interproc reported: {findings:?}"
        );
    }
}

#[test]
fn interproc_adds_zero_false_positives_on_leak_free_corpus() {
    // A concurrency-heavy, leak-free slice: every report would be a
    // false positive.
    let c = Corpus::generate(CorpusConfig {
        packages: 120,
        leak_rate: 0.0,
        seed: 0x5EED,
        mix: KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    assert!(c.truth.is_empty());
    let tool = Interproc::new();
    let mut scanned = 0usize;
    for pkg in &c.packages {
        let files = pkg.parse();
        let findings = tool.analyze_files(&files);
        assert!(
            findings.is_empty(),
            "package {} is leak-free but interproc reported: {findings:?}",
            pkg.name
        );
        scanned += files.len();
    }
    assert!(scanned > 300, "slice too small to be meaningful: {scanned}");
}
