//! Robustness: the analyzers must never panic on anything the corpus
//! generator can produce, and every finding must point at a real line of
//! a real file. (A static tool that crashes on legal input is undeployable
//! regardless of precision — the paper's CI/CD criterion.)

use corpus::{Corpus, CorpusConfig, KindMix};
use proptest::prelude::*;
use staticlint::{AbsInt, Analyzer, ModelCheck, PathCheck, RangeClose};

fn analyzers() -> Vec<Box<dyn Analyzer>> {
    vec![
        Box::new(PathCheck::new()),
        Box::new(AbsInt::new()),
        Box::new(ModelCheck::new()),
        Box::new(RangeClose::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn analyzers_are_total_and_findings_point_at_real_lines(seed in 0u64..100_000) {
        let repo = Corpus::generate(CorpusConfig {
            packages: 8,
            leak_rate: 0.5,
            seed,
            mix: KindMix::concurrent_heavy(),
            ..CorpusConfig::default()
        });
        for pkg in &repo.packages {
            let files = pkg.parse();
            for a in analyzers() {
                for f in a.analyze_files(&files) {
                    let file = pkg
                        .all_files()
                        .find(|sf| sf.path == *f.loc.file)
                        .unwrap_or_else(|| panic!("{} names unknown file {}", a.name(), f.loc));
                    let nlines = file.text.lines().count() as u32;
                    prop_assert!(
                        f.loc.line >= 1 && f.loc.line <= nlines,
                        "{} finding at {} outside 1..={}",
                        a.name(), f.loc, nlines
                    );
                }
            }
        }
    }
}

/// Hand-written pathological inputs that once upon a time crash parsers
/// and analyzers: empty functions, empty selects, deeply nested control
/// flow, self-recursive spawn chains.
#[test]
fn pathological_inputs_do_not_panic() {
    let cases = [
        "package p\n\nfunc Empty() {\n}\n",
        "package p\n\nfunc S() {\n\tselect {\n\t}\n}\n",
        "package p\n\nfunc Deep(ch chan int) {\n\tif true {\n\t\tif true {\n\t\t\tif true {\n\t\t\t\tfor {\n\t\t\t\t\tselect {\n\t\t\t\t\tcase <-ch:\n\t\t\t\t\t\tbreak\n\t\t\t\t\t}\n\t\t\t\t}\n\t\t\t}\n\t\t}\n\t}\n}\n",
        "package p\n\nfunc Rec() {\n\tgo Rec()\n}\n",
        "package p\n\nfunc Mutual() {\n\tgo Other()\n}\n\nfunc Other() {\n\tgo Mutual()\n}\n",
        "package p\n\nfunc NilOps() {\n\tvar ch chan int\n\tch <- 1\n\t<-ch\n}\n",
        "package p\n\nfunc Loopy(n int) {\n\tch := make(chan int, n)\n\tfor i := 0; i < 0; i++ {\n\t\tch <- i\n\t}\n}\n",
    ];
    for (i, src) in cases.iter().enumerate() {
        let file = minigo::parse_file(src, &format!("pathological{i}.go"))
            .unwrap_or_else(|e| panic!("case {i} should parse: {e:?}"));
        for a in analyzers() {
            let _ = a.analyze_file(&file); // must not panic
        }
    }
}

/// The analyzers agree on the easy calls: a textbook leak is flagged by
/// all bug-finders; textbook-clean code is flagged by none of the
/// path-sensitive ones.
#[test]
fn consensus_on_textbook_cases() {
    let leaky = minigo::parse_file(
        "package p\n\nfunc F() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n}\n",
        "leak.go",
    )
    .unwrap();
    for a in [
        &PathCheck::new() as &dyn Analyzer,
        &AbsInt::new(),
        &ModelCheck::new(),
    ] {
        assert!(
            !a.analyze_file(&leaky).is_empty(),
            "{} misses the textbook leak",
            a.name()
        );
    }

    let clean = minigo::parse_file(
        "package p\n\nfunc F() {\n\tch := make(chan int)\n\tgo func() {\n\t\tch <- 1\n\t}()\n\t<-ch\n}\n",
        "clean.go",
    )
    .unwrap();
    for a in [&PathCheck::new() as &dyn Analyzer, &ModelCheck::new()] {
        assert!(
            a.analyze_file(&clean).is_empty(),
            "{} flags the textbook-clean rendezvous",
            a.name()
        );
    }
}
