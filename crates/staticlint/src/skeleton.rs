//! Concurrency-skeleton extraction.
//!
//! All three baseline analyzers work on the same abstraction of a
//! function: its locally created channels, plus a tree of channel
//! operations, spawns, branches, and loops, with everything unrelated to
//! message passing sliced away. This mirrors how GCatch/Goat scope their
//! analysis to a channel-group's lowest common ancestor function and
//! ignore non-channel operations.
//!
//! Channel identity is by local variable name — the simplified stand-in
//! for an SSA/points-to analysis. Channels received as parameters or
//! captured from elsewhere are classified [`ChanSource::External`]; the
//! analyzers treat them conservatively.

use minigo::ast::{Expr, File, ForKind, FuncDecl, GoCall, RecvSrc, SelCase, Stmt};
use serde::{Deserialize, Serialize};

/// Capacity of a locally created channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cap {
    /// Unbuffered.
    Zero,
    /// Constant buffer.
    Const(u32),
    /// Dynamically sized (`make(chan T, len(items))`); analyzers treat
    /// it as "large enough" to avoid false positives, like the paper's
    /// tools treat unknown capacities.
    Dyn,
}

/// Where a channel variable comes from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChanSource {
    /// `make(chan T, cap)` in this function.
    Local {
        /// Declared capacity.
        cap: Cap,
        /// Line of the `make`.
        line: u32,
    },
    /// Parameter, captured variable, or nil — unknown to this function.
    External,
}

/// A channel referenced by the skeleton.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChanDef {
    /// Variable name (the channel's identity within the function).
    pub name: String,
    /// Origin.
    pub source: ChanSource,
}

/// A channel-operation node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Node {
    /// `ch <- v`.
    Send {
        /// Channel variable (`None` = not a simple local variable).
        ch: Option<String>,
        /// Line.
        line: u32,
    },
    /// `<-ch`.
    Recv {
        /// Channel variable.
        ch: Option<String>,
        /// Line.
        line: u32,
        /// True when receiving from a timer (`time.After`/`time.Tick`),
        /// which can always fire.
        transient: bool,
        /// True when receiving from a context done channel.
        ctx_done: bool,
    },
    /// `close(ch)`.
    Close {
        /// Channel variable.
        ch: Option<String>,
        /// Line.
        line: u32,
    },
    /// `for v := range ch { body }` — repeated receive until close.
    Range {
        /// Channel variable.
        ch: Option<String>,
        /// Line of the range receive.
        line: u32,
        /// Loop body.
        body: Vec<Node>,
    },
    /// `select { arms }`.
    Select {
        /// Arms: operation + body.
        arms: Vec<(SelectOp, Vec<Node>)>,
        /// Whether a `default` arm exists (makes it non-blocking).
        has_default: bool,
        /// Default body.
        default: Vec<Node>,
        /// Line of the `select`.
        line: u32,
    },
    /// `go ...` — a child goroutine.
    Spawn {
        /// The child body.
        body: Vec<Node>,
        /// Line of the spawn.
        line: u32,
        /// True when spawned through a wrapper API; naive analyzers skip
        /// these (the paper's wrapper-blindness).
        via_wrapper: bool,
    },
    /// `if`: alternative branches (else-less ifs get an empty alternative).
    Branch {
        /// The alternatives.
        arms: Vec<Vec<Node>>,
        /// Line.
        line: u32,
    },
    /// A loop.
    Loop {
        /// Body.
        body: Vec<Node>,
        /// Statically known iteration bound (`None` = unknown/infinite).
        bound: Option<u32>,
        /// Whether any path leaves the loop (`break`/`return` inside, or
        /// a loop condition). `for {}` with no escape hatch is a leak
        /// pattern of its own (Section VI-C).
        has_exit: bool,
        /// Line.
        line: u32,
    },
    /// `return` — terminates the goroutine's path.
    Return {
        /// Line.
        line: u32,
    },
    /// `break` out of the innermost loop.
    Break,
    /// `continue`.
    Continue,
    /// A context with a deadline was created for `var`: its done channel
    /// closes by itself (transient).
    CtxTimer {
        /// The context/done variable.
        var: String,
    },
    /// `cancel()` — closes the context's done channel.
    Cancel {
        /// The done-channel variable.
        ch: Option<String>,
        /// Line.
        line: u32,
    },
    /// A named call kept as an unresolved call edge (only emitted when
    /// [`ExtractOptions::keep_calls`] is on). Interprocedural analysis
    /// resolves these against a [`minigo::Program`] and splices the
    /// callee's summary in; the intraprocedural analyzers treat them as
    /// no-ops.
    Call {
        /// Callee name as written (unqualified; resolved within the
        /// caller's package).
        callee: String,
        /// Per-argument channel variable names (`None` = the argument is
        /// not a simple channel-typed identifier).
        args: Vec<Option<String>>,
        /// Line of the call.
        line: u32,
        /// True for `go f(...)` (the callee runs in a child goroutine),
        /// false for a synchronous `f(...)` or `defer f()`.
        via_go: bool,
    },
}

/// A `select` arm operation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SelectOp {
    /// Receive arm.
    Recv {
        /// Channel variable.
        ch: Option<String>,
        /// Timer channels always fire.
        transient: bool,
        /// Context done channels.
        ctx_done: bool,
        /// Line of the arm.
        line: u32,
    },
    /// Send arm.
    Send {
        /// Channel variable.
        ch: Option<String>,
        /// Line of the arm.
        line: u32,
    },
}

/// The concurrency skeleton of one function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Skeleton {
    /// Qualified function name (`pkg.Func`).
    pub func: String,
    /// Source file path.
    pub file: String,
    /// Line of the function declaration.
    pub line: u32,
    /// Channels created locally (by `make`) or known external names.
    pub chans: Vec<ChanDef>,
    /// The operation tree.
    pub body: Vec<Node>,
}

/// Extraction options.
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Follow wrapper spawns (`pkg.Go(func(){...})`). The naive static
    /// baselines leave this off, reproducing the paper's observation
    /// that wrappers blindside static analysis.
    pub follow_wrappers: bool,
    /// Inline named `go f(...)` / `f(...)` callees defined in the same
    /// file (one level, the Gomela-style "statically known call edge").
    pub inline_named_calls: bool,
    /// Keep unresolved named calls as explicit [`Node::Call`] edges
    /// instead of dropping them. The interprocedural engine extracts with
    /// `inline_named_calls: false, keep_calls: true` and resolves the
    /// edges itself against a cross-file program index.
    pub keep_calls: bool,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            follow_wrappers: false,
            inline_named_calls: true,
            keep_calls: false,
        }
    }
}

/// Extracts skeletons for every function of a file.
pub fn extract_file(file: &File, opts: &ExtractOptions) -> Vec<Skeleton> {
    file.funcs
        .iter()
        .map(|f| extract_func(file, f, opts))
        .collect()
}

/// Extracts the skeleton of a single function.
pub fn extract_func(file: &File, f: &FuncDecl, opts: &ExtractOptions) -> Skeleton {
    let mut cx = Extractor {
        file,
        opts,
        chans: Vec::new(),
        depth: 0,
    };
    // Parameters of channel type are external channels.
    for p in &f.params {
        if matches!(
            p.ty,
            minigo::ast::TypeExpr::Chan(_) | minigo::ast::TypeExpr::Ctx
        ) {
            cx.chans.push(ChanDef {
                name: p.name.clone(),
                source: ChanSource::External,
            });
        }
    }
    let body = cx.block(&f.body);
    Skeleton {
        func: format!("{}.{}", file.package, f.name),
        file: file.path.clone(),
        line: f.line,
        chans: cx.chans,
        body,
    }
}

struct Extractor<'a> {
    file: &'a File,
    opts: &'a ExtractOptions,
    chans: Vec<ChanDef>,
    depth: u32,
}

impl Extractor<'_> {
    fn chan_name(e: &Expr) -> Option<String> {
        match e {
            Expr::Ident(n) => Some(n.clone()),
            _ => None,
        }
    }

    fn declare(&mut self, name: &str, source: ChanSource) {
        if !self.chans.iter().any(|c| c.name == name) {
            self.chans.push(ChanDef {
                name: name.to_string(),
                source,
            });
        }
    }

    fn block(&mut self, stmts: &[Stmt]) -> Vec<Node> {
        let mut out = Vec::new();
        for s in stmts {
            self.stmt(s, &mut out);
        }
        out
    }

    fn recv_node(&mut self, src: &RecvSrc, line: u32) -> Node {
        match src {
            RecvSrc::Chan(e) => Node::Recv {
                ch: Self::chan_name(e),
                line,
                transient: false,
                ctx_done: false,
            },
            RecvSrc::CtxDone(ctx) => Node::Recv {
                ch: Some(ctx.clone()),
                line,
                transient: false,
                ctx_done: true,
            },
            RecvSrc::TimeAfter(_) | RecvSrc::TimeTick(_) => Node::Recv {
                ch: None,
                line,
                transient: true,
                ctx_done: false,
            },
        }
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Node>) {
        match s {
            Stmt::MakeChan {
                name, cap, line, ..
            } => {
                let c = match cap {
                    None => Cap::Zero,
                    Some(Expr::Int(n)) => Cap::Const((*n).max(0) as u32),
                    Some(_) => Cap::Dyn,
                };
                self.declare(
                    name,
                    ChanSource::Local {
                        cap: c,
                        line: *line,
                    },
                );
            }
            Stmt::Send { ch, line, .. } => {
                out.push(Node::Send {
                    ch: Self::chan_name(ch),
                    line: *line,
                });
            }
            Stmt::Recv { src, line, .. } => {
                let node = self.recv_node(src, *line);
                out.push(node);
            }
            Stmt::Close { ch, line } => {
                out.push(Node::Close {
                    ch: Self::chan_name(ch),
                    line: *line,
                });
            }
            Stmt::CtxDecl {
                ctx,
                cancel,
                timeout,
                ..
            } => {
                self.declare(
                    ctx,
                    ChanSource::Local {
                        cap: Cap::Zero,
                        line: 0,
                    },
                );
                if cancel != ctx {
                    self.declare(
                        cancel,
                        ChanSource::Local {
                            cap: Cap::Zero,
                            line: 0,
                        },
                    );
                }
                if timeout.is_some() {
                    out.push(Node::CtxTimer { var: ctx.clone() });
                }
            }
            Stmt::Go { call, line } => match call {
                GoCall::Closure { body } => {
                    let b = self.block(body);
                    out.push(Node::Spawn {
                        body: b,
                        line: *line,
                        via_wrapper: false,
                    });
                }
                GoCall::Wrapper { body, .. } => {
                    let b = self.block(body);
                    out.push(Node::Spawn {
                        body: b,
                        line: *line,
                        via_wrapper: true,
                    });
                }
                GoCall::Named { func, args } => {
                    if self.opts.inline_named_calls && self.depth < 4 {
                        if let Some(callee) = self.file.func(func) {
                            self.depth += 1;
                            let b = self.block(&callee.body);
                            self.depth -= 1;
                            out.push(Node::Spawn {
                                body: b,
                                line: *line,
                                via_wrapper: false,
                            });
                            return;
                        }
                    }
                    if self.opts.keep_calls {
                        out.push(Node::Call {
                            callee: func.clone(),
                            args: args.iter().map(Self::chan_name).collect(),
                            line: *line,
                            via_go: true,
                        });
                        return;
                    }
                    // Unknown callee: an opaque spawn.
                    out.push(Node::Spawn {
                        body: Vec::new(),
                        line: *line,
                        via_wrapper: false,
                    });
                }
            },
            Stmt::Call { call, line, .. } => {
                match &call.target {
                    minigo::ast::CallTarget::Func(name) => {
                        if self.opts.inline_named_calls && self.depth < 4 {
                            if let Some(callee) = self.file.func(name) {
                                self.depth += 1;
                                let mut b = self.block(&callee.body);
                                self.depth -= 1;
                                // Inline synchronously: returns inside the
                                // callee must not cut the caller's path.
                                strip_returns(&mut b);
                                out.extend(b);
                                return;
                            }
                        }
                        // `cancel()`-shaped call on a known context chan.
                        if self.chans.iter().any(|c| c.name == *name) {
                            out.push(Node::Cancel {
                                ch: Some(name.clone()),
                                line: *line,
                            });
                        } else if self.opts.keep_calls {
                            out.push(Node::Call {
                                callee: name.clone(),
                                args: call.args.iter().map(Self::chan_name).collect(),
                                line: *line,
                                via_go: false,
                            });
                        }
                    }
                    minigo::ast::CallTarget::Method { .. } => {}
                }
            }
            Stmt::Defer { call, line } => {
                // Model `defer f()` as running at every function exit; the
                // skeleton keeps it in place, which over-approximates
                // "runs eventually" well enough for counting analyses.
                if let minigo::ast::CallTarget::Func(name) = &call.target {
                    match name.as_str() {
                        "close" => {
                            let ch = call.args.first().and_then(Self::chan_name);
                            out.push(Node::Close { ch, line: *line });
                        }
                        f if self.chans.iter().any(|c| c.name == f) => {
                            out.push(Node::Cancel {
                                ch: Some(f.to_string()),
                                line: *line,
                            });
                        }
                        f if self.opts.keep_calls => {
                            // `defer f()` kept in place: an at-exit
                            // over-approximation, like close above.
                            out.push(Node::Call {
                                callee: f.to_string(),
                                args: call.args.iter().map(Self::chan_name).collect(),
                                line: *line,
                                via_go: false,
                            });
                        }
                        _ => {}
                    }
                }
            }
            Stmt::Select {
                cases,
                default,
                line,
            } => {
                let mut arms = Vec::new();
                for c in cases {
                    match c {
                        SelCase::Recv {
                            src,
                            body,
                            line: cline,
                            ..
                        } => {
                            let op = match src {
                                RecvSrc::Chan(e) => SelectOp::Recv {
                                    ch: Self::chan_name(e),
                                    transient: false,
                                    ctx_done: false,
                                    line: *cline,
                                },
                                RecvSrc::CtxDone(ctx) => SelectOp::Recv {
                                    ch: Some(ctx.clone()),
                                    transient: false,
                                    ctx_done: true,
                                    line: *cline,
                                },
                                RecvSrc::TimeAfter(_) | RecvSrc::TimeTick(_) => SelectOp::Recv {
                                    ch: None,
                                    transient: true,
                                    ctx_done: false,
                                    line: *cline,
                                },
                            };
                            arms.push((op, self.block(body)));
                        }
                        SelCase::Send {
                            ch,
                            body,
                            line: cline,
                            ..
                        } => {
                            arms.push((
                                SelectOp::Send {
                                    ch: Self::chan_name(ch),
                                    line: *cline,
                                },
                                self.block(body),
                            ));
                        }
                    }
                }
                let d = default.as_ref().map(|b| self.block(b)).unwrap_or_default();
                out.push(Node::Select {
                    arms,
                    has_default: default.is_some(),
                    default: d,
                    line: *line,
                });
            }
            Stmt::If {
                then, els, line, ..
            } => {
                let mut arms = vec![self.block(then)];
                arms.push(els.as_ref().map(|b| self.block(b)).unwrap_or_default());
                out.push(Node::Branch { arms, line: *line });
            }
            Stmt::For { kind, body, line } => {
                let b = self.block(body);
                let (bound, cond_exit) = match kind {
                    ForKind::Infinite => (None, false),
                    ForKind::While(_) => (None, true),
                    ForKind::Range { ch, .. } => {
                        out.push(Node::Range {
                            ch: Self::chan_name(ch),
                            line: *line,
                            body: b,
                        });
                        return;
                    }
                    ForKind::CStyle { n, .. } => match n {
                        Expr::Int(k) => (Some((*k).max(0) as u32), true),
                        _ => (None, true),
                    },
                };
                let has_exit = cond_exit || contains_escape(&b);
                out.push(Node::Loop {
                    body: b,
                    bound,
                    has_exit,
                    line: *line,
                });
            }
            Stmt::Return { line, .. } => out.push(Node::Return { line: *line }),
            Stmt::Break { .. } => out.push(Node::Break),
            Stmt::Continue { .. } => out.push(Node::Continue),
            Stmt::VarDecl { name, ty, .. } => {
                if matches!(ty, minigo::ast::TypeExpr::Chan(_)) {
                    // `var ch chan T` without make: the nil channel.
                    self.declare(name, ChanSource::External);
                }
            }
            Stmt::Assign { .. } | Stmt::Panic { .. } => {}
        }
    }
}

/// True when a node list contains a `break` or `return` that could leave
/// an enclosing loop (looking through branches and selects, not through
/// nested loops or spawns).
pub fn contains_escape(nodes: &[Node]) -> bool {
    nodes.iter().any(|n| match n {
        Node::Break | Node::Return { .. } => true,
        Node::Branch { arms, .. } => arms.iter().any(|a| contains_escape(a)),
        Node::Select { arms, default, .. } => {
            arms.iter().any(|(_, b)| contains_escape(b)) || contains_escape(default)
        }
        _ => false,
    })
}

pub(crate) fn strip_returns(nodes: &mut Vec<Node>) {
    nodes.retain_mut(|n| match n {
        Node::Return { .. } => false,
        Node::Branch { arms, .. } => {
            for a in arms {
                strip_returns(a);
            }
            true
        }
        Node::Select { arms, default, .. } => {
            for (_, b) in arms {
                strip_returns(b);
            }
            strip_returns(default);
            true
        }
        Node::Loop { body, .. } | Node::Range { body, .. } => {
            strip_returns(body);
            true
        }
        _ => true,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skel(src: &str, func: &str) -> Skeleton {
        let file = minigo::parse_file(src, "t.go").expect("parse");
        let f = file.func(func).expect("function exists");
        extract_func(&file, f, &ExtractOptions::default())
    }

    #[test]
    fn extracts_listing1_shape() {
        let s = skel(
            r#"
package p

func F(err bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	<-ch
}
"#,
            "F",
        );
        assert_eq!(s.chans.len(), 1);
        assert!(matches!(
            s.chans[0].source,
            ChanSource::Local { cap: Cap::Zero, .. }
        ));
        assert!(matches!(
            s.body[0],
            Node::Spawn {
                via_wrapper: false,
                ..
            }
        ));
        assert!(matches!(s.body[1], Node::Branch { .. }));
        assert!(matches!(s.body[2], Node::Recv { .. }));
    }

    #[test]
    fn param_channels_are_external() {
        let s = skel("package p\nfunc F(ch chan int) {\n\tch <- 1\n}\n", "F");
        assert_eq!(s.chans[0].source, ChanSource::External);
    }

    #[test]
    fn wrapper_spawn_is_marked() {
        let s = skel(
            "package p\nfunc F() {\n\tch := make(chan int)\n\tasyncutil.Go(func() {\n\t\tch <- 1\n\t})\n}\n",
            "F",
        );
        assert!(matches!(
            s.body[0],
            Node::Spawn {
                via_wrapper: true,
                ..
            }
        ));
    }

    #[test]
    fn named_go_is_inlined_within_file() {
        let s = skel(
            r#"
package p

func F() {
	ch := make(chan int)
	go producer(ch)
	<-ch
}

func producer(ch chan int) {
	ch <- 1
}
"#,
            "F",
        );
        match &s.body[0] {
            Node::Spawn {
                body,
                via_wrapper: false,
                ..
            } => {
                assert!(matches!(body[0], Node::Send { .. }));
            }
            other => panic!("expected inlined spawn, got {other:?}"),
        }
    }

    #[test]
    fn loop_bounds_and_escape_detection() {
        let s = skel(
            r#"
package p

func F(ch chan int) {
	for i := 0; i < 3; i++ {
		ch <- i
	}
	for {
		<-ch
	}
}
"#,
            "F",
        );
        assert!(matches!(
            s.body[0],
            Node::Loop {
                bound: Some(3),
                has_exit: true,
                ..
            }
        ));
        assert!(matches!(
            s.body[1],
            Node::Loop {
                bound: None,
                has_exit: false,
                ..
            }
        ));
    }

    #[test]
    fn select_arms_classified() {
        let s = skel(
            r#"
package p

func F(ch chan int, ctx context.Context) {
	select {
	case <-ch:
		return
	case <-ctx.Done():
		return
	case <-time.After(5):
		return
	}
}
"#,
            "F",
        );
        match &s.body[0] {
            Node::Select {
                arms,
                has_default: false,
                ..
            } => {
                assert!(matches!(
                    &arms[0].0,
                    SelectOp::Recv {
                        transient: false,
                        ctx_done: false,
                        ..
                    }
                ));
                assert!(matches!(&arms[1].0, SelectOp::Recv { ctx_done: true, .. }));
                assert!(matches!(
                    &arms[2].0,
                    SelectOp::Recv {
                        transient: true,
                        ..
                    }
                ));
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn keep_calls_records_unresolved_edges() {
        let src = r#"
package p

func F() {
	ch := make(chan int)
	go pump(ch, 3)
	drain(ch)
}
"#;
        let file = minigo::parse_file(src, "t.go").expect("parse");
        let f = file.func("F").expect("function exists");
        let opts = ExtractOptions {
            follow_wrappers: true,
            inline_named_calls: false,
            keep_calls: true,
        };
        let s = extract_func(&file, f, &opts);
        match &s.body[0] {
            Node::Call {
                callee,
                args,
                via_go: true,
                ..
            } => {
                assert_eq!(callee, "pump");
                assert_eq!(args, &[Some("ch".to_string()), None]);
            }
            other => panic!("expected go-call edge, got {other:?}"),
        }
        assert!(matches!(&s.body[1], Node::Call { via_go: false, .. }));
    }

    #[test]
    fn dynamic_capacity_is_dyn() {
        let s = skel(
            "package p\nfunc F(items int) {\n\tch := make(chan int, items)\n\tch <- 1\n}\n",
            "F",
        );
        assert!(matches!(
            s.chans[0].source,
            ChanSource::Local { cap: Cap::Dyn, .. }
        ));
    }
}
