//! Shared bounded path-enumeration and counting machinery.
//!
//! This is the decision procedure behind [`crate::pathcheck`], factored
//! out so the interprocedural engine ([`crate::interproc`]) can run the
//! exact same counting analysis over its spliced ("closed") skeletons:
//! enumerate bounded parent/child path combinations, then check whether
//! the CSP pairing arithmetic admits an execution where some channel
//! operation can never complete.
//!
//! Everything here is `pub(crate)`: the public surface of the crate stays
//! the two analyzers, not their plumbing.

use std::collections::BTreeMap;

use crate::findings::FindingKind;
use crate::skeleton::{Cap, ChanDef, ChanSource, Node, SelectOp};

/// "Infinity" for saturating op counts.
pub(crate) const INF: u64 = u64::MAX / 4;
/// Cap on enumerated paths per goroutine.
pub(crate) const MAX_PATHS: usize = 96;

/// Per-channel operation counts along one path, as (lo, hi) bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OpCounts {
    pub(crate) sends_lo: u64,
    pub(crate) sends_hi: u64,
    pub(crate) recvs_lo: u64,
    pub(crate) recvs_hi: u64,
    pub(crate) closes_lo: u64,
    pub(crate) closes_hi: u64,
}

impl OpCounts {
    fn scale(&self, lo_mult: u64, hi_mult: u64) -> OpCounts {
        let m = |v: u64, k: u64| v.saturating_mul(k).min(INF);
        OpCounts {
            sends_lo: m(self.sends_lo, lo_mult),
            sends_hi: m(self.sends_hi, hi_mult),
            recvs_lo: m(self.recvs_lo, lo_mult),
            recvs_hi: m(self.recvs_hi, hi_mult),
            closes_lo: m(self.closes_lo, lo_mult),
            closes_hi: m(self.closes_hi, hi_mult),
        }
    }

    fn add(&mut self, other: &OpCounts) {
        self.sends_lo = (self.sends_lo + other.sends_lo).min(INF);
        self.sends_hi = (self.sends_hi + other.sends_hi).min(INF);
        self.recvs_lo = (self.recvs_lo + other.recvs_lo).min(INF);
        self.recvs_hi = (self.recvs_hi + other.recvs_hi).min(INF);
        self.closes_lo = (self.closes_lo + other.closes_lo).min(INF);
        self.closes_hi = (self.closes_hi + other.closes_hi).min(INF);
    }
}

/// A recorded operation site for reporting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Site {
    Send {
        ch: String,
        line: u32,
    },
    Recv {
        ch: String,
        line: u32,
    },
    Range {
        ch: String,
        line: u32,
    },
    Select {
        line: u32,
        arms: Vec<SelectOp>,
        has_default: bool,
    },
}

/// Summary of one enumerated path of one goroutine.
#[derive(Debug, Clone, Default)]
pub(crate) struct PathSummary {
    pub(crate) counts: BTreeMap<String, OpCounts>,
    pub(crate) sites: Vec<Site>,
    /// Spawn sites executed on this path: (spawn id, lo mult, hi mult).
    pub(crate) spawns: Vec<(usize, u64, u64)>,
}

impl PathSummary {
    fn merge_seq(&mut self, other: &PathSummary) {
        for (ch, c) in &other.counts {
            self.counts.entry(ch.clone()).or_default().add(c);
        }
        self.sites.extend(other.sites.iter().cloned());
        self.spawns.extend(other.spawns.iter().copied());
    }

    fn scaled(&self, lo: u64, hi: u64) -> PathSummary {
        PathSummary {
            counts: self
                .counts
                .iter()
                .map(|(k, v)| (k.clone(), v.scale(lo, hi)))
                .collect(),
            sites: self.sites.clone(),
            spawns: self
                .spawns
                .iter()
                .map(|(id, l, h)| {
                    (
                        *id,
                        l.saturating_mul(lo).min(INF),
                        h.saturating_mul(hi).min(INF),
                    )
                })
                .collect(),
        }
    }
}

/// Everything enumerated for one function.
pub(crate) struct Enumeration {
    pub(crate) root_paths: Vec<PathSummary>,
    /// Child goroutines, indexed by spawn id.
    pub(crate) child_paths: Vec<Vec<PathSummary>>,
}

/// Enumerates the bounded path combinations of a node tree.
pub(crate) fn enumerate(body: &[Node], follow_wrappers: bool) -> Enumeration {
    let mut en = Enumerator {
        follow_wrappers,
        children: Vec::new(),
    };
    let root_paths = en.flat_paths(body);
    Enumeration {
        root_paths,
        child_paths: en.children,
    }
}

struct Enumerator {
    follow_wrappers: bool,
    children: Vec<Vec<PathSummary>>,
}

impl Enumerator {
    /// Enumerates path summaries of a node list, each flagged with
    /// "this path terminated early" (return / endless loop), so that
    /// callers do not extend dead paths.
    fn paths(&mut self, nodes: &[Node]) -> Vec<(PathSummary, bool)> {
        let mut acc: Vec<(PathSummary, bool)> = vec![(PathSummary::default(), false)];
        for node in nodes {
            let alts = self.node_alternatives(node);
            if alts.is_empty() {
                continue;
            }
            let mut next = Vec::with_capacity(acc.len().min(MAX_PATHS));
            'fill: for (base, terminated) in &acc {
                if *terminated {
                    next.push((base.clone(), true));
                    if next.len() >= MAX_PATHS {
                        break 'fill;
                    }
                    continue;
                }
                for (alt, aterm) in &alts {
                    let mut p = base.clone();
                    p.merge_seq(alt);
                    next.push((p, *aterm));
                    if next.len() >= MAX_PATHS {
                        break 'fill;
                    }
                }
            }
            acc = next;
        }
        acc
    }

    /// Enumerates paths and drops the termination flags.
    fn flat_paths(&mut self, nodes: &[Node]) -> Vec<PathSummary> {
        self.paths(nodes).into_iter().map(|(p, _)| p).collect()
    }

    /// Returns the alternative summaries of a single node, each flagged
    /// with "terminates the path".
    fn node_alternatives(&mut self, node: &Node) -> Vec<(PathSummary, bool)> {
        match node {
            Node::Send { ch, line } => {
                let mut p = PathSummary::default();
                if let Some(c) = ch {
                    p.counts.entry(c.clone()).or_default().sends_lo = 1;
                    p.counts.get_mut(c).expect("just inserted").sends_hi = 1;
                    p.sites.push(Site::Send {
                        ch: c.clone(),
                        line: *line,
                    });
                }
                vec![(p, false)]
            }
            Node::Recv {
                ch,
                line,
                transient,
                ctx_done: _,
            } => {
                let mut p = PathSummary::default();
                if *transient {
                    return vec![(p, false)]; // timers always fire
                }
                if let Some(c) = ch {
                    let e = p.counts.entry(c.clone()).or_default();
                    e.recvs_lo = 1;
                    e.recvs_hi = 1;
                    p.sites.push(Site::Recv {
                        ch: c.clone(),
                        line: *line,
                    });
                }
                vec![(p, false)]
            }
            Node::Close { ch, .. } | Node::Cancel { ch, .. } => {
                let mut p = PathSummary::default();
                if let Some(c) = ch {
                    let e = p.counts.entry(c.clone()).or_default();
                    e.closes_lo = 1;
                    e.closes_hi = 1;
                }
                vec![(p, false)]
            }
            Node::CtxTimer { var } => {
                // The runtime will close the done channel at the deadline.
                let mut p = PathSummary::default();
                let e = p.counts.entry(var.clone()).or_default();
                e.closes_lo = 1;
                e.closes_hi = 1;
                vec![(p, false)]
            }
            Node::Range { ch, line, body } => {
                // Receives until close; body repeats 0..inf times.
                let body_paths = self.flat_paths(body);
                let mut out = Vec::new();
                for bp in body_paths.iter().take(4) {
                    let mut p = bp.scaled(0, INF);
                    if let Some(c) = ch {
                        let e = p.counts.entry(c.clone()).or_default();
                        e.recvs_lo = e.recvs_lo.max(1);
                        e.recvs_hi = INF;
                        p.sites.push(Site::Range {
                            ch: c.clone(),
                            line: *line,
                        });
                    }
                    out.push((p, false));
                }
                if out.is_empty() {
                    let mut p = PathSummary::default();
                    if let Some(c) = ch {
                        let e = p.counts.entry(c.clone()).or_default();
                        e.recvs_lo = 1;
                        e.recvs_hi = INF;
                        p.sites.push(Site::Range {
                            ch: c.clone(),
                            line: *line,
                        });
                    }
                    out.push((p, false));
                }
                out
            }
            Node::Select {
                arms,
                has_default,
                default,
                line,
            } => {
                let mut out = Vec::new();
                let arm_ops: Vec<SelectOp> = arms.iter().map(|(op, _)| op.clone()).collect();
                for (op, body) in arms {
                    for bp in self.flat_paths(body).into_iter().take(8) {
                        let mut p = PathSummary::default();
                        match op {
                            SelectOp::Recv {
                                ch: Some(c),
                                transient: false,
                                ..
                            } => {
                                let e = p.counts.entry(c.clone()).or_default();
                                e.recvs_lo = 1;
                                e.recvs_hi = 1;
                            }
                            SelectOp::Send { ch: Some(c), .. } => {
                                let e = p.counts.entry(c.clone()).or_default();
                                e.sends_lo = 1;
                                e.sends_hi = 1;
                            }
                            _ => {}
                        }
                        p.sites.push(Site::Select {
                            line: *line,
                            arms: arm_ops.clone(),
                            has_default: *has_default,
                        });
                        p.merge_seq(&bp);
                        out.push((p, false));
                    }
                }
                if *has_default {
                    for bp in self.flat_paths(default).into_iter().take(4) {
                        let mut p = PathSummary::default();
                        p.sites.push(Site::Select {
                            line: *line,
                            arms: arm_ops.clone(),
                            has_default: true,
                        });
                        p.merge_seq(&bp);
                        out.push((p, false));
                    }
                }
                if out.is_empty() {
                    // select{} — blocks forever.
                    let mut p = PathSummary::default();
                    p.sites.push(Site::Select {
                        line: *line,
                        arms: vec![],
                        has_default: false,
                    });
                    out.push((p, true));
                }
                out
            }
            Node::Spawn {
                body,
                line: _,
                via_wrapper,
            } => {
                if *via_wrapper && !self.follow_wrappers {
                    // Wrapper blindness: the spawn is invisible.
                    return vec![(PathSummary::default(), false)];
                }
                let id = self.children.len();
                self.children.push(Vec::new()); // placeholder (recursion)
                let child = self.flat_paths(body);
                self.children[id] = child;
                let mut p = PathSummary::default();
                p.spawns.push((id, 1, 1));
                vec![(p, false)]
            }
            Node::Branch { arms, .. } => {
                let mut out = Vec::new();
                for a in arms {
                    out.extend(self.paths(a).into_iter().take(MAX_PATHS / 2));
                }
                if out.is_empty() {
                    out.push((PathSummary::default(), false));
                }
                out
            }
            Node::Loop {
                body,
                bound,
                has_exit,
                ..
            } => {
                let body_paths = self.flat_paths(body);
                let mut out = Vec::new();
                match bound {
                    Some(k) => {
                        let k = *k as u64;
                        for bp in body_paths.iter().take(6) {
                            out.push((bp.scaled(k, k), false));
                        }
                        if out.is_empty() {
                            out.push((PathSummary::default(), false));
                        }
                    }
                    None => {
                        // Unknown bound: 0, 1, or "many" iterations.
                        out.push((PathSummary::default(), false));
                        for bp in body_paths.iter().take(4) {
                            out.push((bp.clone(), false));
                            out.push((bp.scaled(0, INF), !*has_exit));
                        }
                    }
                }
                out
            }
            Node::Return { .. } => vec![(PathSummary::default(), true)],
            Node::Break | Node::Continue => vec![(PathSummary::default(), false)],
            // An unresolved call edge contributes nothing; the
            // interprocedural engine splices resolvable ones away before
            // this enumerator ever sees the skeleton.
            Node::Call { .. } => vec![(PathSummary::default(), false)],
        }
    }
}

/// Adversarial totals: for each channel, the worst-case achievable
/// (sends_hi, recvs_lo, closes==0 possible) over a root path and its
/// transitively spawned children.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Worst {
    /// Max achievable sends.
    pub(crate) sends_hi: u64,
    /// Min achievable recvs.
    pub(crate) recvs_lo: u64,
    /// Max achievable recvs.
    pub(crate) recvs_hi: u64,
    /// Min achievable sends.
    pub(crate) sends_lo: u64,
    /// Is there a combination with zero closes?
    pub(crate) no_close_possible: bool,
    /// Is a close guaranteed on every combination?
    pub(crate) close_guaranteed: bool,
}

pub(crate) fn analyze_root_path(
    root: &PathSummary,
    children: &[Vec<PathSummary>],
    chan: &str,
) -> Worst {
    // Gather the root's own counts.
    let base = root.counts.get(chan).copied().unwrap_or_default();
    let mut w = Worst {
        sends_hi: base.sends_hi,
        recvs_lo: base.recvs_lo,
        recvs_hi: base.recvs_hi,
        sends_lo: base.sends_lo,
        no_close_possible: base.closes_hi == 0,
        close_guaranteed: base.closes_lo > 0,
    };
    // Children chosen adversarially and independently per objective —
    // a sound over-approximation of "exists a combination".
    let mut stack: Vec<(usize, u64, u64)> = root.spawns.clone();
    let mut seen_depth = 0;
    while let Some((id, lo_mult, hi_mult)) = stack.pop() {
        seen_depth += 1;
        if seen_depth > 256 {
            break;
        }
        let paths = &children[id];
        if paths.is_empty() {
            continue;
        }
        let get = |p: &PathSummary| p.counts.get(chan).copied().unwrap_or_default();
        let max_sends = paths.iter().map(|p| get(p).sends_hi).max().unwrap_or(0);
        let min_sends = paths.iter().map(|p| get(p).sends_lo).min().unwrap_or(0);
        let max_recvs = paths.iter().map(|p| get(p).recvs_hi).max().unwrap_or(0);
        let min_recvs = paths.iter().map(|p| get(p).recvs_lo).min().unwrap_or(0);
        let can_skip_close = paths.iter().any(|p| get(p).closes_hi == 0);
        let must_close = paths.iter().all(|p| get(p).closes_lo > 0);

        w.sends_hi = (w.sends_hi + max_sends.saturating_mul(hi_mult)).min(INF);
        w.sends_lo = (w.sends_lo + min_sends.saturating_mul(lo_mult)).min(INF);
        w.recvs_hi = (w.recvs_hi + max_recvs.saturating_mul(hi_mult)).min(INF);
        w.recvs_lo = (w.recvs_lo + min_recvs.saturating_mul(lo_mult)).min(INF);
        // If the spawn may not run (lo_mult == 0), a guaranteed close in
        // the child is not guaranteed overall.
        if must_close && lo_mult > 0 {
            w.close_guaranteed = true;
        }
        if !can_skip_close && hi_mult > 0 {
            w.no_close_possible = false;
        }
        // Grandchildren.
        for p in paths {
            for s in &p.spawns {
                stack.push((
                    s.0,
                    s.1.saturating_mul(lo_mult),
                    s.2.saturating_mul(hi_mult),
                ));
            }
        }
    }
    w
}

fn chan_capacity(chans: &[ChanDef], name: &str) -> Option<u64> {
    chans
        .iter()
        .find(|c| c.name == name)
        .and_then(|c| match c.source {
            ChanSource::Local { cap: Cap::Zero, .. } => Some(0),
            ChanSource::Local {
                cap: Cap::Const(n), ..
            } => Some(n as u64),
            // Dynamic capacity: assume "big enough" (avoids FPs, costs FNs).
            ChanSource::Local { cap: Cap::Dyn, .. } => None,
            ChanSource::External => None,
        })
}

fn all_sites<'p>(root: &'p PathSummary, children: &'p [Vec<PathSummary>]) -> Vec<&'p Site> {
    let mut out: Vec<&Site> = root.sites.iter().collect();
    for paths in children {
        for p in paths {
            out.extend(p.sites.iter());
        }
    }
    out
}

/// A tool-agnostic counting verdict: what kind of blockage, at which
/// (possibly virtual) line, with a human-readable explanation.
#[derive(Debug, Clone)]
pub(crate) struct CountFinding {
    pub(crate) kind: FindingKind,
    pub(crate) line: u32,
    pub(crate) message: String,
}

/// Runs the full counting decision procedure over one goroutine tree.
///
/// `pretty` renders channel names in messages (the interprocedural engine
/// uses it to strip its instantiation suffixes). Findings may repeat
/// across enumerated root paths; callers deduplicate by (kind, location).
pub(crate) fn count_findings(
    chans: &[ChanDef],
    body: &[Node],
    follow_wrappers: bool,
    pretty: &dyn Fn(&str) -> String,
) -> Vec<CountFinding> {
    let enumeration = enumerate(body, follow_wrappers);
    let local_chans: Vec<&str> = chans
        .iter()
        .filter(|c| matches!(c.source, ChanSource::Local { .. }))
        .map(|c| c.name.as_str())
        .collect();

    let mut findings = Vec::new();
    for root in &enumeration.root_paths {
        let sites = all_sites(root, &enumeration.child_paths);
        for &ch in &local_chans {
            let Some(cap) = chan_capacity(chans, ch) else {
                continue;
            };
            let w = analyze_root_path(root, &enumeration.child_paths, ch);
            let name = pretty(ch);

            // Blocked send: more sends than receives + buffer.
            if w.sends_hi > w.recvs_lo.saturating_add(cap) && !w.close_guaranteed {
                for site in &sites {
                    if let Site::Send { ch: c, line } = site {
                        if c == ch {
                            findings.push(CountFinding {
                                kind: FindingKind::BlockedSend,
                                line: *line,
                                message: format!(
                                    "send on `{name}` may never find a receiver \
                                     (worst case {} sends vs {} receives, cap {cap})",
                                    w.sends_hi, w.recvs_lo
                                ),
                            });
                        }
                    }
                }
            }

            // Blocked receive: more receives than sends, no close.
            if w.recvs_hi > w.sends_lo && w.no_close_possible {
                for site in &sites {
                    match site {
                        Site::Recv { ch: c, line } if c == ch => {
                            findings.push(CountFinding {
                                kind: FindingKind::BlockedRecv,
                                line: *line,
                                message: format!(
                                    "receive on `{name}` may never find a sender \
                                     and the channel is never closed"
                                ),
                            });
                        }
                        Site::Range { ch: c, line } if c == ch => {
                            findings.push(CountFinding {
                                kind: FindingKind::UnclosedRange,
                                line: *line,
                                message: format!("range over `{name}` which may never be closed"),
                            });
                        }
                        _ => {}
                    }
                }
            }
        }

        // Blocked select: every arm starvable.
        for site in &sites {
            let Site::Select {
                line,
                arms,
                has_default,
            } = site
            else {
                continue;
            };
            if *has_default {
                continue;
            }
            let starved = arms.iter().all(|arm| match arm {
                SelectOp::Recv {
                    transient: true, ..
                } => false,
                SelectOp::Recv { ch: Some(c), .. } => {
                    let Some(_cap) = chan_capacity(chans, c) else {
                        return false;
                    };
                    let w = analyze_root_path(root, &enumeration.child_paths, c);
                    // Arm can starve if nobody may send and nobody
                    // may close.
                    w.sends_hi == 0 && w.no_close_possible
                }
                SelectOp::Recv { ch: None, .. } => false,
                SelectOp::Send { ch: Some(c), .. } => {
                    let Some(cap) = chan_capacity(chans, c) else {
                        return false;
                    };
                    let w = analyze_root_path(root, &enumeration.child_paths, c);
                    w.recvs_hi == 0 && cap == 0
                }
                SelectOp::Send { ch: None, .. } => false,
            });
            if arms.is_empty() || starved {
                findings.push(CountFinding {
                    kind: FindingKind::BlockedSelect,
                    line: *line,
                    message: if arms.is_empty() {
                        "select with no cases blocks forever".to_string()
                    } else {
                        "no select arm can ever become ready".to_string()
                    },
                });
            }
        }
    }
    findings
}
