//! `modelcheck` — a Gomela-style explicit-state model checker.
//!
//! Gomela translates Go functions into Promela models and runs SPIN with
//! a per-model time budget. `modelcheck` does the same thing natively:
//! each function's concurrency skeleton is compiled into a small
//! transition system (one bytecode program per goroutine, loops bounded,
//! branches nondeterministic) and the checker explores *all*
//! interleavings breadth-first up to a state budget. Any reachable state
//! in which no transition is enabled while some goroutine has not
//! terminated is a (bounded) partial deadlock; the blocked instructions
//! are reported.
//!
//! Faithfulness to the original's limitations:
//!
//! * inter-procedural reasoning covers immediately-invoked closures and
//!   same-file named callees only;
//! * wrapper spawns are invisible;
//! * unbounded loops are explored for at most two iterations, so leaks
//!   that need three or more iterations are missed;
//! * models that exceed the state budget are abandoned (the analogue of
//!   the paper's 60-second SPIN timeout), contributing false negatives.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use gosim::Loc;
use minigo::ast::File;

use crate::findings::{Analyzer, Finding, FindingKind};
use crate::skeleton::{extract_file, Cap, ChanSource, ExtractOptions, Node, SelectOp, Skeleton};

/// Model-checker configuration.
#[derive(Debug, Clone)]
pub struct ModelCheckConfig {
    /// Maximum states explored per function model (the "time budget").
    pub state_budget: usize,
    /// Maximum live goroutines per state.
    pub max_goroutines: usize,
    /// Unroll factor for loops of unknown bound.
    pub loop_unroll: u32,
    /// Follow wrapper spawns.
    pub follow_wrappers: bool,
}

impl Default for ModelCheckConfig {
    fn default() -> Self {
        ModelCheckConfig {
            state_budget: 20_000,
            max_goroutines: 8,
            loop_unroll: 2,
            follow_wrappers: false,
        }
    }
}

/// The Gomela-like analyzer.
#[derive(Debug, Clone, Default)]
pub struct ModelCheck {
    /// Configuration.
    pub config: ModelCheckConfig,
}

/// Statistics of the last `analyze_file` call (for the overhead bench).
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelCheckStats {
    /// Total states explored across all function models.
    pub states_explored: usize,
    /// Models abandoned because the state budget was exceeded.
    pub timeouts: usize,
}

impl ModelCheck {
    /// Creates the analyzer with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes a file and also returns exploration statistics.
    pub fn analyze_file_with_stats(&self, file: &File) -> (Vec<Finding>, ModelCheckStats) {
        let opts = ExtractOptions {
            follow_wrappers: self.config.follow_wrappers,
            inline_named_calls: true,
            keep_calls: false,
        };
        let mut findings = Vec::new();
        let mut stats = ModelCheckStats::default();
        for skel in extract_file(file, &opts) {
            let model = Compiler::compile(&skel, &self.config);
            let outcome = explore(&model, &self.config);
            stats.states_explored += outcome.states;
            if outcome.timed_out {
                stats.timeouts += 1;
            }
            for (line, kind) in outcome.stuck_ops {
                findings.push(Finding {
                    tool: "modelcheck",
                    kind,
                    loc: Loc::new(skel.file.clone(), line),
                    func: skel.func.clone(),
                    message: "reachable state with this operation permanently blocked".to_string(),
                });
            }
        }
        let mut seen = BTreeSet::new();
        findings.retain(|f| seen.insert((f.kind, f.loc.clone())));
        (findings, stats)
    }
}

impl Analyzer for ModelCheck {
    fn name(&self) -> &'static str {
        "modelcheck"
    }

    fn analyze_file(&self, file: &File) -> Vec<Finding> {
        self.analyze_file_with_stats(file).0
    }
}

// ---------------------------------------------------------------------------
// Model representation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MArm {
    Send(usize),
    Recv(usize),
    /// Timer arm: always ready.
    Timer,
    /// Arm on an unknown (external/dynamic) channel: treated as always
    /// ready, erring toward false negatives like the original's limited
    /// inter-procedural reasoning.
    Unknown,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum MInstr {
    Send {
        ch: usize,
        line: u32,
    },
    Recv {
        ch: usize,
        line: u32,
    },
    /// Receive that is always ready (timers) or on an unknown channel.
    Nop,
    Close {
        ch: usize,
    },
    Select {
        arms: Vec<(MArm, usize, u32)>,
        default: Option<usize>,
        line: u32,
    },
    /// Nondeterministic jump (branches, loop exits).
    Choice(Vec<usize>),
    Jmp(usize),
    Spawn {
        prog: usize,
    },
    End,
}

#[derive(Debug, Default)]
struct Model {
    /// One program per goroutine shape; program 0 is the root.
    progs: Vec<Vec<MInstr>>,
    /// Channel capacities (usize::MAX = effectively unbounded).
    caps: Vec<usize>,
}

struct Compiler<'a> {
    model: Model,
    chan_ids: HashMap<String, usize>,
    config: &'a ModelCheckConfig,
}

impl<'a> Compiler<'a> {
    fn compile(skel: &Skeleton, config: &'a ModelCheckConfig) -> Model {
        let mut c = Compiler {
            model: Model::default(),
            chan_ids: HashMap::new(),
            config,
        };
        for ch in &skel.chans {
            let cap = match &ch.source {
                ChanSource::Local { cap: Cap::Zero, .. } => 0,
                ChanSource::Local {
                    cap: Cap::Const(n), ..
                } => *n as usize,
                // Dynamic capacity: model as unbounded (never blocks).
                ChanSource::Local { cap: Cap::Dyn, .. } => usize::MAX,
                // Parameter/captured channels: without a program entry
                // point the model has no environment to pair them with,
                // so they behave as unbuffered channels nobody serves —
                // the chief noise source of entry-point-free model
                // checking (the paper's Gomela has the same trait).
                ChanSource::External => 0,
            };
            let id = c.model.caps.len();
            c.model.caps.push(cap);
            c.chan_ids.insert(ch.name.clone(), id);
        }
        c.model.progs.push(Vec::new());
        c.compile_into(0, &skel.body);
        c.emit(0, MInstr::End);
        c.model
    }

    fn chan(&self, name: &Option<String>) -> Option<usize> {
        name.as_ref().and_then(|n| self.chan_ids.get(n).copied())
    }

    fn emit(&mut self, prog: usize, i: MInstr) -> usize {
        self.model.progs[prog].push(i);
        self.model.progs[prog].len() - 1
    }

    fn here(&self, prog: usize) -> usize {
        self.model.progs[prog].len()
    }

    fn compile_into(&mut self, prog: usize, nodes: &[Node]) {
        for n in nodes {
            self.compile_node(prog, n);
        }
    }

    fn compile_node(&mut self, prog: usize, n: &Node) {
        match n {
            Node::Send { ch, line } => {
                match self.chan(ch) {
                    Some(c) => self.emit(prog, MInstr::Send { ch: c, line: *line }),
                    None => self.emit(prog, MInstr::Nop),
                };
            }
            Node::Recv {
                ch,
                line,
                transient,
                ..
            } => {
                if *transient {
                    self.emit(prog, MInstr::Nop);
                } else {
                    match self.chan(ch) {
                        Some(c) => self.emit(prog, MInstr::Recv { ch: c, line: *line }),
                        None => self.emit(prog, MInstr::Nop),
                    };
                }
            }
            Node::Close { ch, .. } | Node::Cancel { ch, .. } => {
                match self.chan(ch) {
                    Some(c) => self.emit(prog, MInstr::Close { ch: c }),
                    None => self.emit(prog, MInstr::Nop),
                };
            }
            Node::CtxTimer { var } => {
                // The deadline: a helper goroutine that closes the done
                // channel at some nondeterministic point.
                if let Some(c) = self.chan_ids.get(var).copied() {
                    let helper = self.model.progs.len();
                    self.model
                        .progs
                        .push(vec![MInstr::Close { ch: c }, MInstr::End]);
                    self.emit(prog, MInstr::Spawn { prog: helper });
                }
            }
            Node::Range { ch, line, body } => {
                // Bounded: up to `loop_unroll` iterations of recv+body,
                // each preceded by a nondeterministic exit (modeling the
                // channel being closed and drained).
                let c = self.chan(ch);
                let mut exit_patches = Vec::new();
                for _ in 0..self.config.loop_unroll {
                    let choice_at = self.emit(prog, MInstr::Choice(vec![]));
                    exit_patches.push(choice_at);
                    match c {
                        Some(cc) => self.emit(
                            prog,
                            MInstr::Recv {
                                ch: cc,
                                line: *line,
                            },
                        ),
                        None => self.emit(prog, MInstr::Nop),
                    };
                    self.compile_into(prog, body);
                    let body_start = choice_at + 1;
                    // patch the choice: either run this iteration or exit
                    self.model.progs[prog][choice_at] =
                        MInstr::Choice(vec![body_start, usize::MAX]);
                }
                let end = self.here(prog);
                for at in exit_patches {
                    if let MInstr::Choice(targets) = &mut self.model.progs[prog][at] {
                        for t in targets.iter_mut() {
                            if *t == usize::MAX {
                                *t = end;
                            }
                        }
                    }
                }
            }
            Node::Select {
                arms,
                has_default,
                default,
                line,
            } => {
                let sel_at = self.emit(prog, MInstr::Nop); // placeholder
                let mut arm_entries = Vec::new();
                let mut end_jumps = Vec::new();
                for (op, body) in arms {
                    let entry = self.here(prog);
                    self.compile_into(prog, body);
                    end_jumps.push(self.emit(prog, MInstr::Jmp(usize::MAX)));
                    let arm = match op {
                        SelectOp::Recv {
                            transient: true, ..
                        } => MArm::Timer,
                        SelectOp::Recv { ch, .. } => {
                            self.chan(ch).map(MArm::Recv).unwrap_or(MArm::Unknown)
                        }
                        SelectOp::Send { ch, .. } => {
                            self.chan(ch).map(MArm::Send).unwrap_or(MArm::Unknown)
                        }
                    };
                    let arm_line = match op {
                        SelectOp::Recv { line, .. } | SelectOp::Send { line, .. } => *line,
                    };
                    arm_entries.push((arm, entry, arm_line));
                }
                let default_entry = if *has_default {
                    let entry = self.here(prog);
                    self.compile_into(prog, default);
                    end_jumps.push(self.emit(prog, MInstr::Jmp(usize::MAX)));
                    Some(entry)
                } else {
                    None
                };
                let end = self.here(prog);
                for j in end_jumps {
                    self.model.progs[prog][j] = MInstr::Jmp(end);
                }
                self.model.progs[prog][sel_at] = MInstr::Select {
                    arms: arm_entries,
                    default: default_entry,
                    line: *line,
                };
            }
            Node::Spawn {
                body, via_wrapper, ..
            } => {
                if *via_wrapper && !self.config.follow_wrappers {
                    return;
                }
                let child = self.model.progs.len();
                self.model.progs.push(Vec::new());
                self.compile_into(child, body);
                self.emit(child, MInstr::End);
                self.emit(prog, MInstr::Spawn { prog: child });
            }
            Node::Branch { arms, .. } => {
                let choice_at = self.emit(prog, MInstr::Choice(vec![]));
                let mut entries = Vec::new();
                let mut jumps = Vec::new();
                for a in arms {
                    entries.push(self.here(prog));
                    self.compile_into(prog, a);
                    jumps.push(self.emit(prog, MInstr::Jmp(usize::MAX)));
                }
                let end = self.here(prog);
                for j in jumps {
                    self.model.progs[prog][j] = MInstr::Jmp(end);
                }
                self.model.progs[prog][choice_at] = MInstr::Choice(entries);
            }
            Node::Loop {
                body,
                bound,
                has_exit,
                ..
            } => {
                let n = bound
                    .unwrap_or(self.config.loop_unroll)
                    .min(self.config.loop_unroll * 2);
                let optional = bound.is_none();
                let mut exit_choices = Vec::new();
                for _ in 0..n.max(1) {
                    if optional {
                        let at = self.emit(prog, MInstr::Choice(vec![]));
                        exit_choices.push(at);
                    }
                    self.compile_into(prog, body);
                }
                // `for {}` with no escape hatch and no blocking body is an
                // endless spin; model as End so it cannot wedge the
                // checker (the linter taxonomy catches the pattern).
                let _ = has_exit;
                let end = self.here(prog);
                for at in exit_choices {
                    let body_start = at + 1;
                    self.model.progs[prog][at] = MInstr::Choice(vec![body_start, end]);
                }
            }
            Node::Return { .. } => {
                self.emit(prog, MInstr::End);
            }
            // `break`/`continue` are approximated by the nondeterministic
            // loop exits above.
            Node::Break | Node::Continue => {}
            // Unresolved call edges (only emitted under `keep_calls`,
            // which the model checker never enables).
            Node::Call { .. } => {
                self.emit(prog, MInstr::Nop);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// State exploration
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ChanState {
    buf: u32,
    closed: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GState {
    prog: usize,
    pc: usize,
    alive: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    gs: Vec<GState>,
    chans: Vec<ChanState>,
}

struct Outcome {
    stuck_ops: BTreeSet<(u32, FindingKind)>,
    states: usize,
    timed_out: bool,
}

fn explore(model: &Model, config: &ModelCheckConfig) -> Outcome {
    let init = State {
        gs: vec![GState {
            prog: 0,
            pc: 0,
            alive: true,
        }],
        chans: model
            .caps
            .iter()
            .map(|_| ChanState {
                buf: 0,
                closed: false,
            })
            .collect(),
    };
    let mut seen: HashSet<State> = HashSet::new();
    let mut queue = VecDeque::new();
    let mut stuck_ops = BTreeSet::new();
    let mut states = 0usize;
    let mut timed_out = false;

    seen.insert(init.clone());
    queue.push_back(init);

    while let Some(st) = queue.pop_front() {
        states += 1;
        if states > config.state_budget {
            timed_out = true;
            break;
        }
        let succs = successors(model, &st, config);
        if succs.is_empty() {
            // Terminal: report every live, unfinished goroutine.
            for g in &st.gs {
                if !g.alive {
                    continue;
                }
                match &model.progs[g.prog][g.pc] {
                    MInstr::End => {}
                    MInstr::Send { line, .. } => {
                        stuck_ops.insert((*line, FindingKind::BlockedSend));
                    }
                    MInstr::Recv { line, .. } => {
                        stuck_ops.insert((*line, FindingKind::BlockedRecv));
                    }
                    MInstr::Select { line, .. } => {
                        stuck_ops.insert((*line, FindingKind::BlockedSelect));
                    }
                    _ => {}
                }
            }
            continue;
        }
        for s in succs {
            if seen.insert(s.clone()) {
                queue.push_back(s);
            }
        }
    }
    Outcome {
        stuck_ops,
        states,
        timed_out,
    }
}

/// Is goroutine `j` ready to *receive* on `ch` right now (plain recv or a
/// select recv arm)?
fn ready_receiver(model: &Model, st: &State, j: usize, ch: usize) -> Option<usize> {
    let g = &st.gs[j];
    if !g.alive {
        return None;
    }
    match &model.progs[g.prog][g.pc] {
        MInstr::Recv { ch: c, .. } if *c == ch => Some(g.pc + 1),
        MInstr::Select { arms, .. } => arms
            .iter()
            .find(|(a, _, _)| matches!(a, MArm::Recv(c) if *c == ch))
            .map(|(_, target, _)| *target),
        _ => None,
    }
}

fn successors(model: &Model, st: &State, config: &ModelCheckConfig) -> Vec<State> {
    let mut out = Vec::new();
    for (i, g) in st.gs.iter().enumerate() {
        if !g.alive {
            continue;
        }
        let instr = &model.progs[g.prog][g.pc];
        match instr {
            MInstr::End => {}
            MInstr::Nop => {
                out.push(advance(st, i, g.pc + 1));
            }
            MInstr::Jmp(t) => out.push(advance(st, i, *t)),
            MInstr::Choice(ts) => {
                for t in ts {
                    out.push(advance(st, i, *t));
                }
            }
            MInstr::Spawn { prog } => {
                let mut s = advance(st, i, g.pc + 1);
                if s.gs.iter().filter(|g| g.alive).count() < config.max_goroutines {
                    s.gs.push(GState {
                        prog: *prog,
                        pc: 0,
                        alive: true,
                    });
                }
                out.push(s);
            }
            MInstr::Close { ch } => {
                let mut s = advance(st, i, g.pc + 1);
                // close of closed channel panics; model as goroutine end.
                if s.chans[*ch].closed {
                    s.gs[i].alive = false;
                } else {
                    s.chans[*ch].closed = true;
                }
                out.push(s);
            }
            MInstr::Send { ch, .. } => {
                push_send_succs(model, st, i, *ch, g.pc + 1, &mut out);
            }
            MInstr::Recv { ch, .. } => {
                push_recv_succs(model, st, i, *ch, g.pc + 1, &mut out);
            }
            MInstr::Select { arms, default, .. } => {
                for (arm, target, _) in arms {
                    match arm {
                        MArm::Timer => out.push(advance(st, i, *target)),
                        MArm::Unknown => out.push(advance(st, i, *target)),
                        MArm::Recv(ch) => push_recv_succs(model, st, i, *ch, *target, &mut out),
                        MArm::Send(ch) => push_send_succs(model, st, i, *ch, *target, &mut out),
                    }
                }
                if let Some(d) = default {
                    out.push(advance(st, i, *d));
                }
            }
        }
    }
    out
}

fn advance(st: &State, i: usize, pc: usize) -> State {
    let mut s = st.clone();
    s.gs[i].pc = pc;
    s
}

fn push_send_succs(
    model: &Model,
    st: &State,
    i: usize,
    ch: usize,
    next_pc: usize,
    out: &mut Vec<State>,
) {
    let c = &st.chans[ch];
    if c.closed {
        // send on closed channel panics: goroutine dies.
        let mut s = st.clone();
        s.gs[i].alive = false;
        out.push(s);
        return;
    }
    let cap = model.caps[ch];
    if (c.buf as usize) < cap {
        let mut s = advance(st, i, next_pc);
        if cap != usize::MAX {
            s.chans[ch].buf += 1;
        }
        out.push(s);
        return;
    }
    // Unbuffered (or full): rendezvous with any ready receiver.
    for j in 0..st.gs.len() {
        if j == i {
            continue;
        }
        if let Some(recv_pc) = ready_receiver(model, st, j, ch) {
            let mut s = advance(st, i, next_pc);
            s.gs[j].pc = recv_pc;
            out.push(s);
        }
    }
}

fn push_recv_succs(
    model: &Model,
    st: &State,
    i: usize,
    ch: usize,
    next_pc: usize,
    out: &mut Vec<State>,
) {
    let c = &st.chans[ch];
    if c.buf > 0 {
        let mut s = advance(st, i, next_pc);
        s.chans[ch].buf -= 1;
        out.push(s);
        return;
    }
    if c.closed {
        out.push(advance(st, i, next_pc));
        return;
    }
    // Rendezvous with a ready unbuffered sender (plain send or select
    // send arm) when the channel has no buffered values.
    if model.caps[ch] == 0 {
        for j in 0..st.gs.len() {
            if j == i || !st.gs[j].alive {
                continue;
            }
            let send_pc = match &model.progs[st.gs[j].prog][st.gs[j].pc] {
                MInstr::Send { ch: cc, .. } if *cc == ch => Some(st.gs[j].pc + 1),
                MInstr::Select { arms, .. } => arms
                    .iter()
                    .find(|(a, _, _)| matches!(a, MArm::Send(cc) if *cc == ch))
                    .map(|(_, t, _)| *t),
                _ => None,
            };
            if let Some(sp) = send_pc {
                let mut s = advance(st, i, next_pc);
                s.gs[j].pc = sp;
                out.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let file = minigo::parse_file(src, "t.go").unwrap();
        ModelCheck::new().analyze_file(&file)
    }

    #[test]
    fn finds_listing1_deadlock() {
        let f = check(
            r#"
package p

func F(err bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	<-ch
}
"#,
        );
        assert!(
            f.iter()
                .any(|x| x.kind == FindingKind::BlockedSend && x.loc.line == 7),
            "{f:?}"
        );
    }

    #[test]
    fn silent_on_correct_rendezvous() {
        let f = check(
            r#"
package p

func F() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	<-ch
}
"#,
        );
        assert!(f.is_empty(), "clean rendezvous must verify: {f:?}");
    }

    #[test]
    fn finds_double_send() {
        let f = check(
            r#"
package p

func F(fail bool) {
	ch := make(chan int)
	go func() {
		if fail {
			ch <- 0
		}
		ch <- 1
	}()
	<-ch
}
"#,
        );
        assert!(
            f.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "{f:?}"
        );
    }

    #[test]
    fn finds_contract_violation_but_not_with_stop() {
        let leaky = check(
            r#"
package p

func Use() {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		for {
			select {
			case <-ch:
				sim.Work(1)
			case <-done:
				return
			}
		}
	}()
}
"#,
        );
        assert!(
            leaky.iter().any(|x| x.kind == FindingKind::BlockedSelect),
            "{leaky:?}"
        );

        let fixed = check(
            r#"
package p

func Use() {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		select {
		case <-ch:
			sim.Work(1)
		case <-done:
			return
		}
	}()
	close(done)
}
"#,
        );
        assert!(
            !fixed.iter().any(|x| x.kind == FindingKind::BlockedSelect),
            "close(done) unblocks the select: {fixed:?}"
        );
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        // A state-space bomb: many goroutines over many channels.
        let mut src = String::from("package p\n\nfunc F() {\n");
        for i in 0..6 {
            src.push_str(&format!("\tc{i} := make(chan int, 1)\n"));
        }
        for i in 0..6 {
            src.push_str(&format!(
                "\tgo func() {{\n\t\tc{i} <- 1\n\t\t<-c{}\n\t}}()\n",
                (i + 1) % 6
            ));
        }
        src.push_str("}\n");
        let file = minigo::parse_file(&src, "t.go").unwrap();
        let mc = ModelCheck {
            config: ModelCheckConfig {
                state_budget: 50,
                ..ModelCheckConfig::default()
            },
        };
        let (_, stats) = mc.analyze_file_with_stats(&file);
        assert!(stats.timeouts >= 1, "tiny budget must time out: {stats:?}");
    }

    #[test]
    fn timer_loops_verify_clean() {
        let f = check(
            r#"
package p

func Loop(ctx context.Context) {
	for {
		select {
		case <-time.Tick(5):
			sim.Work(1)
		case <-ctx.Done():
			return
		}
	}
}
"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn ncast_found_with_small_n() {
        let f = check(
            r#"
package p

func F() {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	go func() {
		ch <- 2
	}()
	<-ch
}
"#,
        );
        assert!(
            f.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "{f:?}"
        );
    }
}
