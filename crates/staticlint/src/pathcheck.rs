//! `pathcheck` — a GCatch-style bounded path-enumeration analyzer.
//!
//! GCatch enumerates bounded execution paths and feeds channel-operation
//! constraints to an SMT solver. `pathcheck` keeps the same architecture
//! with a counting decision procedure instead of SMT: for every
//! enumerated combination of parent/child paths it checks whether the
//! CSP pairing arithmetic admits an execution in which some operation can
//! never complete:
//!
//! * **blocked send**: achievable `sends > recvs + capacity`;
//! * **blocked receive**: achievable `recvs > sends` with no possible
//!   `close`;
//! * **unclosed range**: a range receive with no possible `close`;
//! * **blocked select**: a `select` with no default whose every arm can
//!   be starved.
//!
//! Like the original, the analysis is *unsound and incomplete*: loops
//! are approximated by {0, 1, ∞} iterations, branch correlations across
//! goroutines are ignored (false positives), and channels that escape
//! the function, wrapper spawns (unless configured), and cross-file
//! callees are not tracked (false negatives). This reproduces the
//! precision regime the paper measures in Table III.

use std::collections::{BTreeMap, BTreeSet};

use gosim::Loc;
use minigo::ast::File;

use crate::findings::{Analyzer, Finding, FindingKind};
use crate::skeleton::{extract_file, Cap, ChanSource, ExtractOptions, Node, SelectOp, Skeleton};

/// "Infinity" for saturating op counts.
const INF: u64 = u64::MAX / 4;
/// Cap on enumerated paths per goroutine.
const MAX_PATHS: usize = 96;

/// Configuration for the path checker.
#[derive(Debug, Clone, Default)]
pub struct PathCheckConfig {
    /// Recognize wrapper spawns (off = the paper's naive baseline).
    pub follow_wrappers: bool,
}

/// The GCatch-like analyzer.
#[derive(Debug, Clone, Default)]
pub struct PathCheck {
    /// Configuration.
    pub config: PathCheckConfig,
}

impl PathCheck {
    /// Creates the analyzer with default (wrapper-blind) configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-channel operation counts along one path, as (lo, hi) bounds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct OpCounts {
    sends_lo: u64,
    sends_hi: u64,
    recvs_lo: u64,
    recvs_hi: u64,
    closes_lo: u64,
    closes_hi: u64,
}

impl OpCounts {
    fn scale(&self, lo_mult: u64, hi_mult: u64) -> OpCounts {
        let m = |v: u64, k: u64| v.saturating_mul(k).min(INF);
        OpCounts {
            sends_lo: m(self.sends_lo, lo_mult),
            sends_hi: m(self.sends_hi, hi_mult),
            recvs_lo: m(self.recvs_lo, lo_mult),
            recvs_hi: m(self.recvs_hi, hi_mult),
            closes_lo: m(self.closes_lo, lo_mult),
            closes_hi: m(self.closes_hi, hi_mult),
        }
    }

    fn add(&mut self, other: &OpCounts) {
        self.sends_lo = (self.sends_lo + other.sends_lo).min(INF);
        self.sends_hi = (self.sends_hi + other.sends_hi).min(INF);
        self.recvs_lo = (self.recvs_lo + other.recvs_lo).min(INF);
        self.recvs_hi = (self.recvs_hi + other.recvs_hi).min(INF);
        self.closes_lo = (self.closes_lo + other.closes_lo).min(INF);
        self.closes_hi = (self.closes_hi + other.closes_hi).min(INF);
    }
}

/// A recorded operation site for reporting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Site {
    Send {
        ch: String,
        line: u32,
    },
    Recv {
        ch: String,
        line: u32,
    },
    Range {
        ch: String,
        line: u32,
    },
    Select {
        line: u32,
        arms: Vec<SelectOp>,
        has_default: bool,
    },
}

/// Summary of one enumerated path of one goroutine.
#[derive(Debug, Clone, Default)]
struct PathSummary {
    counts: BTreeMap<String, OpCounts>,
    sites: Vec<Site>,
    /// Spawn sites executed on this path: (spawn id, lo mult, hi mult).
    spawns: Vec<(usize, u64, u64)>,
}

impl PathSummary {
    fn merge_seq(&mut self, other: &PathSummary) {
        for (ch, c) in &other.counts {
            self.counts.entry(ch.clone()).or_default().add(c);
        }
        self.sites.extend(other.sites.iter().cloned());
        self.spawns.extend(other.spawns.iter().copied());
    }

    fn scaled(&self, lo: u64, hi: u64) -> PathSummary {
        PathSummary {
            counts: self
                .counts
                .iter()
                .map(|(k, v)| (k.clone(), v.scale(lo, hi)))
                .collect(),
            sites: self.sites.clone(),
            spawns: self
                .spawns
                .iter()
                .map(|(id, l, h)| {
                    (
                        *id,
                        l.saturating_mul(lo).min(INF),
                        h.saturating_mul(hi).min(INF),
                    )
                })
                .collect(),
        }
    }
}

/// Everything enumerated for one function.
struct Enumeration {
    root_paths: Vec<PathSummary>,
    /// Child goroutines, indexed by spawn id.
    child_paths: Vec<Vec<PathSummary>>,
}

struct Enumerator<'a> {
    config: &'a PathCheckConfig,
    children: Vec<Vec<PathSummary>>,
}

impl Enumerator<'_> {
    /// Enumerates path summaries of a node list, each flagged with
    /// "this path terminated early" (return / endless loop), so that
    /// callers do not extend dead paths.
    fn paths(&mut self, nodes: &[Node]) -> Vec<(PathSummary, bool)> {
        let mut acc: Vec<(PathSummary, bool)> = vec![(PathSummary::default(), false)];
        for node in nodes {
            let alts = self.node_alternatives(node);
            if alts.is_empty() {
                continue;
            }
            let mut next = Vec::with_capacity(acc.len().min(MAX_PATHS));
            'fill: for (base, terminated) in &acc {
                if *terminated {
                    next.push((base.clone(), true));
                    if next.len() >= MAX_PATHS {
                        break 'fill;
                    }
                    continue;
                }
                for (alt, aterm) in &alts {
                    let mut p = base.clone();
                    p.merge_seq(alt);
                    next.push((p, *aterm));
                    if next.len() >= MAX_PATHS {
                        break 'fill;
                    }
                }
            }
            acc = next;
        }
        acc
    }

    /// Enumerates paths and drops the termination flags.
    fn flat_paths(&mut self, nodes: &[Node]) -> Vec<PathSummary> {
        self.paths(nodes).into_iter().map(|(p, _)| p).collect()
    }

    /// Returns the alternative summaries of a single node, each flagged
    /// with "terminates the path".
    fn node_alternatives(&mut self, node: &Node) -> Vec<(PathSummary, bool)> {
        match node {
            Node::Send { ch, line } => {
                let mut p = PathSummary::default();
                if let Some(c) = ch {
                    p.counts.entry(c.clone()).or_default().sends_lo = 1;
                    p.counts.get_mut(c).expect("just inserted").sends_hi = 1;
                    p.sites.push(Site::Send {
                        ch: c.clone(),
                        line: *line,
                    });
                }
                vec![(p, false)]
            }
            Node::Recv {
                ch,
                line,
                transient,
                ctx_done: _,
            } => {
                let mut p = PathSummary::default();
                if *transient {
                    return vec![(p, false)]; // timers always fire
                }
                if let Some(c) = ch {
                    let e = p.counts.entry(c.clone()).or_default();
                    e.recvs_lo = 1;
                    e.recvs_hi = 1;
                    p.sites.push(Site::Recv {
                        ch: c.clone(),
                        line: *line,
                    });
                }
                vec![(p, false)]
            }
            Node::Close { ch, .. } | Node::Cancel { ch, .. } => {
                let mut p = PathSummary::default();
                if let Some(c) = ch {
                    let e = p.counts.entry(c.clone()).or_default();
                    e.closes_lo = 1;
                    e.closes_hi = 1;
                }
                vec![(p, false)]
            }
            Node::CtxTimer { var } => {
                // The runtime will close the done channel at the deadline.
                let mut p = PathSummary::default();
                let e = p.counts.entry(var.clone()).or_default();
                e.closes_lo = 1;
                e.closes_hi = 1;
                vec![(p, false)]
            }
            Node::Range { ch, line, body } => {
                // Receives until close; body repeats 0..inf times.
                let body_paths = self.flat_paths(body);
                let mut out = Vec::new();
                for bp in body_paths.iter().take(4) {
                    let mut p = bp.scaled(0, INF);
                    if let Some(c) = ch {
                        let e = p.counts.entry(c.clone()).or_default();
                        e.recvs_lo = e.recvs_lo.max(1);
                        e.recvs_hi = INF;
                        p.sites.push(Site::Range {
                            ch: c.clone(),
                            line: *line,
                        });
                    }
                    out.push((p, false));
                }
                if out.is_empty() {
                    let mut p = PathSummary::default();
                    if let Some(c) = ch {
                        let e = p.counts.entry(c.clone()).or_default();
                        e.recvs_lo = 1;
                        e.recvs_hi = INF;
                        p.sites.push(Site::Range {
                            ch: c.clone(),
                            line: *line,
                        });
                    }
                    out.push((p, false));
                }
                out
            }
            Node::Select {
                arms,
                has_default,
                default,
                line,
            } => {
                let mut out = Vec::new();
                let arm_ops: Vec<SelectOp> = arms.iter().map(|(op, _)| op.clone()).collect();
                for (op, body) in arms {
                    for bp in self.flat_paths(body).into_iter().take(8) {
                        let mut p = PathSummary::default();
                        match op {
                            SelectOp::Recv {
                                ch: Some(c),
                                transient: false,
                                ..
                            } => {
                                let e = p.counts.entry(c.clone()).or_default();
                                e.recvs_lo = 1;
                                e.recvs_hi = 1;
                            }
                            SelectOp::Send { ch: Some(c), .. } => {
                                let e = p.counts.entry(c.clone()).or_default();
                                e.sends_lo = 1;
                                e.sends_hi = 1;
                            }
                            _ => {}
                        }
                        p.sites.push(Site::Select {
                            line: *line,
                            arms: arm_ops.clone(),
                            has_default: *has_default,
                        });
                        p.merge_seq(&bp);
                        out.push((p, false));
                    }
                }
                if *has_default {
                    for bp in self.flat_paths(default).into_iter().take(4) {
                        let mut p = PathSummary::default();
                        p.sites.push(Site::Select {
                            line: *line,
                            arms: arm_ops.clone(),
                            has_default: true,
                        });
                        p.merge_seq(&bp);
                        out.push((p, false));
                    }
                }
                if out.is_empty() {
                    // select{} — blocks forever.
                    let mut p = PathSummary::default();
                    p.sites.push(Site::Select {
                        line: *line,
                        arms: vec![],
                        has_default: false,
                    });
                    out.push((p, true));
                }
                out
            }
            Node::Spawn {
                body,
                line: _,
                via_wrapper,
            } => {
                if *via_wrapper && !self.config.follow_wrappers {
                    // Wrapper blindness: the spawn is invisible.
                    return vec![(PathSummary::default(), false)];
                }
                let id = self.children.len();
                self.children.push(Vec::new()); // placeholder (recursion)
                let child = self.flat_paths(body);
                self.children[id] = child;
                let mut p = PathSummary::default();
                p.spawns.push((id, 1, 1));
                vec![(p, false)]
            }
            Node::Branch { arms, .. } => {
                let mut out = Vec::new();
                for a in arms {
                    out.extend(self.paths(a).into_iter().take(MAX_PATHS / 2));
                }
                if out.is_empty() {
                    out.push((PathSummary::default(), false));
                }
                out
            }
            Node::Loop {
                body,
                bound,
                has_exit,
                ..
            } => {
                let body_paths = self.flat_paths(body);
                let mut out = Vec::new();
                match bound {
                    Some(k) => {
                        let k = *k as u64;
                        for bp in body_paths.iter().take(6) {
                            out.push((bp.scaled(k, k), false));
                        }
                        if out.is_empty() {
                            out.push((PathSummary::default(), false));
                        }
                    }
                    None => {
                        // Unknown bound: 0, 1, or "many" iterations.
                        out.push((PathSummary::default(), false));
                        for bp in body_paths.iter().take(4) {
                            out.push((bp.clone(), false));
                            out.push((bp.scaled(0, INF), !*has_exit));
                        }
                    }
                }
                out
            }
            Node::Return { .. } => vec![(PathSummary::default(), true)],
            Node::Break | Node::Continue => vec![(PathSummary::default(), false)],
        }
    }
}

/// Adversarial totals: for each channel, the worst-case achievable
/// (sends_hi, recvs_lo, closes==0 possible) over a root path and its
/// transitively spawned children.
#[derive(Debug, Clone, Copy, Default)]
struct Worst {
    /// Max achievable sends.
    sends_hi: u64,
    /// Min achievable recvs.
    recvs_lo: u64,
    /// Max achievable recvs.
    recvs_hi: u64,
    /// Min achievable sends.
    sends_lo: u64,
    /// Is there a combination with zero closes?
    no_close_possible: bool,
    /// Is a close guaranteed on every combination?
    close_guaranteed: bool,
}

fn analyze_root_path(root: &PathSummary, children: &[Vec<PathSummary>], chan: &str) -> Worst {
    // Gather the root's own counts.
    let base = root.counts.get(chan).copied().unwrap_or_default();
    let mut w = Worst {
        sends_hi: base.sends_hi,
        recvs_lo: base.recvs_lo,
        recvs_hi: base.recvs_hi,
        sends_lo: base.sends_lo,
        no_close_possible: base.closes_hi == 0,
        close_guaranteed: base.closes_lo > 0,
    };
    // Children chosen adversarially and independently per objective —
    // a sound over-approximation of "exists a combination".
    let mut stack: Vec<(usize, u64, u64)> = root.spawns.clone();
    let mut seen_depth = 0;
    while let Some((id, lo_mult, hi_mult)) = stack.pop() {
        seen_depth += 1;
        if seen_depth > 256 {
            break;
        }
        let paths = &children[id];
        if paths.is_empty() {
            continue;
        }
        let get = |p: &PathSummary| p.counts.get(chan).copied().unwrap_or_default();
        let max_sends = paths.iter().map(|p| get(p).sends_hi).max().unwrap_or(0);
        let min_sends = paths.iter().map(|p| get(p).sends_lo).min().unwrap_or(0);
        let max_recvs = paths.iter().map(|p| get(p).recvs_hi).max().unwrap_or(0);
        let min_recvs = paths.iter().map(|p| get(p).recvs_lo).min().unwrap_or(0);
        let can_skip_close = paths.iter().any(|p| get(p).closes_hi == 0);
        let must_close = paths.iter().all(|p| get(p).closes_lo > 0);

        w.sends_hi = (w.sends_hi + max_sends.saturating_mul(hi_mult)).min(INF);
        w.sends_lo = (w.sends_lo + min_sends.saturating_mul(lo_mult)).min(INF);
        w.recvs_hi = (w.recvs_hi + max_recvs.saturating_mul(hi_mult)).min(INF);
        w.recvs_lo = (w.recvs_lo + min_recvs.saturating_mul(lo_mult)).min(INF);
        // If the spawn may not run (lo_mult == 0), a guaranteed close in
        // the child is not guaranteed overall.
        if must_close && lo_mult > 0 {
            w.close_guaranteed = true;
        }
        if !can_skip_close && hi_mult > 0 {
            w.no_close_possible = false;
        }
        // Grandchildren.
        for p in paths {
            for s in &p.spawns {
                stack.push((
                    s.0,
                    s.1.saturating_mul(lo_mult),
                    s.2.saturating_mul(hi_mult),
                ));
            }
        }
    }
    w
}

fn chan_capacity(skel: &Skeleton, name: &str) -> Option<u64> {
    skel.chans
        .iter()
        .find(|c| c.name == name)
        .and_then(|c| match c.source {
            ChanSource::Local { cap: Cap::Zero, .. } => Some(0),
            ChanSource::Local {
                cap: Cap::Const(n), ..
            } => Some(n as u64),
            // Dynamic capacity: assume "big enough" (avoids FPs, costs FNs).
            ChanSource::Local { cap: Cap::Dyn, .. } => None,
            ChanSource::External => None,
        })
}

fn all_sites<'p>(root: &'p PathSummary, children: &'p [Vec<PathSummary>]) -> Vec<&'p Site> {
    let mut out: Vec<&Site> = root.sites.iter().collect();
    for paths in children {
        for p in paths {
            out.extend(p.sites.iter());
        }
    }
    out
}

impl Analyzer for PathCheck {
    fn name(&self) -> &'static str {
        "pathcheck"
    }

    fn analyze_file(&self, file: &File) -> Vec<Finding> {
        let opts = ExtractOptions {
            follow_wrappers: self.config.follow_wrappers,
            inline_named_calls: true,
        };
        let mut findings = Vec::new();
        for skel in extract_file(file, &opts) {
            self.analyze_skeleton(&skel, &mut findings);
        }
        // Deduplicate by (kind, location).
        let mut seen = BTreeSet::new();
        findings.retain(|f| seen.insert((f.kind, f.loc.clone())));
        findings
    }
}

impl PathCheck {
    fn analyze_skeleton(&self, skel: &Skeleton, findings: &mut Vec<Finding>) {
        let mut en = Enumerator {
            config: &self.config,
            children: Vec::new(),
        };
        let root_paths = en.flat_paths(&skel.body);
        let enumeration = Enumeration {
            root_paths,
            child_paths: en.children,
        };

        let local_chans: Vec<&str> = skel
            .chans
            .iter()
            .filter(|c| matches!(c.source, ChanSource::Local { .. }))
            .map(|c| c.name.as_str())
            .collect();

        for root in &enumeration.root_paths {
            let sites = all_sites(root, &enumeration.child_paths);
            for &ch in &local_chans {
                let Some(cap) = chan_capacity(skel, ch) else {
                    continue;
                };
                let w = analyze_root_path(root, &enumeration.child_paths, ch);

                // Blocked send: more sends than receives + buffer.
                if w.sends_hi > w.recvs_lo.saturating_add(cap) && !w.close_guaranteed {
                    for site in &sites {
                        if let Site::Send { ch: c, line } = site {
                            if c == ch {
                                findings.push(self.finding(
                                    skel,
                                    FindingKind::BlockedSend,
                                    *line,
                                    format!(
                                        "send on `{ch}` may never find a receiver \
                                         (worst case {} sends vs {} receives, cap {cap})",
                                        w.sends_hi, w.recvs_lo
                                    ),
                                ));
                            }
                        }
                    }
                }

                // Blocked receive: more receives than sends, no close.
                if w.recvs_hi > w.sends_lo && w.no_close_possible {
                    for site in &sites {
                        match site {
                            Site::Recv { ch: c, line } if c == ch => {
                                findings.push(self.finding(
                                    skel,
                                    FindingKind::BlockedRecv,
                                    *line,
                                    format!(
                                        "receive on `{ch}` may never find a sender \
                                         and the channel is never closed"
                                    ),
                                ));
                            }
                            Site::Range { ch: c, line } if c == ch => {
                                findings.push(self.finding(
                                    skel,
                                    FindingKind::UnclosedRange,
                                    *line,
                                    format!("range over `{ch}` which may never be closed"),
                                ));
                            }
                            _ => {}
                        }
                    }
                }
            }

            // Blocked select: every arm starvable.
            for site in &sites {
                let Site::Select {
                    line,
                    arms,
                    has_default,
                } = site
                else {
                    continue;
                };
                if *has_default {
                    continue;
                }
                let starved = arms.iter().all(|arm| match arm {
                    SelectOp::Recv {
                        transient: true, ..
                    } => false,
                    SelectOp::Recv { ch: Some(c), .. } => {
                        let Some(_cap) = chan_capacity(skel, c) else {
                            return false;
                        };
                        let w = analyze_root_path(root, &enumeration.child_paths, c);
                        // Arm can starve if nobody may send and nobody
                        // may close.
                        w.sends_hi == 0 && w.no_close_possible
                    }
                    SelectOp::Recv { ch: None, .. } => false,
                    SelectOp::Send { ch: Some(c), .. } => {
                        let Some(cap) = chan_capacity(skel, c) else {
                            return false;
                        };
                        let w = analyze_root_path(root, &enumeration.child_paths, c);
                        w.recvs_hi == 0 && cap == 0
                    }
                    SelectOp::Send { ch: None, .. } => false,
                });
                if arms.is_empty() || starved {
                    findings.push(self.finding(
                        skel,
                        FindingKind::BlockedSelect,
                        *line,
                        if arms.is_empty() {
                            "select with no cases blocks forever".to_string()
                        } else {
                            "no select arm can ever become ready".to_string()
                        },
                    ));
                }
            }
        }
    }

    fn finding(&self, skel: &Skeleton, kind: FindingKind, line: u32, message: String) -> Finding {
        Finding {
            tool: "pathcheck",
            kind,
            loc: Loc::new(skel.file.clone(), line),
            func: skel.func.clone(),
            message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let file = minigo::parse_file(src, "t.go").unwrap();
        PathCheck::new().analyze_file(&file)
    }

    #[test]
    fn flags_listing1_premature_return() {
        let f = check(
            r#"
package p

func F(err bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	<-ch
}
"#,
        );
        assert!(
            f.iter()
                .any(|x| x.kind == FindingKind::BlockedSend && x.loc.line == 7),
            "expected blocked send at line 7, got {f:?}"
        );
    }

    #[test]
    fn silent_on_buffered_fix() {
        let f = check(
            r#"
package p

func F(err bool) {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	<-ch
}
"#,
        );
        assert!(
            !f.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "capacity-1 fix should silence the send report: {f:?}"
        );
    }

    #[test]
    fn flags_ncast_and_not_its_fix() {
        let leaky = check(
            r#"
package p

func F(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i
		}()
	}
	<-ch
}
"#,
        );
        assert!(leaky.iter().any(|x| x.kind == FindingKind::BlockedSend));

        let fixed = check(
            r#"
package p

func F(n int) {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i
		}()
	}
	<-ch
}
"#,
        );
        assert!(
            !fixed.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "dynamic capacity treated as big enough: {fixed:?}"
        );
    }

    #[test]
    fn flags_unclosed_range() {
        let f = check(
            r#"
package p

func F() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			sim.Work(v)
		}
	}()
	ch <- 1
}
"#,
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::UnclosedRange));
    }

    #[test]
    fn flags_contract_violation_select() {
        let f = check(
            r#"
package p

func Use() {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		for {
			select {
			case <-ch:
				sim.Work(1)
			case <-done:
				return
			}
		}
	}()
}
"#,
        );
        assert!(
            f.iter().any(|x| x.kind == FindingKind::BlockedSelect),
            "select on two never-fed channels must be flagged: {f:?}"
        );
    }

    #[test]
    fn stop_method_silences_contract_select() {
        let f = check(
            r#"
package p

func Use() {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		for {
			select {
			case <-ch:
				sim.Work(1)
			case <-done:
				return
			}
		}
	}()
	close(done)
}
"#,
        );
        assert!(
            !f.iter().any(|x| x.kind == FindingKind::BlockedSelect),
            "close(done) makes the select completable: {f:?}"
        );
    }

    #[test]
    fn wrapper_spawn_is_invisible_by_default() {
        let src = r#"
package p

func F() {
	ch := make(chan int)
	asyncutil.Go(func() {
		ch <- 1
	})
}
"#;
        let blind = check(src);
        assert!(
            !blind.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "naive mode must miss wrapper spawns: {blind:?}"
        );
        let file = minigo::parse_file(src, "t.go").unwrap();
        let aware = PathCheck {
            config: PathCheckConfig {
                follow_wrappers: true,
            },
        }
        .analyze_file(&file);
        assert!(
            aware.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "wrapper-aware mode must catch it: {aware:?}"
        );
    }

    #[test]
    fn timer_selects_are_not_flagged() {
        let f = check(
            r#"
package p

func Loop(ctx context.Context) {
	for {
		select {
		case <-time.Tick(10):
			sim.Work(1)
		case <-ctx.Done():
			return
		}
	}
}
"#,
        );
        assert!(f.is_empty(), "transient select must pass: {f:?}");
    }

    #[test]
    fn external_channels_are_skipped() {
        let f = check("package p\nfunc F(ch chan int) {\n\tch <- 1\n}\n");
        assert!(f.is_empty());
    }
}
