//! `pathcheck` — a GCatch-style bounded path-enumeration analyzer.
//!
//! GCatch enumerates bounded execution paths and feeds channel-operation
//! constraints to an SMT solver. `pathcheck` keeps the same architecture
//! with a counting decision procedure instead of SMT: for every
//! enumerated combination of parent/child paths it checks whether the
//! CSP pairing arithmetic admits an execution in which some operation can
//! never complete:
//!
//! * **blocked send**: achievable `sends > recvs + capacity`;
//! * **blocked receive**: achievable `recvs > sends` with no possible
//!   `close`;
//! * **unclosed range**: a range receive with no possible `close`;
//! * **blocked select**: a `select` with no default whose every arm can
//!   be starved.
//!
//! Like the original, the analysis is *unsound and incomplete*: loops
//! are approximated by {0, 1, ∞} iterations, branch correlations across
//! goroutines are ignored (false positives), and channels that escape
//! the function, wrapper spawns (unless configured), and cross-file
//! callees are not tracked (false negatives). This reproduces the
//! precision regime the paper measures in Table III.
//!
//! The enumeration/counting machinery itself lives in [`crate::paths`]
//! and is shared with the interprocedural engine ([`crate::interproc`]),
//! which runs it over call-graph-spliced skeletons instead of per-file
//! ones.

use std::collections::BTreeSet;

use gosim::Loc;
use minigo::ast::File;

use crate::findings::{Analyzer, Finding, FindingKind};
use crate::paths::count_findings;
use crate::skeleton::{extract_file, ExtractOptions, Skeleton};

/// Configuration for the path checker.
#[derive(Debug, Clone, Default)]
pub struct PathCheckConfig {
    /// Recognize wrapper spawns (off = the paper's naive baseline).
    pub follow_wrappers: bool,
}

/// The GCatch-like analyzer.
#[derive(Debug, Clone, Default)]
pub struct PathCheck {
    /// Configuration.
    pub config: PathCheckConfig,
}

impl PathCheck {
    /// Creates the analyzer with default (wrapper-blind) configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Analyzer for PathCheck {
    fn name(&self) -> &'static str {
        "pathcheck"
    }

    fn analyze_file(&self, file: &File) -> Vec<Finding> {
        let opts = ExtractOptions {
            follow_wrappers: self.config.follow_wrappers,
            inline_named_calls: true,
            keep_calls: false,
        };
        let mut findings = Vec::new();
        for skel in extract_file(file, &opts) {
            self.analyze_skeleton(&skel, &mut findings);
        }
        // Deduplicate by (kind, location).
        let mut seen = BTreeSet::new();
        findings.retain(|f| seen.insert((f.kind, f.loc.clone())));
        findings
    }
}

impl PathCheck {
    fn analyze_skeleton(&self, skel: &Skeleton, findings: &mut Vec<Finding>) {
        for cf in count_findings(
            &skel.chans,
            &skel.body,
            self.config.follow_wrappers,
            &|ch| ch.to_string(),
        ) {
            findings.push(self.finding(skel, cf.kind, cf.line, cf.message));
        }
    }

    fn finding(&self, skel: &Skeleton, kind: FindingKind, line: u32, message: String) -> Finding {
        Finding {
            tool: "pathcheck",
            kind,
            loc: Loc::new(skel.file.clone(), line),
            func: skel.func.clone(),
            message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let file = minigo::parse_file(src, "t.go").unwrap();
        PathCheck::new().analyze_file(&file)
    }

    #[test]
    fn flags_listing1_premature_return() {
        let f = check(
            r#"
package p

func F(err bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	<-ch
}
"#,
        );
        assert!(
            f.iter()
                .any(|x| x.kind == FindingKind::BlockedSend && x.loc.line == 7),
            "expected blocked send at line 7, got {f:?}"
        );
    }

    #[test]
    fn silent_on_buffered_fix() {
        let f = check(
            r#"
package p

func F(err bool) {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	<-ch
}
"#,
        );
        assert!(
            !f.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "capacity-1 fix should silence the send report: {f:?}"
        );
    }

    #[test]
    fn flags_ncast_and_not_its_fix() {
        let leaky = check(
            r#"
package p

func F(n int) {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i
		}()
	}
	<-ch
}
"#,
        );
        assert!(leaky.iter().any(|x| x.kind == FindingKind::BlockedSend));

        let fixed = check(
            r#"
package p

func F(n int) {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			ch <- i
		}()
	}
	<-ch
}
"#,
        );
        assert!(
            !fixed.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "dynamic capacity treated as big enough: {fixed:?}"
        );
    }

    #[test]
    fn flags_unclosed_range() {
        let f = check(
            r#"
package p

func F() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			sim.Work(v)
		}
	}()
	ch <- 1
}
"#,
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::UnclosedRange));
    }

    #[test]
    fn flags_contract_violation_select() {
        let f = check(
            r#"
package p

func Use() {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		for {
			select {
			case <-ch:
				sim.Work(1)
			case <-done:
				return
			}
		}
	}()
}
"#,
        );
        assert!(
            f.iter().any(|x| x.kind == FindingKind::BlockedSelect),
            "select on two never-fed channels must be flagged: {f:?}"
        );
    }

    #[test]
    fn stop_method_silences_contract_select() {
        let f = check(
            r#"
package p

func Use() {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		for {
			select {
			case <-ch:
				sim.Work(1)
			case <-done:
				return
			}
		}
	}()
	close(done)
}
"#,
        );
        assert!(
            !f.iter().any(|x| x.kind == FindingKind::BlockedSelect),
            "close(done) makes the select completable: {f:?}"
        );
    }

    #[test]
    fn wrapper_spawn_is_invisible_by_default() {
        let src = r#"
package p

func F() {
	ch := make(chan int)
	asyncutil.Go(func() {
		ch <- 1
	})
}
"#;
        let blind = check(src);
        assert!(
            !blind.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "naive mode must miss wrapper spawns: {blind:?}"
        );
        let file = minigo::parse_file(src, "t.go").unwrap();
        let aware = PathCheck {
            config: PathCheckConfig {
                follow_wrappers: true,
            },
        }
        .analyze_file(&file);
        assert!(
            aware.iter().any(|x| x.kind == FindingKind::BlockedSend),
            "wrapper-aware mode must catch it: {aware:?}"
        );
    }

    #[test]
    fn timer_selects_are_not_flagged() {
        let f = check(
            r#"
package p

func Loop(ctx context.Context) {
	for {
		select {
		case <-time.Tick(10):
			sim.Work(1)
		case <-ctx.Done():
			return
		}
	}
}
"#,
        );
        assert!(f.is_empty(), "transient select must pass: {f:?}");
    }

    #[test]
    fn external_channels_are_skipped() {
        let f = check("package p\nfunc F(ch chan int) {\n\tch <- 1\n}\n");
        assert!(f.is_empty());
    }
}
