//! # staticlint — baseline static partial-deadlock analyzers (paper §II-B)
//!
//! Re-implementations (simplified but *real*, not mocked) of the three
//! static approaches the paper compares against, plus the range-close
//! linter proposed in its conclusions:
//!
//! | analyzer | models | technique |
//! |---|---|---|
//! | [`pathcheck::PathCheck`] | GCatch | bounded path enumeration + pairing constraints |
//! | [`absint::AbsInt`] | Goat | abstract interpretation over count intervals |
//! | [`modelcheck::ModelCheck`] | Gomela | explicit-state model checking with a budget |
//! | [`rangeclose::RangeClose`] | §VIII linter | unclosed `for range ch` detection |
//! | [`interproc::Interproc`] | trace-based Mini-Go analyses | call graph + bottom-up summary splicing |
//!
//! The first three are deliberately **intraprocedural** (per file, one
//! level of same-file inlining) — the regime the paper's Table III
//! measures. [`interproc`] is the crate's step beyond them: it resolves
//! call edges across files via [`minigo::Program`], condenses SCCs, and
//! splices callee summaries into callers so caller/callee-spanning leaks
//! are found and reported with an interprocedural witness path.
//!
//! All analyzers consume the [`minigo`] AST through a shared
//! [`skeleton`] extraction, implement the common
//! [`findings::Analyzer`] trait, and are deliberately *unsound and
//! incomplete* in the same directions the paper reports: wrapper spawns
//! are invisible by default, channels escaping the function are skipped,
//! loops are bounded, and model checking gives up past a budget. The
//! Table III reproduction measures each tool's real precision against
//! corpus ground truth.
//!
//! ```
//! use staticlint::findings::Analyzer;
//! use staticlint::pathcheck::PathCheck;
//!
//! let src = r#"
//! package p
//!
//! func F(err bool) {
//!     ch := make(chan int)
//!     go func() {
//!         ch <- 1
//!     }()
//!     if err {
//!         return
//!     }
//!     <-ch
//! }
//! "#;
//! let file = minigo::parse_file(src, "p/f.go").unwrap();
//! let findings = PathCheck::new().analyze_file(&file);
//! assert_eq!(findings.len(), 1); // the blocked send at line 7
//! ```

#![warn(missing_docs)]

pub mod absint;
pub mod findings;
pub mod interproc;
pub mod modelcheck;
pub mod pathcheck;
mod paths;
pub mod rangeclose;
pub mod skeleton;

pub use absint::AbsInt;
pub use findings::{Analyzer, Finding, FindingKind};
pub use interproc::Interproc;
pub use modelcheck::ModelCheck;
pub use pathcheck::PathCheck;
pub use rangeclose::RangeClose;
