//! `absint` — a Goat-style abstract-interpretation analyzer.
//!
//! Goat runs abstract interpretation to a least fixpoint over a
//! conservative approximation of the program state. `absint` mirrors the
//! architecture with a single-pass interval analysis: for each local
//! channel it computes a *hull* of possible operation counts over all
//! paths — joins at branches (interval union), widening at loops
//! (multiply by `[0, ∞]` or the static bound) — and then applies the
//! same pairing-arithmetic checks as `pathcheck`.
//!
//! Because the hull merges all branches, the analysis is flow-joined
//! rather than path-sensitive: it cannot correlate decisions across
//! branches (extra false positives relative to `pathcheck`), and a
//! close *anywhere* in the function suppresses receive reports (the
//! precision heuristic Goat uses to stay usable, at the cost of false
//! negatives). These trade-offs reproduce the GCatch-vs-Goat precision
//! gap in the paper's Table III.

use std::collections::{BTreeMap, BTreeSet};

use gosim::Loc;
use minigo::ast::File;

use crate::findings::{Analyzer, Finding, FindingKind};
use crate::skeleton::{extract_file, Cap, ChanSource, ExtractOptions, Node, SelectOp, Skeleton};

const INF: u64 = u64::MAX / 4;

/// Abstract per-channel facts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ChanFacts {
    sends: (u64, u64),
    recvs: (u64, u64),
    closes: (u64, u64),
}

impl ChanFacts {
    fn join(&self, other: &ChanFacts) -> ChanFacts {
        ChanFacts {
            sends: (
                self.sends.0.min(other.sends.0),
                self.sends.1.max(other.sends.1),
            ),
            recvs: (
                self.recvs.0.min(other.recvs.0),
                self.recvs.1.max(other.recvs.1),
            ),
            closes: (
                self.closes.0.min(other.closes.0),
                self.closes.1.max(other.closes.1),
            ),
        }
    }

    fn seq(&self, other: &ChanFacts) -> ChanFacts {
        let add = |a: (u64, u64), b: (u64, u64)| ((a.0 + b.0).min(INF), (a.1 + b.1).min(INF));
        ChanFacts {
            sends: add(self.sends, other.sends),
            recvs: add(self.recvs, other.recvs),
            closes: add(self.closes, other.closes),
        }
    }

    fn scale(&self, lo: u64, hi: u64) -> ChanFacts {
        let m = |a: (u64, u64)| {
            (
                a.0.saturating_mul(lo).min(INF),
                a.1.saturating_mul(hi).min(INF),
            )
        };
        ChanFacts {
            sends: m(self.sends),
            recvs: m(self.recvs),
            closes: m(self.closes),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct State {
    chans: BTreeMap<String, ChanFacts>,
    send_sites: Vec<(String, u32)>,
    recv_sites: Vec<(String, u32)>,
    range_sites: Vec<(String, u32)>,
    select_sites: Vec<(Vec<SelectOp>, bool, u32)>,
}

impl State {
    fn join(&self, other: &State) -> State {
        let mut chans = self.chans.clone();
        for (k, v) in &other.chans {
            let merged = chans.get(k).map(|m| m.join(v)).unwrap_or_else(|| {
                // present only on one side: lows drop to 0
                v.join(&ChanFacts::default())
            });
            chans.insert(k.clone(), merged);
        }
        for (k, v) in &self.chans {
            if !other.chans.contains_key(k) {
                chans.insert(k.clone(), v.join(&ChanFacts::default()));
            }
        }
        State {
            chans,
            send_sites: merged_sites(&self.send_sites, &other.send_sites),
            recv_sites: merged_sites(&self.recv_sites, &other.recv_sites),
            range_sites: merged_sites(&self.range_sites, &other.range_sites),
            select_sites: {
                let mut s = self.select_sites.clone();
                for x in &other.select_sites {
                    if !s.contains(x) {
                        s.push(x.clone());
                    }
                }
                s
            },
        }
    }

    fn seq(&mut self, other: &State) {
        for (k, v) in &other.chans {
            let e = self.chans.entry(k.clone()).or_default();
            *e = e.seq(v);
        }
        self.send_sites.extend(other.send_sites.iter().cloned());
        self.recv_sites.extend(other.recv_sites.iter().cloned());
        self.range_sites.extend(other.range_sites.iter().cloned());
        self.select_sites.extend(other.select_sites.iter().cloned());
    }

    fn scale(&self, lo: u64, hi: u64) -> State {
        State {
            chans: self
                .chans
                .iter()
                .map(|(k, v)| (k.clone(), v.scale(lo, hi)))
                .collect(),
            send_sites: self.send_sites.clone(),
            recv_sites: self.recv_sites.clone(),
            range_sites: self.range_sites.clone(),
            select_sites: self.select_sites.clone(),
        }
    }
}

fn merged_sites(a: &[(String, u32)], b: &[(String, u32)]) -> Vec<(String, u32)> {
    let mut out = a.to_vec();
    for x in b {
        if !out.contains(x) {
            out.push(x.clone());
        }
    }
    out
}

/// Whether a node list returns from the enclosing function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ret {
    No,
    Maybe,
    Always,
}

impl Ret {
    fn join(self, other: Ret) -> Ret {
        use Ret::*;
        match (self, other) {
            (Always, Always) => Always,
            (No, No) => No,
            _ => Maybe,
        }
    }
}

/// Abstractly interprets a node list into the hull state. Spawned
/// goroutines are folded into the same pot (Goat's conservative merge of
/// concurrent effects), with the spawn body's lows dropped to zero since
/// interleaving order is unknown.
///
/// Reachability is tracked through early returns: once a prefix *may*
/// return, subsequent operations' lower bounds drop to zero; once it
/// *must* return, the rest is unreachable.
fn interpret(nodes: &[Node], follow_wrappers: bool) -> State {
    interpret_ret(nodes, follow_wrappers).0
}

fn interpret_ret(nodes: &[Node], follow_wrappers: bool) -> (State, Ret) {
    let mut st = State::default();
    let mut reach = Ret::No;
    for n in nodes {
        if reach == Ret::Always {
            break;
        }
        let (node_state, node_ret) = node_effect(n, follow_wrappers);
        let scaled = if reach == Ret::Maybe {
            node_state.scale(0, 1)
        } else {
            node_state
        };
        st.seq(&scaled);
        reach = match (reach, node_ret) {
            (Ret::No, r) => r,
            (Ret::Maybe, Ret::Always) | (Ret::Maybe, Ret::Maybe) => Ret::Maybe,
            (Ret::Maybe, Ret::No) => Ret::Maybe,
            (Ret::Always, _) => Ret::Always,
        };
    }
    (st, reach)
}

fn node_effect(n: &Node, follow_wrappers: bool) -> (State, Ret) {
    let mut st = State::default();
    let mut ret = Ret::No;
    match n {
        Node::Send { ch: Some(c), line } => {
            let e = st.chans.entry(c.clone()).or_default();
            *e = e.seq(&ChanFacts {
                sends: (1, 1),
                ..ChanFacts::default()
            });
            st.send_sites.push((c.clone(), *line));
        }
        Node::Recv {
            ch: Some(c),
            line,
            transient: false,
            ..
        } => {
            let e = st.chans.entry(c.clone()).or_default();
            *e = e.seq(&ChanFacts {
                recvs: (1, 1),
                ..ChanFacts::default()
            });
            st.recv_sites.push((c.clone(), *line));
        }
        Node::Close { ch: Some(c), .. } | Node::Cancel { ch: Some(c), .. } => {
            let e = st.chans.entry(c.clone()).or_default();
            *e = e.seq(&ChanFacts {
                closes: (1, 1),
                ..ChanFacts::default()
            });
        }
        Node::CtxTimer { var } => {
            let e = st.chans.entry(var.clone()).or_default();
            *e = e.seq(&ChanFacts {
                closes: (1, 1),
                ..ChanFacts::default()
            });
        }
        Node::Range { ch, line, body } => {
            let (inner, _) = interpret_ret(body, follow_wrappers);
            st.seq(&inner.scale(0, INF));
            if let Some(c) = ch {
                let e = st.chans.entry(c.clone()).or_default();
                *e = e.seq(&ChanFacts {
                    recvs: (1, INF),
                    ..ChanFacts::default()
                });
                st.range_sites.push((c.clone(), *line));
            }
        }
        Node::Select {
            arms,
            has_default,
            default,
            line,
        } => {
            // Hull over arms: each arm may or may not fire.
            let mut acc: Option<(State, Ret)> = None;
            for (op, body) in arms {
                let mut arm_state = State::default();
                match op {
                    SelectOp::Recv {
                        ch: Some(c),
                        transient: false,
                        ..
                    } => {
                        arm_state.chans.insert(
                            c.clone(),
                            ChanFacts {
                                recvs: (1, 1),
                                ..ChanFacts::default()
                            },
                        );
                    }
                    SelectOp::Send { ch: Some(c), .. } => {
                        arm_state.chans.insert(
                            c.clone(),
                            ChanFacts {
                                sends: (1, 1),
                                ..ChanFacts::default()
                            },
                        );
                    }
                    _ => {}
                }
                let (body_state, body_ret) = interpret_ret(body, follow_wrappers);
                arm_state.seq(&body_state);
                acc = Some(match acc {
                    None => (arm_state, body_ret),
                    Some((a, r)) => (a.join(&arm_state), r.join(body_ret)),
                });
            }
            if *has_default {
                let d = interpret_ret(default, follow_wrappers);
                acc = Some(match acc {
                    None => d,
                    Some((a, r)) => (a.join(&d.0), r.join(d.1)),
                });
            }
            if let Some((a, r)) = acc {
                st.seq(&a);
                ret = r;
            }
            st.select_sites.push((
                arms.iter().map(|(op, _)| op.clone()).collect(),
                *has_default,
                *line,
            ));
        }
        Node::Spawn {
            body, via_wrapper, ..
        } => {
            if !*via_wrapper || follow_wrappers {
                let (child, _) = interpret_ret(body, follow_wrappers);
                // The child may or may not have run to any given point.
                st.seq(&child.scale(0, 1));
            }
        }
        Node::Branch { arms, .. } => {
            let mut acc: Option<(State, Ret)> = None;
            for a in arms {
                let sr = interpret_ret(a, follow_wrappers);
                acc = Some(match acc {
                    None => sr,
                    Some((x, r)) => (x.join(&sr.0), r.join(sr.1)),
                });
            }
            if let Some((a, r)) = acc {
                st.seq(&a);
                ret = r;
            }
        }
        Node::Loop { body, bound, .. } => {
            let (inner, body_ret) = interpret_ret(body, follow_wrappers);
            let scaled = match bound {
                Some(k) => inner.scale(*k as u64, *k as u64),
                None => inner.scale(0, INF),
            };
            st.seq(&scaled);
            if body_ret != Ret::No {
                ret = Ret::Maybe;
            }
        }
        Node::Return { .. } => ret = Ret::Always,
        Node::Break | Node::Continue => {}
        Node::Send { ch: None, .. }
        | Node::Recv { .. }
        | Node::Close { ch: None, .. }
        | Node::Cancel { ch: None, .. } => {}
        // Unresolved call edges only appear under `keep_calls`, which the
        // intraprocedural baselines never enable; treat as a no-op.
        Node::Call { .. } => {}
    }
    (st, ret)
}

/// Configuration for the abstract interpreter.
#[derive(Debug, Clone, Default)]
pub struct AbsIntConfig {
    /// Recognize wrapper spawns (off reproduces the naive baseline).
    pub follow_wrappers: bool,
}

/// The Goat-like analyzer.
#[derive(Debug, Clone, Default)]
pub struct AbsInt {
    /// Configuration.
    pub config: AbsIntConfig,
}

impl AbsInt {
    /// Creates the analyzer with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    fn check_skeleton(&self, skel: &Skeleton, out: &mut Vec<Finding>) {
        let st = interpret(&skel.body, self.config.follow_wrappers);
        let cap_of = |name: &str| -> Option<u64> {
            skel.chans
                .iter()
                .find(|c| c.name == name)
                .and_then(|c| match c.source {
                    ChanSource::Local { cap: Cap::Zero, .. } => Some(0),
                    ChanSource::Local {
                        cap: Cap::Const(n), ..
                    } => Some(n as u64),
                    ChanSource::Local { cap: Cap::Dyn, .. } | ChanSource::External => None,
                })
        };

        for (ch, facts) in &st.chans {
            let Some(cap) = cap_of(ch) else { continue };
            // Blocked send: hull admits more sends than receives+cap.
            // (Goat heuristic: a possible close suppresses nothing here —
            // senders on a closed channel panic rather than unblock.)
            if facts.sends.1 > facts.recvs.0.saturating_add(cap) && facts.closes.0 == 0 {
                for (c, line) in &st.send_sites {
                    if c == ch {
                        out.push(finding(
                            skel,
                            FindingKind::BlockedSend,
                            *line,
                            format!(
                                "hull admits {} sends vs {} receives on `{ch}` (cap {cap})",
                                display(facts.sends.1),
                                facts.recvs.0
                            ),
                        ));
                    }
                }
            }
            // Blocked receive: more receives than sends and the channel
            // is never closed anywhere (may-close suppression).
            if facts.recvs.1 > facts.sends.0 && facts.closes.1 == 0 {
                for (c, line) in &st.recv_sites {
                    if c == ch {
                        out.push(finding(
                            skel,
                            FindingKind::BlockedRecv,
                            *line,
                            format!("receive on `{ch}` with no matching sends and no close"),
                        ));
                    }
                }
                for (c, line) in &st.range_sites {
                    if c == ch {
                        out.push(finding(
                            skel,
                            FindingKind::UnclosedRange,
                            *line,
                            format!("range over `{ch}` which is never closed"),
                        ));
                    }
                }
            }
        }

        // Blocked select: every arm starvable under the hull.
        for (arms, has_default, line) in &st.select_sites {
            if *has_default {
                continue;
            }
            let starved = |op: &SelectOp| -> bool {
                match op {
                    SelectOp::Recv {
                        transient: true, ..
                    } => false,
                    SelectOp::Recv { ch: Some(c), .. } => {
                        let Some(_cap) = cap_of(c) else { return false };
                        let f = st.chans.get(c).copied().unwrap_or_default();
                        // Its own select arm counted a receive; senders
                        // are what matters.
                        f.sends.1 == 0 && f.closes.1 == 0
                    }
                    SelectOp::Recv { ch: None, .. } => false,
                    SelectOp::Send { ch: Some(c), .. } => {
                        let Some(cap) = cap_of(c) else { return false };
                        let f = st.chans.get(c).copied().unwrap_or_default();
                        // The arm's own send is in the hull; other
                        // receives are what could unblock it.
                        f.recvs.1 == 0 && cap == 0
                    }
                    SelectOp::Send { ch: None, .. } => false,
                }
            };
            if arms.is_empty() || arms.iter().all(starved) {
                out.push(finding(
                    skel,
                    FindingKind::BlockedSelect,
                    *line,
                    "abstract state starves every select arm".to_string(),
                ));
            }
        }
    }
}

fn display(v: u64) -> String {
    if v >= INF {
        "∞".to_string()
    } else {
        v.to_string()
    }
}

fn finding(skel: &Skeleton, kind: FindingKind, line: u32, message: String) -> Finding {
    Finding {
        tool: "absint",
        kind,
        loc: Loc::new(skel.file.clone(), line),
        func: skel.func.clone(),
        message,
    }
}

impl Analyzer for AbsInt {
    fn name(&self) -> &'static str {
        "absint"
    }

    fn analyze_file(&self, file: &File) -> Vec<Finding> {
        let opts = ExtractOptions {
            follow_wrappers: self.config.follow_wrappers,
            inline_named_calls: true,
            keep_calls: false,
        };
        let mut findings = Vec::new();
        for skel in extract_file(file, &opts) {
            self.check_skeleton(&skel, &mut findings);
        }
        let mut seen = BTreeSet::new();
        findings.retain(|f| seen.insert((f.kind, f.loc.clone())));
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        let file = minigo::parse_file(src, "t.go").unwrap();
        AbsInt::new().analyze_file(&file)
    }

    #[test]
    fn flags_listing1() {
        let f = check(
            r#"
package p

func F(err bool) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	if err {
		return
	}
	<-ch
}
"#,
        );
        assert!(f
            .iter()
            .any(|x| x.kind == FindingKind::BlockedSend && x.loc.line == 7));
    }

    #[test]
    fn conditional_close_suppresses_recv_report_false_negative() {
        // Path-sensitively this leaks when x is false; the hull's
        // may-close heuristic silences it — a designed false negative
        // mirroring Goat's precision trade-off.
        let f = check(
            r#"
package p

func F(x bool) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			sim.Work(v)
		}
	}()
	ch <- 1
	if x {
		close(ch)
	}
}
"#,
        );
        assert!(!f.iter().any(|x| x.kind == FindingKind::UnclosedRange));
    }

    #[test]
    fn flags_unclosed_range() {
        let f = check(
            r#"
package p

func F() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			sim.Work(v)
		}
	}()
	ch <- 1
}
"#,
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::UnclosedRange));
    }

    #[test]
    fn correlated_branches_create_false_positive() {
        // Send and receive happen under the same condition; the hull
        // cannot see the correlation and reports a blocked send. This is
        // the canonical flow-join false positive.
        let f = check(
            r#"
package p

func F(x bool) {
	ch := make(chan int, 0)
	go func() {
		if x {
			ch <- 1
		}
	}()
	if x {
		<-ch
	}
}
"#,
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::BlockedSend));
    }

    #[test]
    fn transient_selects_pass() {
        let f = check(
            r#"
package p

func Loop(ctx context.Context) {
	for {
		select {
		case <-time.Tick(10):
			sim.Work(1)
		case <-ctx.Done():
			return
		}
	}
}
"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn flags_contract_violation() {
        let f = check(
            r#"
package p

func Use() {
	ch := make(chan int)
	done := make(chan int)
	go func() {
		for {
			select {
			case <-ch:
				sim.Work(1)
			case <-done:
				return
			}
		}
	}()
}
"#,
        );
        assert!(f.iter().any(|x| x.kind == FindingKind::BlockedSelect));
    }
}
