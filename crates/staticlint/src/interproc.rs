//! `interproc` — interprocedural summary-based leak analysis.
//!
//! The three baseline analyzers are deliberately intraprocedural: they
//! see one file at a time and inline at most one level of same-file
//! named calls, reproducing the recall ceiling the paper measures in
//! Table III. This engine is the step past that ceiling, following the
//! trace-based Mini-Go analyses (Stadtmüller/Sulzmann/Thiemann) in
//! spirit: cross-function channel reasoning is where static recall
//! actually comes from.
//!
//! The pipeline:
//!
//! 1. **Extraction** — every function's concurrency skeleton is
//!    extracted with unresolved call edges kept in place
//!    ([`crate::skeleton::ExtractOptions::keep_calls`]) instead of being
//!    dropped or naively inlined, plus its parameter list for positional
//!    argument binding.
//! 2. **Call graph** — call edges are resolved across files via a
//!    [`minigo::Program`] index (same-package resolution, mirroring Go's
//!    package scope), including `go f(...)` spawn edges and calls inside
//!    closure/wrapper spawn bodies.
//! 3. **SCC condensation** — Tarjan's algorithm condenses the graph;
//!    call edges *inside* an SCC (recursion) are left opaque, a
//!    documented bounded unsoundness shared with every bounded analyzer
//!    in this crate.
//! 4. **Bottom-up summaries** — in callee-first (reverse topological)
//!    order, each function gets a memoized *closed skeleton*: every
//!    resolvable call site is replaced by the callee's closed skeleton
//!    with channels renamed (parameter → argument binding; callee locals
//!    get fresh instantiation-suffixed names) and every operation
//!    relocated into a virtual-line space whose side table remembers the
//!    real `(file, line)` and the call chain that reached it.
//! 5. **Counting analysis** — the shared decision procedure
//!    ([`crate::paths`]) runs over each closed skeleton, exactly as
//!    `pathcheck` runs it over per-file skeletons.
//! 6. **Cross-function attribution** — findings that the same machinery
//!    already produces on some *unspliced* skeleton of the program are
//!    subtracted. What survives is precisely the interprocedural
//!    value-add, reported with a witness path (`caller -> callee`), and
//!    by construction the pass adds zero findings on code whose leaks
//!    (or absence thereof) are intraprocedurally decidable.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use gosim::Loc;
use minigo::ast::File;
use minigo::Program;

use crate::findings::{Analyzer, Finding, FindingKind};
use crate::paths::count_findings;
use crate::skeleton::{
    extract_func, strip_returns, ChanDef, ChanSource, ExtractOptions, Node, SelectOp,
};

/// Configuration for the interprocedural engine.
#[derive(Debug, Clone)]
pub struct InterprocConfig {
    /// Budget on the node count of one closed skeleton; call sites whose
    /// splice would exceed it stay opaque (bounded blowup).
    pub max_nodes: usize,
    /// Follow wrapper spawns. On by default: the engine models the
    /// paper's *proposed* static tier, not the naive baselines.
    pub follow_wrappers: bool,
}

impl Default for InterprocConfig {
    fn default() -> Self {
        InterprocConfig {
            max_nodes: 4096,
            follow_wrappers: true,
        }
    }
}

/// The interprocedural summary-splicing analyzer.
#[derive(Debug, Clone, Default)]
pub struct Interproc {
    /// Configuration.
    pub config: InterprocConfig,
}

impl Interproc {
    /// Creates the engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes a whole program (typically one package's files).
    pub fn analyze_program(&self, prog: &Program) -> Vec<Finding> {
        let infos = collect_infos(prog);
        let n = infos.len();
        if n == 0 {
            return Vec::new();
        }
        let mut idx_of: HashMap<(String, String), usize> = HashMap::new();
        for (i, fi) in infos.iter().enumerate() {
            idx_of.entry((fi.pkg.clone(), fi.name.clone())).or_insert(i);
        }
        let edges: Vec<Vec<usize>> = infos
            .iter()
            .map(|fi| {
                let mut out = Vec::new();
                collect_callees(fi.skel_body(), &mut |callee| {
                    if let Some(&j) = idx_of.get(&(fi.pkg.clone(), callee.to_string())) {
                        out.push(j);
                    }
                });
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        let (scc_id, scc_order) = tarjan_sccs(&edges);

        // Close functions callee-first (Tarjan emits sink SCCs first).
        let mut closed: Vec<Option<ClosedFunc>> = (0..n).map(|_| None).collect();
        for &f in &scc_order {
            let cf = self.close_one(f, &infos, &idx_of, &scc_id, &closed);
            closed[f] = Some(cf);
        }

        // Findings derivable without any call splicing, anywhere in the
        // program: the intraprocedural baseline to subtract.
        let mut intra: BTreeSet<(FindingKind, String, u32)> = BTreeSet::new();
        for fi in &infos {
            for cf in count_findings(
                &fi.skel.chans,
                &fi.skel.body,
                self.config.follow_wrappers,
                &|ch| ch.to_string(),
            ) {
                intra.insert((cf.kind, fi.skel.file.clone(), cf.line));
            }
        }

        let pretty = |ch: &str| ch.split('@').next().unwrap_or(ch).to_string();
        let mut out = Vec::new();
        let mut seen: BTreeSet<(FindingKind, String, u32)> = BTreeSet::new();
        for (i, fi) in infos.iter().enumerate() {
            let cf = closed[i].as_ref().expect("closed in topo order");
            if cf.spliced == 0 {
                continue; // nothing interprocedural about this root
            }
            for f in count_findings(&cf.chans, &cf.body, self.config.follow_wrappers, &pretty) {
                let Some(site) = cf.locmap.get(&f.line) else {
                    continue;
                };
                let key = (f.kind, site.file.clone(), site.line);
                if intra.contains(&key) || !seen.insert(key) {
                    continue;
                }
                out.push(Finding {
                    tool: "interproc",
                    kind: f.kind,
                    loc: Loc::new(site.file.clone(), site.line),
                    func: fi.qname.clone(),
                    message: format!("{} [witness: {}]", f.message, site.chain.join(" -> ")),
                });
            }
        }
        out.sort_by(|a, b| {
            (&a.loc.file, a.loc.line, a.kind).cmp(&(&b.loc.file, b.loc.line, b.kind))
        });
        out
    }

    fn close_one(
        &self,
        f: usize,
        infos: &[FuncInfo],
        idx_of: &HashMap<(String, String), usize>,
        scc_id: &[usize],
        closed: &[Option<ClosedFunc>],
    ) -> ClosedFunc {
        let fi = &infos[f];
        let mut b = Builder {
            infos,
            idx_of,
            scc_id,
            closed,
            cur_scc: scc_id[f],
            max_nodes: self.config.max_nodes,
            next_id: 0,
            next_inst: 0,
            chans: fi.skel.chans.clone(),
            locmap: BTreeMap::new(),
            spliced: 0,
        };
        let body = b.lift_raw(&fi.skel.body, fi);
        ClosedFunc {
            chans: b.chans,
            body,
            locmap: b.locmap,
            nodes: b.next_id as usize,
            spliced: b.spliced,
        }
    }
}

impl Analyzer for Interproc {
    fn name(&self) -> &'static str {
        "interproc"
    }

    fn analyze_file(&self, file: &File) -> Vec<Finding> {
        self.analyze_program(&Program::new(vec![file.clone()]))
    }

    fn analyze_files(&self, files: &[File]) -> Vec<Finding> {
        self.analyze_program(&Program::new(files.to_vec()))
    }
}

// ---------------------------------------------------------------------------
// Per-function raw info

struct FuncInfo {
    qname: String,
    pkg: String,
    name: String,
    /// All parameter names in declared order (positional binding).
    params: Vec<String>,
    skel: crate::skeleton::Skeleton,
}

impl FuncInfo {
    fn skel_body(&self) -> &[Node] {
        &self.skel.body
    }
}

fn collect_infos(prog: &Program) -> Vec<FuncInfo> {
    let opts = ExtractOptions {
        follow_wrappers: true,
        inline_named_calls: false,
        keep_calls: true,
    };
    prog.funcs()
        .map(|fr| FuncInfo {
            qname: fr.qualified(),
            pkg: fr.file.package.clone(),
            name: fr.func.name.clone(),
            params: fr.func.params.iter().map(|p| p.name.clone()).collect(),
            skel: extract_func(fr.file, fr.func, &opts),
        })
        .collect()
}

/// Walks a node tree invoking `f` on every kept call edge's callee name.
fn collect_callees(nodes: &[Node], f: &mut dyn FnMut(&str)) {
    for n in nodes {
        match n {
            Node::Call { callee, .. } => f(callee),
            Node::Spawn { body, .. } | Node::Range { body, .. } | Node::Loop { body, .. } => {
                collect_callees(body, f);
            }
            Node::Branch { arms, .. } => {
                for a in arms {
                    collect_callees(a, f);
                }
            }
            Node::Select { arms, default, .. } => {
                for (_, b) in arms {
                    collect_callees(b, f);
                }
                collect_callees(default, f);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Tarjan SCC condensation

/// Returns (scc id per node, node order with callees' SCCs first).
fn tarjan_sccs(edges: &[Vec<usize>]) -> (Vec<usize>, Vec<usize>) {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut scc_id = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    // Iterative Tarjan: (node, next edge position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
            if *ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*ei) {
                *ei += 1;
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    // Emit the SCC rooted at v; members get the same id
                    // and join the global callee-first order.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc_id[w] = next_scc;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.sort_unstable();
                    order.extend(members);
                    next_scc += 1;
                }
                call_stack.pop();
                if let Some(&mut (u, _)) = call_stack.last_mut() {
                    low[u] = low[u].min(low[v]);
                }
            }
        }
    }
    (scc_id, order)
}

// ---------------------------------------------------------------------------
// Closed skeletons

/// Where a virtual line really lives.
#[derive(Debug, Clone)]
struct SrcSite {
    file: String,
    line: u32,
    /// Qualified function names from the closed root down to the
    /// function containing the site.
    chain: Vec<String>,
}

/// A function's memoized bottom-up summary: its skeleton with every
/// resolvable call spliced in, operations renumbered into a local
/// virtual-line space with a side table back to real locations.
struct ClosedFunc {
    chans: Vec<ChanDef>,
    body: Vec<Node>,
    locmap: BTreeMap<u32, SrcSite>,
    nodes: usize,
    /// Number of call sites spliced (transitively); 0 means the closed
    /// skeleton is identical in power to the raw one.
    spliced: usize,
}

struct Builder<'a> {
    infos: &'a [FuncInfo],
    idx_of: &'a HashMap<(String, String), usize>,
    scc_id: &'a [usize],
    closed: &'a [Option<ClosedFunc>],
    cur_scc: usize,
    max_nodes: usize,
    next_id: u32,
    next_inst: u32,
    chans: Vec<ChanDef>,
    locmap: BTreeMap<u32, SrcSite>,
    spliced: usize,
}

impl Builder<'_> {
    fn alloc(&mut self, site: SrcSite) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.locmap.insert(id, site);
        id
    }

    /// Walks the function's own raw skeleton: real lines become virtual
    /// ids with a `[self]` chain, call edges get resolved and spliced.
    fn lift_raw(&mut self, nodes: &[Node], fi: &FuncInfo) -> Vec<Node> {
        let mut out = Vec::new();
        for n in nodes {
            self.raw_node(n, fi, &mut out);
        }
        out
    }

    fn own_site(&self, fi: &FuncInfo, line: u32) -> SrcSite {
        SrcSite {
            file: fi.skel.file.clone(),
            line,
            chain: vec![fi.qname.clone()],
        }
    }

    fn raw_node(&mut self, n: &Node, fi: &FuncInfo, out: &mut Vec<Node>) {
        match n {
            Node::Call {
                callee,
                args,
                line,
                via_go,
            } => {
                self.splice_call(callee, args, *line, *via_go, fi, out);
            }
            Node::Send { ch, line } => {
                let line = self.alloc(self.own_site(fi, *line));
                out.push(Node::Send {
                    ch: ch.clone(),
                    line,
                });
            }
            Node::Recv {
                ch,
                line,
                transient,
                ctx_done,
            } => {
                let line = self.alloc(self.own_site(fi, *line));
                out.push(Node::Recv {
                    ch: ch.clone(),
                    line,
                    transient: *transient,
                    ctx_done: *ctx_done,
                });
            }
            Node::Close { ch, line } => {
                let line = self.alloc(self.own_site(fi, *line));
                out.push(Node::Close {
                    ch: ch.clone(),
                    line,
                });
            }
            Node::Cancel { ch, line } => {
                let line = self.alloc(self.own_site(fi, *line));
                out.push(Node::Cancel {
                    ch: ch.clone(),
                    line,
                });
            }
            Node::CtxTimer { var } => out.push(Node::CtxTimer { var: var.clone() }),
            Node::Range { ch, line, body } => {
                let line = self.alloc(self.own_site(fi, *line));
                let body = self.lift_raw(body, fi);
                out.push(Node::Range {
                    ch: ch.clone(),
                    line,
                    body,
                });
            }
            Node::Select {
                arms,
                has_default,
                default,
                line,
            } => {
                let line = self.alloc(self.own_site(fi, *line));
                let arms = arms
                    .iter()
                    .map(|(op, b)| {
                        let op = match op {
                            SelectOp::Recv {
                                ch,
                                transient,
                                ctx_done,
                                line,
                            } => SelectOp::Recv {
                                ch: ch.clone(),
                                transient: *transient,
                                ctx_done: *ctx_done,
                                line: self.alloc(self.own_site(fi, *line)),
                            },
                            SelectOp::Send { ch, line } => SelectOp::Send {
                                ch: ch.clone(),
                                line: self.alloc(self.own_site(fi, *line)),
                            },
                        };
                        (op, self.lift_raw(b, fi))
                    })
                    .collect();
                let default = self.lift_raw(default, fi);
                out.push(Node::Select {
                    arms,
                    has_default: *has_default,
                    default,
                    line,
                });
            }
            Node::Spawn {
                body,
                line,
                via_wrapper,
            } => {
                let line = self.alloc(self.own_site(fi, *line));
                let body = self.lift_raw(body, fi);
                out.push(Node::Spawn {
                    body,
                    line,
                    via_wrapper: *via_wrapper,
                });
            }
            Node::Branch { arms, line } => {
                let line = self.alloc(self.own_site(fi, *line));
                let arms = arms.iter().map(|a| self.lift_raw(a, fi)).collect();
                out.push(Node::Branch { arms, line });
            }
            Node::Loop {
                body,
                bound,
                has_exit,
                line,
            } => {
                let line = self.alloc(self.own_site(fi, *line));
                let body = self.lift_raw(body, fi);
                out.push(Node::Loop {
                    body,
                    bound: *bound,
                    has_exit: *has_exit,
                    line,
                });
            }
            Node::Return { line } => {
                let line = self.alloc(self.own_site(fi, *line));
                out.push(Node::Return { line });
            }
            Node::Break => out.push(Node::Break),
            Node::Continue => out.push(Node::Continue),
        }
    }

    /// Resolves one kept call edge. Splices the callee's closed skeleton
    /// when possible; otherwise re-emits the edge opaquely.
    fn splice_call(
        &mut self,
        callee: &str,
        args: &[Option<String>],
        line: u32,
        via_go: bool,
        fi: &FuncInfo,
        out: &mut Vec<Node>,
    ) {
        let resolved = self
            .idx_of
            .get(&(fi.pkg.clone(), callee.to_string()))
            .copied();
        let target = match resolved {
            // Intra-SCC (recursive) edges stay opaque.
            Some(j) if self.scc_id[j] != self.cur_scc => self.closed[j].as_ref(),
            _ => None,
        };
        let Some(cg) = target else {
            let line = self.alloc(self.own_site(fi, line));
            out.push(Node::Call {
                callee: callee.to_string(),
                args: args.to_vec(),
                line,
                via_go,
            });
            return;
        };
        if self.next_id as usize + cg.nodes > self.max_nodes {
            // Budget exceeded: bounded blowup, edge stays opaque.
            let line = self.alloc(self.own_site(fi, line));
            out.push(Node::Call {
                callee: callee.to_string(),
                args: args.to_vec(),
                line,
                via_go,
            });
            return;
        }
        let j = resolved.expect("target implies resolved");
        let inst = self.next_inst;
        self.next_inst += 1;
        self.spliced += 1;

        // Channel renaming: parameters bind positionally to argument
        // names (already in the caller's namespace); everything else the
        // callee defines gets a fresh instantiation-suffixed copy.
        let mut rename: HashMap<String, String> = HashMap::new();
        let callee_params = &self.infos[j].params;
        for cd in &cg.chans {
            if let Some(pos) = callee_params.iter().position(|p| p == &cd.name) {
                match args.get(pos).and_then(|a| a.clone()) {
                    Some(arg) => {
                        rename.insert(cd.name.clone(), arg);
                    }
                    None => {
                        // Argument is not a simple channel identifier:
                        // bind to a fresh opaque external.
                        let fresh = format!("{}@{inst}", cd.name);
                        rename.insert(cd.name.clone(), fresh.clone());
                        self.chans.push(ChanDef {
                            name: fresh,
                            source: ChanSource::External,
                        });
                    }
                }
            } else {
                let fresh = format!("{}@{inst}", cd.name);
                rename.insert(cd.name.clone(), fresh.clone());
                self.chans.push(ChanDef {
                    name: fresh,
                    source: cd.source.clone(),
                });
            }
        }

        let prefix = fi.qname.clone();
        let mut body = self.lift_closed(&cg.body, &cg.locmap, &rename, &prefix);
        if via_go {
            let line = self.alloc(self.own_site(fi, line));
            out.push(Node::Spawn {
                body,
                line,
                via_wrapper: false,
            });
        } else {
            // Synchronous splice: the callee's returns must not cut the
            // caller's path (same rule as same-file inlining).
            strip_returns(&mut body);
            out.extend(body);
        }
    }

    fn relocated(&self, locmap: &BTreeMap<u32, SrcSite>, old: u32, prefix: &str) -> SrcSite {
        let site = locmap.get(&old).expect("closed body line has a site");
        let mut chain = Vec::with_capacity(site.chain.len() + 1);
        chain.push(prefix.to_string());
        chain.extend(site.chain.iter().cloned());
        SrcSite {
            file: site.file.clone(),
            line: site.line,
            chain,
        }
    }

    /// Instantiates a memoized closed skeleton: applies the channel
    /// rename map and relocates every virtual line into this builder's
    /// space, extending the call chains with the instantiating function.
    fn lift_closed(
        &mut self,
        nodes: &[Node],
        locmap: &BTreeMap<u32, SrcSite>,
        rename: &HashMap<String, String>,
        prefix: &str,
    ) -> Vec<Node> {
        let ren = |ch: &Option<String>| -> Option<String> {
            ch.as_ref()
                .map(|c| rename.get(c).cloned().unwrap_or_else(|| c.clone()))
        };
        let mut out = Vec::new();
        for n in nodes {
            let node = match n {
                Node::Send { ch, line } => Node::Send {
                    ch: ren(ch),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                },
                Node::Recv {
                    ch,
                    line,
                    transient,
                    ctx_done,
                } => Node::Recv {
                    ch: ren(ch),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                    transient: *transient,
                    ctx_done: *ctx_done,
                },
                Node::Close { ch, line } => Node::Close {
                    ch: ren(ch),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                },
                Node::Cancel { ch, line } => Node::Cancel {
                    ch: ren(ch),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                },
                Node::CtxTimer { var } => Node::CtxTimer {
                    var: rename.get(var).cloned().unwrap_or_else(|| var.clone()),
                },
                Node::Range { ch, line, body } => Node::Range {
                    ch: ren(ch),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                    body: self.lift_closed(body, locmap, rename, prefix),
                },
                Node::Select {
                    arms,
                    has_default,
                    default,
                    line,
                } => Node::Select {
                    arms: arms
                        .iter()
                        .map(|(op, b)| {
                            let op = match op {
                                crate::skeleton::SelectOp::Recv {
                                    ch,
                                    transient,
                                    ctx_done,
                                    line,
                                } => crate::skeleton::SelectOp::Recv {
                                    ch: ren(ch),
                                    transient: *transient,
                                    ctx_done: *ctx_done,
                                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                                },
                                crate::skeleton::SelectOp::Send { ch, line } => {
                                    crate::skeleton::SelectOp::Send {
                                        ch: ren(ch),
                                        line: self.alloc(self.relocated(locmap, *line, prefix)),
                                    }
                                }
                            };
                            (op, self.lift_closed(b, locmap, rename, prefix))
                        })
                        .collect(),
                    has_default: *has_default,
                    default: self.lift_closed(default, locmap, rename, prefix),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                },
                Node::Spawn {
                    body,
                    line,
                    via_wrapper,
                } => Node::Spawn {
                    body: self.lift_closed(body, locmap, rename, prefix),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                    via_wrapper: *via_wrapper,
                },
                Node::Branch { arms, line } => Node::Branch {
                    arms: arms
                        .iter()
                        .map(|a| self.lift_closed(a, locmap, rename, prefix))
                        .collect(),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                },
                Node::Loop {
                    body,
                    bound,
                    has_exit,
                    line,
                } => Node::Loop {
                    body: self.lift_closed(body, locmap, rename, prefix),
                    bound: *bound,
                    has_exit: *has_exit,
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                },
                Node::Return { line } => Node::Return {
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                },
                Node::Break => Node::Break,
                Node::Continue => Node::Continue,
                // Calls surviving inside a closed body are unresolvable
                // or recursive; re-emit with remapped args.
                Node::Call {
                    callee,
                    args,
                    line,
                    via_go,
                } => Node::Call {
                    callee: callee.clone(),
                    args: args.iter().map(&ren).collect(),
                    line: self.alloc(self.relocated(locmap, *line, prefix)),
                    via_go: *via_go,
                },
            };
            out.push(node);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(sources: &[(&str, &str)]) -> Vec<Finding> {
        let srcs: Vec<(String, String)> = sources
            .iter()
            .map(|(s, p)| (s.to_string(), p.to_string()))
            .collect();
        let prog = Program::from_sources(&srcs).expect("parses");
        Interproc::new().analyze_program(&prog)
    }

    // A handshake completes, then the caller abandons the result channel
    // on an early-return branch; the callee's result send blocks forever.
    // The guard receive keeps the truth site unreachable under
    // modelcheck's closed-world view of parameter channels.
    const HANDOFF_MAIN: &str = r#"
package p

func Scenario(fail bool) {
	ready := make(chan int)
	out := make(chan int)
	go waitAndSend(ready, out)
	ready <- 1
	if fail {
		return
	}
	<-out
}
"#;
    const HANDOFF_HELPER: &str = r#"
package p

func waitAndSend(ready chan int, out chan int) {
	<-ready
	out <- 1
}
"#;

    #[test]
    fn cross_file_abandoned_result_send_found_with_witness() {
        let f = analyze(&[(HANDOFF_MAIN, "p/main.go"), (HANDOFF_HELPER, "p/helper.go")]);
        let hit = f
            .iter()
            .find(|x| x.kind == FindingKind::BlockedSend && x.loc.file.as_ref() == "p/helper.go")
            .unwrap_or_else(|| panic!("expected blocked send in helper, got {f:?}"));
        assert_eq!(hit.loc.line, 6);
        assert!(
            hit.message.contains("p.Scenario -> p.waitAndSend"),
            "witness path missing: {}",
            hit.message
        );
        // The channel is reported under its caller-side name.
        assert!(hit.message.contains("`out`"), "message: {}", hit.message);
    }

    #[test]
    fn baselines_miss_what_interproc_reports() {
        use crate::{AbsInt, ModelCheck, PathCheck};
        for (src, path) in [(HANDOFF_MAIN, "p/main.go"), (HANDOFF_HELPER, "p/helper.go")] {
            let file = minigo::parse_file(src, path).expect("parse");
            for findings in [
                PathCheck::new().analyze_file(&file),
                AbsInt::new().analyze_file(&file),
                ModelCheck::new().analyze_file(&file),
            ] {
                assert!(
                    !findings
                        .iter()
                        .any(|x| x.loc.file.as_ref() == "p/helper.go" && x.loc.line == 6),
                    "an intraprocedural baseline saw the cross-file site: {findings:?}"
                );
            }
        }
    }

    #[test]
    fn intraprocedural_findings_are_subtracted() {
        // Same leak, but fully visible in one function: pathcheck's
        // territory, not interproc's.
        let src = r#"
package p

func Scenario(fail bool) {
	ch := make(chan int)
	go func() {
		<-in
	}()
	if fail {
		return
	}
	ch <- 1
}
"#;
        let f = analyze(&[(src, "p/one.go")]);
        assert!(f.is_empty(), "no calls spliced, nothing to report: {f:?}");
    }

    #[test]
    fn benign_cross_file_drain_with_close_is_silent() {
        let main = r#"
package p

func Ok(items int) {
	ch := make(chan int)
	go drainAll(ch)
	for i := 0; i < items; i++ {
		ch <- i
	}
	close(ch)
}
"#;
        let helper = r#"
package p

func drainAll(in chan int) {
	for item := range in {
		sim.Work(item)
	}
}
"#;
        let f = analyze(&[(main, "p/main.go"), (helper, "p/helper.go")]);
        assert!(f.is_empty(), "closed pipeline must stay silent: {f:?}");
    }

    #[test]
    fn recursion_stays_bounded_and_silent() {
        let src = r#"
package p

func Ping(ch chan int, n int) {
	go Pong(ch, n)
	<-ch
}

func Pong(ch chan int, n int) {
	ch <- 1
	Ping(ch, n)
}
"#;
        // Ping/Pong form an SCC: edges inside it stay opaque, analysis
        // terminates, and param-only channels produce no findings.
        let f = analyze(&[(src, "p/rec.go")]);
        assert!(
            f.is_empty(),
            "recursive cycle must not loop or report: {f:?}"
        );
    }

    #[test]
    fn fanout_through_sync_helper_found_at_helper_site() {
        let main = r#"
package p

func Gather(n int) {
	ch := make(chan int)
	startProducers(ch, n)
	first := <-ch
	_ = first
}
"#;
        let helper = r#"
package p

func startProducers(out chan int, n int) {
	for i := 0; i < n; i++ {
		go func() {
			out <- i
		}()
	}
}
"#;
        let f = analyze(&[(main, "p/main.go"), (helper, "p/helper.go")]);
        assert!(
            f.iter().any(|x| {
                x.kind == FindingKind::BlockedSend
                    && x.loc.file.as_ref() == "p/helper.go"
                    && x.loc.line == 7
            }),
            "expected blocked send inside the helper's spawned closure: {f:?}"
        );
    }
}
