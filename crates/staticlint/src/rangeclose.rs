//! The range-close linter from the paper's conclusions (Section VIII):
//! reports `for range ch` loops over *lexically scoped* channels that are
//! never closed anywhere in the function (including deferred closes and
//! spawned closures).
//!
//! This is the lightweight, targeted static check the paper proposes as
//! future work after observing that unclosed range loops cause 42% of
//! channel-receive leaks.

use std::collections::HashSet;

use gosim::Loc;
use minigo::ast::File;

use crate::findings::{Analyzer, Finding, FindingKind};
use crate::skeleton::{extract_file, ChanSource, ExtractOptions, Node, Skeleton};

/// The range-close linter.
#[derive(Debug, Clone, Default)]
pub struct RangeClose {
    /// Extraction options; wrappers are followed by default here because
    /// the linter is ours, not a naive baseline.
    pub opts: Option<ExtractOptions>,
}

impl RangeClose {
    /// Creates the linter with dynamic-pipeline-grade extraction
    /// (wrappers followed).
    pub fn new() -> Self {
        RangeClose {
            opts: Some(ExtractOptions {
                follow_wrappers: true,
                inline_named_calls: true,
                keep_calls: false,
            }),
        }
    }
}

fn collect_closed<'s>(nodes: &'s [Node], closed: &mut HashSet<&'s str>) {
    for n in nodes {
        match n {
            Node::Close { ch: Some(c), .. } | Node::Cancel { ch: Some(c), .. } => {
                closed.insert(c);
            }
            Node::Close { ch: None, .. } | Node::Cancel { ch: None, .. } => {}
            Node::Branch { arms, .. } => {
                for a in arms {
                    collect_closed(a, closed);
                }
            }
            Node::Select { arms, default, .. } => {
                for (_, b) in arms {
                    collect_closed(b, closed);
                }
                collect_closed(default, closed);
            }
            Node::Loop { body, .. } | Node::Range { body, .. } | Node::Spawn { body, .. } => {
                collect_closed(body, closed);
            }
            _ => {}
        }
    }
}

fn collect_ranges<'s>(nodes: &'s [Node], out: &mut Vec<(&'s str, u32)>) {
    for n in nodes {
        match n {
            Node::Range {
                ch: Some(c),
                line,
                body,
            } => {
                out.push((c, *line));
                collect_ranges(body, out);
            }
            Node::Range { ch: None, body, .. } => collect_ranges(body, out),
            Node::Branch { arms, .. } => {
                for a in arms {
                    collect_ranges(a, out);
                }
            }
            Node::Select { arms, default, .. } => {
                for (_, b) in arms {
                    collect_ranges(b, out);
                }
                collect_ranges(default, out);
            }
            Node::Loop { body, .. } | Node::Spawn { body, .. } => collect_ranges(body, out),
            _ => {}
        }
    }
}

fn lint_skeleton(s: &Skeleton) -> Vec<Finding> {
    let mut closed = HashSet::new();
    collect_closed(&s.body, &mut closed);
    let mut ranges = Vec::new();
    collect_ranges(&s.body, &mut ranges);

    ranges
        .into_iter()
        .filter(|(ch, _)| {
            // Only lexically scoped channels: the linter stays silent on
            // channels it cannot see the full lifetime of.
            s.chans
                .iter()
                .any(|c| c.name == *ch && matches!(c.source, ChanSource::Local { .. }))
        })
        .filter(|(ch, _)| !closed.contains(ch))
        .map(|(ch, line)| Finding {
            tool: "rangeclose",
            kind: FindingKind::UnclosedRange,
            loc: Loc::new(s.file.clone(), line),
            func: s.func.clone(),
            message: format!(
                "`for range {ch}` but `close({ch})` is never called in {}",
                s.func
            ),
        })
        .collect()
}

impl Analyzer for RangeClose {
    fn name(&self) -> &'static str {
        "rangeclose"
    }

    fn analyze_file(&self, file: &File) -> Vec<Finding> {
        let opts = self.opts.clone().unwrap_or_default();
        extract_file(file, &opts)
            .iter()
            .flat_map(lint_skeleton)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Finding> {
        let file = minigo::parse_file(src, "t.go").unwrap();
        RangeClose::new().analyze_file(&file)
    }

    #[test]
    fn reports_listing3() {
        let findings = lint(
            r#"
package p

func F(workers int, items int) {
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for item := range ch {
				sim.Work(item)
			}
		}()
	}
	for i := 0; i < items; i++ {
		ch <- i
	}
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, FindingKind::UnclosedRange);
        assert_eq!(findings[0].loc.line, 8);
    }

    #[test]
    fn silent_when_closed_anywhere() {
        let findings = lint(
            r#"
package p

func F() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			sim.Work(v)
		}
	}()
	ch <- 1
	close(ch)
}
"#,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn silent_when_deferred_close() {
        let findings = lint(
            r#"
package p

func F() {
	ch := make(chan int)
	defer close(ch)
	go func() {
		for v := range ch {
			sim.Work(v)
		}
	}()
	ch <- 1
}
"#,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn silent_on_external_channels() {
        // The linter only judges lexically scoped channels.
        let findings = lint(
            r#"
package p

func Consume(ch chan int) {
	for v := range ch {
		sim.Work(v)
	}
}
"#,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn never_closed_producer_in_spawned_sender_is_reported() {
        // Producer runs in a goroutine, consumer ranges inline — still a
        // missing close, reported at the range line.
        let findings = lint(
            r#"
package p

func F(items int) {
	ch := make(chan int)
	go func() {
		for i := 0; i < items; i++ {
			ch <- i
		}
	}()
	for v := range ch {
		sim.Work(v)
	}
}
"#,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].loc.line, 11);
    }

    #[test]
    fn conditionally_closed_producer_is_accepted() {
        // The lint is deliberately path-insensitive: a close on any
        // branch counts as closed. Flagging conditional closes would
        // trade the check's near-zero false-positive rate for a
        // path-feasibility problem the heavier passes already own.
        let findings = lint(
            r#"
package p

func F(ok bool) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			sim.Work(v)
		}
	}()
	ch <- 1
	if ok {
		close(ch)
	}
}
"#,
        );
        assert!(findings.is_empty());
    }

    #[test]
    fn corpus_unclosed_range_round_trips_and_closed_twin_is_silent() {
        use corpus::patterns::{render_benign, render_leaky, BenignPattern, LeakPattern};
        let mut rng = gosim::rng::SplitMix64::new(42);

        let leaky = render_leaky(LeakPattern::UnclosedRange, "pkg", 3, &mut rng);
        let file = minigo::parse_file(&leaky.source, &leaky.path).unwrap();
        let findings = RangeClose::new().analyze_file(&file);
        for site in &leaky.truth {
            assert!(
                findings
                    .iter()
                    .any(|f| f.loc.file.as_ref() == site.file && f.loc.line == site.line),
                "rangeclose missed corpus truth {}:{}; findings: {findings:?}",
                site.file,
                site.line
            );
        }

        let benign = render_benign(BenignPattern::ClosedPipeline, "pkg", 3, &mut rng);
        let file = minigo::parse_file(&benign.source, &benign.path).unwrap();
        assert!(
            RangeClose::new().analyze_file(&file).is_empty(),
            "closed twin must stay silent"
        );
    }
}
