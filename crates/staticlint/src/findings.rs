//! Common finding model shared by all analyzers, plus the [`Analyzer`]
//! trait the evaluation harness (Table III) runs against.

use std::fmt;

use gosim::Loc;
use minigo::ast::File;
use serde::{Deserialize, Serialize};

/// What kind of blocking defect a finding claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FindingKind {
    /// A send that may block forever.
    BlockedSend,
    /// A receive that may block forever.
    BlockedRecv,
    /// A `select` that may block forever.
    BlockedSelect,
    /// A `for range ch` whose channel may never be closed.
    UnclosedRange,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FindingKind::BlockedSend => "blocked send",
            FindingKind::BlockedRecv => "blocked receive",
            FindingKind::BlockedSelect => "blocked select",
            FindingKind::UnclosedRange => "range over unclosed channel",
        };
        write!(f, "{s}")
    }
}

/// One static-analysis alert.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Finding {
    /// Tool that produced the alert.
    pub tool: &'static str,
    /// Defect kind.
    pub kind: FindingKind,
    /// Location of the (potentially) blocking operation.
    pub loc: Loc,
    /// Function the operation lives in.
    pub func: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {} in {}: {}",
            self.tool, self.kind, self.loc, self.func, self.message
        )
    }
}

/// A static partial-deadlock analyzer over mini-Go files.
pub trait Analyzer {
    /// Short tool name (used in Table III rows).
    fn name(&self) -> &'static str;

    /// Analyzes one file and returns all alerts.
    fn analyze_file(&self, file: &File) -> Vec<Finding>;

    /// Analyzes many files (a "package"/corpus slice).
    fn analyze_files(&self, files: &[File]) -> Vec<Finding> {
        files.iter().flat_map(|f| self.analyze_file(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_carries_everything() {
        let f = Finding {
            tool: "pathcheck",
            kind: FindingKind::BlockedSend,
            loc: Loc::new("a.go", 8),
            func: "p.F".into(),
            message: "sender may find no receiver".into(),
        };
        let s = f.to_string();
        assert!(s.contains("pathcheck"));
        assert!(s.contains("blocked send"));
        assert!(s.contains("a.go:8"));
        assert!(s.contains("p.F"));
    }
}
