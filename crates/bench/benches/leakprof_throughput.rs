//! Section V-B reproduction: LeakProf analysis throughput.
//!
//! The paper analyzes ~200K goroutine profiles in under a minute on a
//! 48-core box. These benches measure profiles/second of the analysis
//! pipeline (sequential and parallel) on synthetic profiles shaped like
//! production ones, so the wall-clock claim can be extrapolated.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gosim::{Frame, Gid, GoStatus, GoroutineProfile, GoroutineRecord, Loc};
use leakprof::{aggregate, aggregate_parallel, Config, SourceIndex};
use std::hint::black_box;

fn synth_profile(instance: usize, goroutines: usize) -> GoroutineProfile {
    let mut gs = Vec::with_capacity(goroutines);
    for g in 0..goroutines {
        let (disc, file, line) = match g % 4 {
            0 => ("runtime.chansend1", "pay/a.go", 8),
            1 => ("runtime.chanrecv1", "geo/b.go", 21),
            2 => ("runtime.selectgo", "msg/c.go", 33),
            _ => ("runtime.netpoll", "io/d.go", 2), // non-channel park
        };
        gs.push(GoroutineRecord {
            gid: Gid(g as u64),
            name: "svc.handler$1".into(),
            status: GoStatus::ChanSend { nil_chan: false },
            stack: vec![
                Frame::runtime("runtime.gopark"),
                Frame::runtime(disc),
                Frame::new("svc.handler$1", Loc::new(file, line)),
                Frame::new("svc.handler", Loc::new(file, 1)),
            ],
            created_by: Frame::new("svc.Serve", Loc::new(file, 1)),
            wait_ticks: 100,
            retained_bytes: 8192,
        });
    }
    GoroutineProfile {
        instance: format!("inst-{instance}"),
        captured_at: 1,
        goroutines: gs,
    }
}

fn bench_throughput(c: &mut Criterion) {
    let cfg = Config {
        threshold: 100,
        ast_filter: false,
        top_n: 10,
    };
    let index = SourceIndex::new();
    let mut group = c.benchmark_group("leakprof");
    for profiles in [200usize, 1_000] {
        // ~2000 goroutines per process, the paper's median.
        let data: Vec<GoroutineProfile> = (0..profiles).map(|i| synth_profile(i, 2_000)).collect();
        group.throughput(Throughput::Elements(profiles as u64));
        group.bench_with_input(BenchmarkId::new("sequential", profiles), &data, |b, d| {
            b.iter(|| black_box(aggregate(d, &cfg, &index).len()))
        });
        group.bench_with_input(BenchmarkId::new("parallel8", profiles), &data, |b, d| {
            b.iter(|| black_box(aggregate_parallel(d, &cfg, &index, 8).len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_throughput
}
criterion_main!(benches);
