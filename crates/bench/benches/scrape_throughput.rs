//! Collector scrape throughput: profiles/second over loopback TCP.
//!
//! The paper's LeakProf sweeps a fleet daily; a practical collection box
//! must pull thousands of profiles per sweep. This bench serves a real
//! demo fleet behind one loopback listener and measures full
//! scatter-gather cycles — connect, GET, parse — with the bounded worker
//! pool, at two fleet sizes and two pool widths.

use collector::{DemoFleet, ScrapeConfig, Scraper};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_scrape(c: &mut Criterion) {
    let mut group = c.benchmark_group("scrape");
    for &instances in &[25usize, 100] {
        let demo = DemoFleet::build(instances, 1, 7);
        let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
        let targets = demo.targets(server.addr());
        group.throughput(Throughput::Elements(targets.len() as u64));
        for &workers in &[1usize, 16] {
            let scraper = Scraper::new(ScrapeConfig {
                workers,
                ..ScrapeConfig::default()
            });
            group.bench_with_input(
                BenchmarkId::new(format!("workers{workers}"), instances),
                &targets,
                |b, t| {
                    b.iter(|| {
                        let cycle = scraper.scrape_cycle(t);
                        assert_eq!(cycle.errors.len(), 0);
                        black_box(cycle.profiles.len())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scrape
}
criterion_main!(benches);
