//! Substrate microbenchmarks: throughput of the simulated runtime's
//! core operations (spawn, unbuffered rendezvous, buffered transfer,
//! select). These bound the cost of every higher-level experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gosim::script::{fnb, Expr, Prog};
use gosim::Runtime;
use std::hint::black_box;

fn pingpong(n: i64, cap: usize) -> Prog {
    Prog::build(move |p| {
        p.func(fnb("main", "bench.go").body(|b| {
            b.make_chan("ch", cap, 2);
            b.go_closure(3, |g| {
                g.for_n("i", Expr::Lit(gosim::Val::Int(n)), 4, |l| {
                    l.send("ch", Expr::var("i"), 5);
                });
                g.close("ch", 6);
            });
            b.for_range(Some("v"), "ch", 8, |_| {});
        }));
    })
}

fn spawn_wave(n: i64) -> Prog {
    Prog::build(move |p| {
        p.func(fnb("main", "bench.go").body(|b| {
            b.make_wg("wg", 1);
            b.wg_add("wg", Expr::Lit(gosim::Val::Int(n)), 2);
            b.for_n("i", Expr::Lit(gosim::Val::Int(n)), 3, |l| {
                l.go_closure(4, |g| {
                    g.wg_done("wg", 5);
                });
            });
            b.wg_wait("wg", 7);
        }));
    })
}

fn select_storm(n: i64) -> Prog {
    Prog::build(move |p| {
        p.func(fnb("main", "bench.go").body(|b| {
            b.make_chan("a", 1, 2);
            b.make_chan("bch", 1, 3);
            b.go_closure(4, |g| {
                g.for_n("i", Expr::Lit(gosim::Val::Int(n)), 5, |l| {
                    l.send("a", Expr::var("i"), 6);
                });
            });
            b.go_closure(8, |g| {
                g.for_n("i", Expr::Lit(gosim::Val::Int(n)), 9, |l| {
                    l.send("bch", Expr::var("i"), 10);
                });
            });
            b.for_n("j", Expr::Lit(gosim::Val::Int(2 * n)), 12, |l| {
                l.select(13, |s| {
                    s.recv_arm(Some("x"), "a", 14, |_| {});
                    s.recv_arm(Some("y"), "bch", 15, |_| {});
                });
            });
        }));
    })
}

fn run(prog: &Prog) -> u64 {
    let mut rt = Runtime::with_seed(0);
    prog.spawn_main(&mut rt);
    rt.run_until_blocked(10_000_000);
    rt.stats().msgs_transferred
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    const N: i64 = 10_000;
    group.throughput(Throughput::Elements(N as u64));
    for cap in [0usize, 64] {
        let prog = pingpong(N, cap);
        group.bench_with_input(BenchmarkId::new("chan_transfer", cap), &prog, |b, p| {
            b.iter(|| black_box(run(p)))
        });
    }
    let sp = spawn_wave(N);
    group.bench_function("spawn_join_10k", |b| b.iter(|| black_box(run(&sp))));
    let sel = select_storm(N / 2);
    group.bench_function("select_10k", |b| b.iter(|| black_box(run(&sel))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ops
}
criterion_main!(benches);
