//! Section IV-B reproduction: goleak overhead.
//!
//! The paper measured statistically insignificant overhead on ordinary
//! tests, a 4.6x-7.4x pathological worst case when a test does nothing
//! but leak goroutines, and 200-400 µs per call-stack unwind. These
//! benches measure the same quantities for this implementation:
//!
//! * `test_without_goleak` vs `test_with_goleak` on a normal test;
//! * `pathological/N`: tests that only create N leaked goroutines,
//!   verified at the end (overhead grows with N);
//! * `stack_walk`: per-goroutine cost of a profile snapshot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goleak::{find, Options};
use gosim::script::{fnb, Expr, Prog};
use gosim::Runtime;
use std::hint::black_box;

fn normal_test_prog() -> Prog {
    Prog::build(|p| {
        p.func(fnb("pkg.TestNormal", "pkg/n_test.go").body(|b| {
            b.make_chan("ch", 0, 2);
            b.go_closure(3, |g| {
                g.for_n("i", Expr::int(50), 4, |l| {
                    l.send("ch", Expr::var("i"), 5);
                });
                g.close("ch", 6);
            });
            b.for_range(Some("v"), "ch", 8, |l| {
                l.work(Expr::int(1), 9);
            });
        }));
    })
}

fn pathological_prog(n: i64) -> Prog {
    Prog::build(move |p| {
        p.func(fnb("pkg.TestLeaks", "pkg/l_test.go").body(|b| {
            b.make_chan("dead", 0, 2);
            b.for_n("i", Expr::Lit(gosim::Val::Int(n)), 3, |l| {
                l.go_closure(4, |g| {
                    g.recv("dead", 5);
                });
            });
        }));
    })
}

fn run_test(prog: &Prog, with_goleak: bool) -> usize {
    let mut rt = Runtime::with_seed(1);
    prog.spawn_func(&mut rt, prog.func_names().next().unwrap(), vec![])
        .expect("test entry");
    rt.run_until_blocked(1_000_000);
    if with_goleak {
        find(&rt, &Options::default()).len()
    } else {
        rt.live_count()
    }
}

fn bench_normal(c: &mut Criterion) {
    let prog = normal_test_prog();
    c.bench_function("normal_test/without_goleak", |b| {
        b.iter(|| black_box(run_test(&prog, false)))
    });
    c.bench_function("normal_test/with_goleak", |b| {
        b.iter(|| black_box(run_test(&prog, true)))
    });
}

fn bench_pathological(c: &mut Criterion) {
    let mut group = c.benchmark_group("pathological");
    for n in [100i64, 1_000, 5_000] {
        let prog = pathological_prog(n);
        group.bench_with_input(BenchmarkId::new("without_goleak", n), &prog, |b, p| {
            b.iter(|| black_box(run_test(p, false)))
        });
        group.bench_with_input(BenchmarkId::new("with_goleak", n), &prog, |b, p| {
            b.iter(|| black_box(run_test(p, true)))
        });
    }
    group.finish();
}

fn bench_stack_walk(c: &mut Criterion) {
    // Pre-build a runtime with 1000 leaked goroutines; measure the cost
    // of one profile capture per goroutine (the paper: 200-400 µs per
    // unwind of real stacks; ours are synthetic and far cheaper, but the
    // scaling with goroutine count is the comparable shape).
    let prog = pathological_prog(1_000);
    let mut rt = Runtime::with_seed(1);
    prog.spawn_func(&mut rt, "pkg.TestLeaks", vec![]).unwrap();
    rt.run_until_blocked(1_000_000);
    c.bench_function("stack_walk/profile_1000_goroutines", |b| {
        b.iter(|| black_box(rt.goroutine_profile("bench").len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_normal, bench_pathological, bench_stack_walk
}
criterion_main!(benches);
