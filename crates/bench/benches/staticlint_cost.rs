//! Table III offline-cost column: analysis time of each static baseline
//! (and the range linter) over a fixed corpus slice, versus the dynamic
//! pipeline's test-execution cost on the same slice.

use collector::{StaticTier, StaticTierConfig};
use corpus::{Corpus, CorpusConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use leakcore::ci::{CiConfig, CiGate};
use staticlint::{AbsInt, Analyzer, Interproc, ModelCheck, PathCheck, RangeClose};
use std::hint::black_box;

fn slice() -> Vec<minigo::ast::File> {
    let repo = Corpus::generate(CorpusConfig {
        packages: 120,
        leak_rate: 0.3,
        seed: 0xC057,
        ..CorpusConfig::default()
    });
    repo.packages.iter().flat_map(|p| p.parse()).collect()
}

fn bench_static(c: &mut Criterion) {
    let files = slice();
    let mut group = c.benchmark_group("staticlint");
    group.bench_function("pathcheck", |b| {
        let a = PathCheck::new();
        b.iter(|| black_box(a.analyze_files(&files).len()))
    });
    group.bench_function("absint", |b| {
        let a = AbsInt::new();
        b.iter(|| black_box(a.analyze_files(&files).len()))
    });
    group.bench_function("modelcheck", |b| {
        let a = ModelCheck::new();
        b.iter(|| black_box(a.analyze_files(&files).len()))
    });
    group.bench_function("rangeclose", |b| {
        let a = RangeClose::new();
        b.iter(|| black_box(a.analyze_files(&files).len()))
    });
    group.bench_function("interproc", |b| {
        let a = Interproc::new();
        b.iter(|| black_box(a.analyze_files(&files).len()))
    });
    group.finish();
}

/// The daemon's online filter: a cold verdict-cache sync (parse +
/// analyze every file) versus the warm steady state (fingerprint check
/// only) over the same corpus slice on disk.
fn bench_verdict_cache(c: &mut Criterion) {
    let repo = Corpus::generate(CorpusConfig {
        packages: 120,
        leak_rate: 0.3,
        seed: 0xC057,
        ..CorpusConfig::default()
    });
    let root = std::env::temp_dir().join(format!("leakprofd-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let src = root.join("src");
    for pkg in &repo.packages {
        for f in &pkg.files {
            let dest = src.join(&f.path);
            std::fs::create_dir_all(dest.parent().expect("pkg dir")).expect("mkdir");
            std::fs::write(dest, &f.text).expect("write source");
        }
    }
    let config = StaticTierConfig::in_state_dir(src, &root);

    let mut group = c.benchmark_group("verdict_cache");
    group.bench_function("cold_sync", |b| {
        b.iter(|| {
            let _ = std::fs::remove_file(&config.cache_path);
            let mut tier = StaticTier::open(config.clone()).expect("open");
            black_box(tier.sync().expect("sync").files())
        })
    });
    group.bench_function("warm_sync", |b| {
        let mut tier = StaticTier::open(config.clone()).expect("open");
        tier.sync().expect("prime");
        b.iter(|| black_box(tier.sync().expect("sync").files()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&root);
}

fn bench_dynamic_gate(c: &mut Criterion) {
    let repo = Corpus::generate(CorpusConfig {
        packages: 120,
        leak_rate: 0.3,
        seed: 0xC057,
        ..CorpusConfig::default()
    });
    let gate = CiGate::new(CiConfig::default());
    c.bench_function("dynamic_gate/run_all_tests", |b| {
        b.iter(|| {
            let mut leaks = 0usize;
            for pkg in &repo.packages {
                for o in gate.run_package(pkg) {
                    leaks += o.verdict.new_leaks.len();
                }
            }
            black_box(leaks)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_static, bench_verdict_cache, bench_dynamic_gate
}
criterion_main!(benches);
