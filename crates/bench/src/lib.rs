//! Shared utilities for the experiment binaries: results persistence and
//! quick ASCII plotting.
//!
//! Every `cargo run -p bench --bin <experiment>` writes its machine-
//! readable output (CSV/JSON) under `results/` at the workspace root and
//! prints a human-readable rendering, so EXPERIMENTS.md can cite both.

#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Resolves the workspace `results/` directory (creating it if needed).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    let _ = fs::create_dir_all(&p);
    p
}

/// Writes an artifact into `results/` and reports the path on stdout.
pub fn save(name: &str, content: &str) {
    let path = results_dir().join(name);
    fs::write(&path, content).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("[saved {}]", path.display());
}

/// Renders an ASCII line plot of one or more labelled series sharing an
/// x axis. Intended for quick shape inspection in a terminal; the CSV
/// artifact carries the precise numbers.
pub fn ascii_plot(
    title: &str,
    series: &[(&str, &[(f64, f64)])],
    width: usize,
    height: usize,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "── {title} ──");
    let all: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    if all.is_empty() {
        return out;
    }
    let (xmin, xmax) = all.iter().fold((f64::MAX, f64::MIN), |(a, b), (x, _)| {
        (a.min(*x), b.max(*x))
    });
    let (ymin, ymax) = all.iter().fold((f64::MAX, f64::MIN), |(a, b), (_, y)| {
        (a.min(*y), b.max(*y))
    });
    let yspan = (ymax - ymin).max(1e-12);
    let xspan = (xmax - xmin).max(1e-12);
    let marks = ['*', '+', 'o', 'x', '#'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        for (x, y) in pts.iter() {
            let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
            let row = (((ymax - y) / yspan) * (height - 1) as f64).round() as usize;
            grid[row.min(height - 1)][col.min(width - 1)] = marks[si % marks.len()];
        }
    }
    let _ = writeln!(out, "{ymax:>12.3e} ┐");
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "{:>12} │{line}", "");
    }
    let _ = writeln!(out, "{ymin:>12.3e} ┘ x: {xmin:.2} .. {xmax:.2}");
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "   {} = {label}", marks[si % marks.len()]);
    }
    out
}

/// Formats bytes human-readably.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512.00 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert!(human_bytes(3 * 1024 * 1024 * 1024).contains("GiB"));
    }

    #[test]
    fn ascii_plot_contains_series_markers() {
        let s1 = [(0.0, 1.0), (1.0, 2.0)];
        let s2 = [(0.0, 2.0), (1.0, 1.0)];
        let p = ascii_plot("t", &[("a", &s1), ("b", &s2)], 20, 6);
        assert!(p.contains('*') && p.contains('+'));
        assert!(p.contains("t"));
    }
}
