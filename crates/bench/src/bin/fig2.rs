//! Fig 2 reproduction: CPU consumption of a production microservice
//! before and after fixing a partial deadlock (paper: max utilization
//! down 34%, average down 16.5%, with diurnal crests and troughs).

use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};

fn main() {
    const FIX_DAY: u32 = 7;
    const DAYS: u32 = 14;
    let mut f = Fleet::new(FleetConfig {
        ticks_per_day: 96,
        seed: 0xF162,
        ..FleetConfig::default()
    });
    let mut spec = default_service(
        "svc",
        4,
        handlers::contract_leak("svc", 20_000),
        handlers::contract_fixed("svc", 20_000),
    );
    spec.arg = HandlerArg::False; // leaky handler never calls Stop
    spec.leak_activation = 0.5;
    spec.fix_day = Some(FIX_DAY);
    spec.cpu_per_goroutine = 3.3e-5;
    spec.cpu_per_mb = 7.0e-4;
    f.add_service(spec);
    f.run_days(DAYS);

    let mut csv = String::from("day,instance,cpu\n");
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
    for s in f.samples() {
        csv.push_str(&format!("{:.4},{},{:.4}\n", s.day, s.instance, s.cpu));
        series[s.instance].push((s.day, s.cpu));
    }
    let labelled: Vec<(&str, &[(f64, f64)])> =
        series.iter().map(|s| ("instance", s.as_slice())).collect();
    println!(
        "{}",
        bench::ascii_plot(
            "Fig 2: CPU utilization over days; fix deploys at day 7",
            &labelled,
            96,
            16
        )
    );

    let stats = |lo: f64, hi: f64| -> (f64, f64) {
        let xs: Vec<f64> = f
            .samples()
            .iter()
            .filter(|s| s.day >= lo && s.day < hi)
            .map(|s| s.cpu)
            .collect();
        let max = xs.iter().copied().fold(0.0, f64::max);
        let avg = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        (max, avg)
    };
    // Compare matched diurnal windows (skip the rollout day).
    let (max_b, avg_b) = stats(FIX_DAY as f64 - 3.0, FIX_DAY as f64);
    let (max_a, avg_a) = stats(FIX_DAY as f64 + 1.0, FIX_DAY as f64 + 4.0);
    let max_red = 100.0 * (1.0 - max_a / max_b);
    let avg_red = 100.0 * (1.0 - avg_a / avg_b);
    println!(
        "max CPU: {max_b:.3} -> {max_a:.3} ({max_red:.1}% reduction; paper 34%)\n\
         avg CPU: {avg_b:.3} -> {avg_a:.3} ({avg_red:.1}% reduction; paper 16.5%)"
    );
    assert!(
        max_red > 10.0,
        "fix must visibly reduce max CPU, got {max_red:.1}%"
    );
    assert!(
        max_red > avg_red,
        "GC-pacing coupling makes the crest suffer most: max {max_red:.1}% vs avg {avg_red:.1}%"
    );
    bench::save("fig2_cpu.csv", &csv);
    bench::save(
        "fig2_summary.txt",
        &format!("max_reduction_pct={max_red:.1}\navg_reduction_pct={avg_red:.1}\n"),
    );
}
