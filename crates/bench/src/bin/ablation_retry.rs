//! Ablation: goleak's retry/backoff loop.
//!
//! Without letting the runtime settle, goroutines that are merely *slow*
//! (sleeping briefly, finishing I/O) are reported as leaks. This
//! experiment measures the false-positive rate of `find` (no retries)
//! vs `find_with_retry` on tests that spawn short-lived stragglers.

use goleak::{find, find_with_retry, Options};
use gosim::script::{fnb, Expr, Prog};
use gosim::Runtime;

fn straggler_test(sleep_ticks: i64) -> Prog {
    Prog::build(move |p| {
        p.func(fnb("pkg.TestStraggler", "pkg/s_test.go").body(|b| {
            b.for_n("i", Expr::int(4), 2, |l| {
                l.go_closure(3, |g| {
                    g.sleep(Expr::Lit(gosim::Val::Int(sleep_ticks)), 4);
                });
            });
        }));
    })
}

fn main() {
    let mut table = String::from("straggler_sleep | eager_reports | with_retry_reports\n");
    let mut eager_fp_total = 0usize;
    for sleep in [1i64, 5, 10, 25, 50] {
        let prog = straggler_test(sleep);
        let mut rt = Runtime::with_seed(0);
        prog.spawn_func(&mut rt, "pkg.TestStraggler", vec![])
            .unwrap();
        rt.run_until_blocked(10_000);
        let eager = find(&rt, &Options::default()).len();
        let settled = find_with_retry(&mut rt, &Options::default()).len();
        eager_fp_total += eager;
        table.push_str(&format!("{sleep:>15} | {eager:>13} | {settled:>18}\n"));
    }
    println!("{table}");
    println!(
        "every eager report here is a false positive (the goroutines exit on their\n\
         own); the retry/backoff loop eliminates them for stragglers within the\n\
         backoff budget, which is why goleak retries before failing a test."
    );
    assert!(eager_fp_total > 0);
    bench::save("ablation_retry.txt", &table);
}
