//! Table I reproduction: distribution of packages with concurrency
//! features over the generated monorepo (scaled ~1:100 of the paper's).

use corpus::{census, Corpus, CorpusConfig};

fn main() {
    let repo = Corpus::generate(CorpusConfig::default());
    let c = census(&repo);
    let rendered = c.render_table1();
    println!("{rendered}");
    println!(
        "paper (1:1 scale): MP 4,699 pkgs | SM 6,627 | MP∩SM 2,416 | total 119,816; \
         this corpus is generated at ~1:100 with the same proportions."
    );
    let json = serde_json::to_string_pretty(&c).expect("census serializes");
    bench::save("table1_census.json", &json);
    bench::save("table1.txt", &rendered);
}
