//! Bench: push-mode ingestion at fleet scale.
//!
//! The paper's deployment has ~200K instances reporting in; a pull
//! scraper cannot dial that many targets per cycle, so the push tier
//! must absorb the fan-in. This experiment drives fleets of synthetic
//! pushing instances (2 500 → 10 000) against one daemon whose ingest
//! queue is provisioned at a *fixed* size — an operator constant, not
//! a function of the fleet — so every fleet runs under sustained
//! overload: each cycle the whole fleet attempts a push, the queue
//! admits its watermark's worth, and the rest are shed with `429
//! Retry-After` pointing past the cycle boundary (those instances come
//! back next cycle with a fresher capture, which is exactly what
//! newest-wins coalescing wants). Three properties are gated and
//! written to `BENCH_push.json`:
//!
//! 1. **Sub-linear cycle latency**: admission control bounds per-cycle
//!    fold work at the queue capacity, so a 4× fleet must cost well
//!    under 4× the cycle time — shedding is what keeps the collection
//!    tier's latency from scaling with the stampede.
//! 2. **Bounded detection latency under sustained overload**: a
//!    regression injected into 1% of instances must surface in the
//!    suspect ranking within 3 cycles even while ~80% of every burst
//!    is being shed.
//! 3. **Overload differential**: a run that shed heavily and relied on
//!    pusher retries converges to a ranking byte-identical to a run
//!    that never shed, over the same final profiles.

use std::time::Instant;

use collector::{Daemon, DaemonConfig, IngestConfig, IngestTier};
use gosim::{Frame, Gid, GoStatus, GoroutineProfile, GoroutineRecord, Loc};
use leakprof::LeakProf;
use serde::Serialize;

const FLEET_SIZES: [usize; 3] = [2_500, 5_000, 10_000];
/// Ingest-queue high watermark an operator provisions for the daemon.
/// Fixed across fleet sizes: overload is the fleet outrunning *this*,
/// and the bench's claim is that cycle cost tracks this constant, not
/// the fleet.
const QUEUE_CAPACITY: usize = 2_048;
const CYCLES: usize = 5;
/// Cycle (0-based) at which the regression starts leaking.
const INJECT_AT: usize = 2;
/// Fraction of the fleet that leaks after injection: 1 in 100.
const LEAK_EVERY: usize = 100;
const LEAK_SITE: &str = "pay/checkout.go";
const DETECT_WITHIN: usize = 3;
/// Gate on t(10K)/t(2.5K): strictly sub-linear would be anything under
/// 4.0 for a 4× fleet; admission control should hold the measured
/// ratio far lower (the fold is bounded by `QUEUE_CAPACITY`), so 2.5
/// fails well before the growth drifts back toward linear.
const SUBLINEAR_GATE: f64 = 2.5;
/// Push-attempt order stride: prime, coprime to every fleet size, so
/// `i ↦ (i·STRIDE + cycle) mod fleet` is a full permutation — which
/// instances land inside the admitted prefix varies per cycle instead
/// of privileging low ids.
const STRIDE: usize = 7_919;

#[derive(Serialize)]
struct Row {
    instances: usize,
    queue_capacity: usize,
    cycle_ms: f64,
    push_ms: f64,
    admitted_per_cycle: f64,
    shed_total: u64,
    detect_cycles: Option<usize>,
}

#[derive(Serialize)]
struct Differential {
    instances: usize,
    shed_total: u64,
    identical: bool,
}

#[derive(Serialize)]
struct BenchResult {
    cycles: usize,
    inject_at: usize,
    rows: Vec<Row>,
    /// Cycle time at the largest fleet over the smallest — the gated
    /// sub-linearity ratio for a 4× fleet (must stay ≤ 2.5).
    scaling_4x: f64,
    differential: Differential,
}

/// Median of the samples — one preempted cycle (this box shares a
/// single core with the absorbers and the reaper) would drag a mean
/// far more than it drags the middle of four observations.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let mid = samples.len() / 2;
    if samples.len().is_multiple_of(2) {
        (samples[mid - 1] + samples[mid]) / 2.0
    } else {
        samples[mid]
    }
}

fn lp() -> LeakProf {
    LeakProf::new(leakprof::Config {
        threshold: 20,
        ast_filter: false,
        top_n: 10,
    })
}

/// One instance's profile for one cycle: a handful of benign blocked
/// goroutines spread over four sites (each far below the threshold even
/// accumulated over every cycle), plus — for leaking instances after
/// the injection cycle — 25 goroutines parked at the leak site, enough
/// to cross the threshold in a single profile.
fn synth_profile(instance: usize, cycle: usize, leaking: bool) -> GoroutineProfile {
    let mut gs = Vec::new();
    let mut gid = 0u64;
    let mut park = |gs: &mut Vec<GoroutineRecord>, disc: &str, file: &str, line: u32, n: usize| {
        for _ in 0..n {
            gs.push(GoroutineRecord {
                gid: Gid(gid),
                name: "svc.handler$1".into(),
                status: GoStatus::ChanSend { nil_chan: false },
                stack: vec![
                    Frame::runtime("runtime.gopark"),
                    Frame::runtime(disc),
                    Frame::new("svc.handler$1", Loc::new(file, line)),
                    Frame::new("svc.handler", Loc::new(file, 1)),
                ],
                created_by: Frame::new("svc.Serve", Loc::new(file, 1)),
                wait_ticks: 100,
                retained_bytes: 4096,
            });
            gid += 1;
        }
    };
    park(&mut gs, "runtime.chansend1", "pay/a.go", 8, 1);
    park(&mut gs, "runtime.chanrecv1", "geo/b.go", 21, 1);
    park(&mut gs, "runtime.selectgo", "msg/c.go", 33, 1);
    park(&mut gs, "runtime.netpoll", "io/d.go", 2, 8);
    if leaking {
        park(&mut gs, "runtime.chansend1", LEAK_SITE, 42, 25);
    }
    GoroutineProfile {
        instance: format!("inst-{instance:05}"),
        captured_at: 1_000 + cycle as u64,
        goroutines: gs,
    }
}

/// One overload burst: every instance attempts exactly one push, in a
/// cycle-dependent permuted order, with the absorbers paused (arrival
/// outrunning the fold — the sustained-overload shape). The queue
/// admits its watermark's worth and sheds the rest; a shed instance
/// does *not* retry within the cycle, because its `Retry-After` hint
/// points past the cycle boundary and next cycle it will push a
/// fresher capture anyway. Returns how many pushes were admitted.
fn push_burst(tier: &IngestTier, profiles: &[GoroutineProfile], cycle: usize) -> u64 {
    let n = profiles.len();
    tier.pause_absorbers(true);
    let mut admitted = 0u64;
    for i in 0..n {
        let idx = (i * STRIDE + cycle) % n;
        let body = serde_json::to_string(&profiles[idx]).expect("profile serializes");
        match tier.handle_push(body.as_bytes()).status {
            200 => admitted += 1,
            429 => {}
            other => panic!("push rejected with {other}"),
        }
    }
    tier.pause_absorbers(false);
    admitted
}

/// Pushes every profile through the real admission path, retrying shed
/// (429) pushes until the absorbers make room — the client side's
/// backoff loop with the sleeps compressed out. With `stall_first`,
/// the absorbers are paused for the opening burst (a stalled consumer),
/// so the queue hits its watermark and the burst sheds by construction.
/// The differential run uses this to land the *same* final profile set
/// through an overloaded queue and an unloaded one.
fn push_until_admitted(tier: &IngestTier, profiles: &[GoroutineProfile], stall_first: bool) {
    let mut pending: Vec<Vec<u8>> = profiles
        .iter()
        .map(|p| {
            serde_json::to_string(p)
                .expect("profile serializes")
                .into_bytes()
        })
        .collect();
    tier.pause_absorbers(stall_first);
    let mut rounds = 0u64;
    while !pending.is_empty() {
        rounds += 1;
        assert!(rounds < 100_000, "push retries are not making progress");
        let mut shed = Vec::new();
        for body in pending {
            let resp = tier.handle_push(&body);
            match resp.status {
                200 => {}
                429 => shed.push(body),
                other => panic!("push rejected with {other}"),
            }
        }
        tier.pause_absorbers(false);
        pending = shed;
        if !pending.is_empty() {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
}

/// Runs `CYCLES` burst+analyze cycles against a fleet of `instances`
/// pushers, injecting the leak at `INJECT_AT`. Returns the bench row.
fn drive_fleet(instances: usize) -> Row {
    let mut daemon = Daemon::new(
        DaemonConfig {
            telemetry: false,
            ingest: Some(IngestConfig {
                queue_capacity: QUEUE_CAPACITY,
                ..IngestConfig::default()
            }),
            ..DaemonConfig::default()
        },
        lp(),
        vec![],
    )
    .expect("daemon");
    let tier = std::sync::Arc::clone(daemon.ingest_tier().expect("tier"));

    let mut cycle_samples: Vec<f64> = Vec::new();
    let mut push_samples = Vec::new();
    let mut admitted_total = 0u64;
    let mut detect_cycles = None;
    for cycle in 0..CYCLES {
        let profiles: Vec<GoroutineProfile> = (0..instances)
            .map(|i| synth_profile(i, cycle, cycle >= INJECT_AT && i % LEAK_EVERY == 0))
            .collect();
        let t = Instant::now();
        admitted_total += push_burst(&tier, &profiles, cycle);
        assert!(
            tier.quiesce(std::time::Duration::from_secs(30)),
            "absorbers drain"
        );
        push_samples.push(t.elapsed().as_secs_f64() * 1e3);

        let t = Instant::now();
        daemon.run_cycle();
        let cycle_ms = t.elapsed().as_secs_f64() * 1e3;
        if cycle > 0 {
            // Cycle 0 pays one-time allocation warmup; skip it.
            cycle_samples.push(cycle_ms);
        }
        if detect_cycles.is_none() && cycle >= INJECT_AT {
            let seen = daemon.last_report().is_some_and(|r| {
                r.suspects
                    .iter()
                    .any(|s| s.stats.op.to_string().contains(LEAK_SITE))
            });
            if seen {
                detect_cycles = Some(cycle - INJECT_AT + 1);
            }
        }
    }
    let summary = tier.summary();
    println!(
        "fleet {instances}: cycle samples {:?} ms",
        cycle_samples
            .iter()
            .map(|ms| (ms * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    Row {
        instances,
        queue_capacity: QUEUE_CAPACITY,
        cycle_ms: median(&mut cycle_samples),
        push_ms: push_samples.iter().sum::<f64>() / push_samples.len() as f64,
        admitted_per_cycle: admitted_total as f64 / CYCLES as f64,
        shed_total: summary.shed_total,
        detect_cycles,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut table =
        String::from("instances | queue | cycle_ms | push_ms | admitted/cycle | shed | detect\n");
    for &instances in &FLEET_SIZES {
        let row = drive_fleet(instances);
        table.push_str(&format!(
            "{:>9} | {:>5} | {:>8.2} | {:>7.1} | {:>14.0} | {:>6} | {:?}\n",
            row.instances,
            row.queue_capacity,
            row.cycle_ms,
            row.push_ms,
            row.admitted_per_cycle,
            row.shed_total,
            row.detect_cycles,
        ));
        rows.push(row);
    }
    println!("{table}");

    let t_small = rows[0].cycle_ms;
    let t_large = rows[rows.len() - 1].cycle_ms;
    let scaling = t_large / t_small.max(1e-9);
    println!(
        "cycle latency: t({}) / t({}) = {scaling:.2}x for a 4x fleet",
        rows[rows.len() - 1].instances,
        rows[0].instances
    );

    // Differential: heavy shedding plus retries must converge to the
    // never-overloaded ranking over the same final profiles.
    let n = 2_000;
    let finals: Vec<GoroutineProfile> = (0..n)
        .map(|i| synth_profile(i, CYCLES, i % LEAK_EVERY == 0))
        .collect();
    let one_cycle = |capacity: usize| {
        let mut daemon = Daemon::new(
            DaemonConfig {
                telemetry: false,
                ingest: Some(IngestConfig {
                    queue_capacity: capacity,
                    ..IngestConfig::default()
                }),
                ..DaemonConfig::default()
            },
            lp(),
            vec![],
        )
        .expect("daemon");
        let tier = std::sync::Arc::clone(daemon.ingest_tier().expect("tier"));
        push_until_admitted(&tier, &finals, capacity < finals.len());
        assert!(tier.quiesce(std::time::Duration::from_secs(30)));
        daemon.run_cycle();
        let shed = tier.summary().shed_total;
        (daemon.last_report().expect("report").render(), shed)
    };
    let (unloaded, no_shed) = one_cycle(1 << 16);
    let (overloaded, shed) = one_cycle(32);
    assert_eq!(no_shed, 0, "the wide-queue run must not shed");
    let differential = Differential {
        instances: n,
        shed_total: shed,
        identical: overloaded == unloaded,
    };
    println!(
        "differential: {n} instances through a 32-slot queue shed {shed} pushes, \
         ranking identical = {}",
        differential.identical
    );

    // Gates.
    assert!(
        scaling <= SUBLINEAR_GATE,
        "cycle latency grew super-linearly in fleet size: {scaling:.2}x for 4x"
    );
    for row in &rows {
        assert!(
            row.shed_total > 0,
            "fleet {} never shed — the bench is not exercising overload",
            row.instances
        );
        let detected = row.detect_cycles.unwrap_or(usize::MAX);
        assert!(
            detected <= DETECT_WITHIN,
            "fleet {}: regression took {detected} cycles to surface (gate {DETECT_WITHIN})",
            row.instances
        );
    }
    assert!(shed > 0, "the differential run must shed");
    assert!(
        differential.identical,
        "overloaded ranking diverged from the unloaded baseline"
    );

    let result = BenchResult {
        cycles: CYCLES,
        inject_at: INJECT_AT,
        rows,
        scaling_4x: scaling,
        differential,
    };
    bench::save(
        "BENCH_push.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
}
