//! Fig 5 reproduction: weekly inflow of new goroutine leaks over a
//! 25-week window with the GOLEAK gate deploying at week 22.

use leakcore::backtest::{run, BacktestConfig};

fn main() {
    let cfg = BacktestConfig::default();
    let result = run(&cfg);
    let rendered = result.render();
    println!("{rendered}");

    let before = result.median_landed(1, cfg.deploy_week - 1);
    let after = result.median_landed(cfg.deploy_week, cfg.weeks);
    println!(
        "median leaks landed/week: {before} before deployment, {after} after \
         (paper: 5 before, ~1 after; 47-leak migration spike at week 21)"
    );
    if let Some(m) = cfg.migration_week {
        let spike = result.weeks[(m - 1) as usize].leaks_landed;
        println!("migration week {m}: {spike} leaks landed");
    }
    assert!(after < before, "gate must collapse the inflow");
    bench::save("fig5.txt", &rendered);
    bench::save(
        "fig5.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
}
