//! Ablation: test coverage — the reason LeakProf exists.
//!
//! GOLEAK's recall is bounded by the test suite: a leak on a path no
//! test exercises is invisible to it, while static analysis (which reads
//! all code) and production profiling (which sees all traffic) are not.
//! This experiment deletes a growing fraction of the corpus's tests and
//! measures goleak's recall against the static baseline's, reproducing
//! the paper's motivation: "there may still be inputs, path conditions,
//! and interleavings ... without proper test coverage, potentially
//! allowing partial deadlocks to still sneak into production".

use std::collections::BTreeSet;

use corpus::{Corpus, CorpusConfig, KindMix};
use gosim::rng::SplitMix64;
use leakcore::ci::{CiConfig, CiGate};
use staticlint::{Analyzer, PathCheck};

fn main() {
    let repo = Corpus::generate(CorpusConfig {
        packages: 250,
        leak_rate: 0.4,
        seed: 0xC0FE,
        mix: KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    let truth = repo.truth_locs();
    let gate = CiGate::new(CiConfig::default());

    // Static recall is coverage-independent: compute once.
    let pc = PathCheck::new();
    let mut static_found: BTreeSet<(String, u32)> = BTreeSet::new();
    for pkg in &repo.packages {
        for f in pc.analyze_files(&pkg.parse()) {
            let key = (f.loc.file.to_string(), f.loc.line);
            if truth.contains(&key) {
                static_found.insert(key);
            }
        }
    }
    let static_recall = 100.0 * static_found.len() as f64 / truth.len() as f64;

    let mut table = String::from("test coverage | goleak recall | pathcheck recall\n");
    table.push_str("--------------+---------------+-----------------\n");
    let mut csv = String::from("coverage,goleak_recall,static_recall\n");
    for keep_pct in [100u64, 80, 60, 40, 20, 0] {
        let mut rng = SplitMix64::new(keep_pct ^ 0xAB);
        let mut found: BTreeSet<(String, u32)> = BTreeSet::new();
        for pkg in &repo.packages {
            let mut thinned = pkg.clone();
            thinned
                .test_funcs
                .retain(|_| rng.next_below(100) < keep_pct);
            for outcome in gate.run_package(&thinned) {
                for leak in outcome.verdict.all_leaks() {
                    if let Some(f) = &leak.blocking_frame {
                        let key = (f.loc.file.to_string(), f.loc.line);
                        if truth.contains(&key) {
                            found.insert(key);
                        }
                    }
                }
            }
        }
        let recall = 100.0 * found.len() as f64 / truth.len() as f64;
        table.push_str(&format!(
            "{keep_pct:>12}% | {recall:>12.1}% | {static_recall:>15.1}%\n"
        ));
        csv.push_str(&format!("{keep_pct},{recall:.1},{static_recall:.1}\n"));
    }
    println!("{table}");
    println!(
        "reading: goleak's recall tracks test coverage linearly while static\n\
         analysis is flat — and production profiling (LeakProf) sees whatever\n\
         traffic exercises, regardless of tests. This is the paper's rationale\n\
         for pairing the CI gate with a production monitor (Fig 3)."
    );
    bench::save("ablation_coverage.txt", &table);
    bench::save("ablation_coverage.csv", &csv);
}
