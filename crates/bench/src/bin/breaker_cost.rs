//! Bench: what circuit breakers buy when part of the fleet is dead.
//!
//! A scrape cycle's wall time is dominated by dead targets: each one
//! burns its full retry budget (attempts × read timeout + backoff)
//! every cycle. With per-target breakers, a dead target costs that
//! budget only until its breaker opens; afterwards it is skipped at
//! ~zero cost, with only a rare half-open probe.
//!
//! This experiment serves a loopback fleet, marks 0%, 10%, and 50% of
//! targets dead (stalled past the read deadline), and measures the mean
//! steady-state cycle latency ungated vs breaker-gated. Emits
//! `BENCH_breaker.json`.

use std::time::{Duration, Instant};

use collector::{
    BreakerConfig, BreakerSet, Fault, ProfileHub, ScrapeConfig, ScrapeTarget, Scraper,
};
use gosim::GoroutineProfile;
use serde::Serialize;

const TARGETS: usize = 20;
const MEASURED_CYCLES: usize = 5;

#[derive(Serialize)]
struct Regime {
    dead_fraction: f64,
    targets: usize,
    dead: usize,
    ungated_mean_ms: f64,
    gated_mean_ms: f64,
    speedup: f64,
    quarantined_at_steady_state: usize,
}

#[derive(Serialize)]
struct BenchResult {
    targets: usize,
    measured_cycles: usize,
    regimes: Vec<Regime>,
}

fn scrape_config() -> ScrapeConfig {
    ScrapeConfig {
        workers: 8,
        connect_timeout: Duration::from_millis(200),
        read_timeout: Duration::from_millis(100),
        max_attempts: 2,
        backoff_base: Duration::from_millis(1),
        attempt_budget: Duration::from_millis(250),
        jitter_seed: 7,
        ..ScrapeConfig::default()
    }
}

fn build_fleet(dead: usize) -> (ProfileHub, Vec<String>) {
    let hub = ProfileHub::new();
    let mut ids = Vec::new();
    for i in 0..TARGETS {
        let id = format!("inst-{i:02}");
        hub.publish(&GoroutineProfile {
            instance: id.clone(),
            captured_at: 1,
            goroutines: vec![],
        });
        ids.push(id);
    }
    // "Dead" = stalled well past the read deadline, so every attempt
    // times out — the worst case for an ungated scraper.
    for id in ids.iter().take(dead) {
        hub.inject_fault(id, Fault::Delay(Duration::from_millis(400)));
    }
    (hub, ids)
}

fn targets_for(ids: &[String], addr: std::net::SocketAddr) -> Vec<ScrapeTarget> {
    ids.iter()
        .map(|id| ScrapeTarget {
            instance: id.clone(),
            addr,
            path: ProfileHub::profile_path(id),
        })
        .collect()
}

fn mean_ms(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len().max(1) as f64
}

fn run_regime(dead_fraction: f64) -> Regime {
    let dead = (TARGETS as f64 * dead_fraction).round() as usize;
    let (hub, ids) = build_fleet(dead);
    // Plenty of server threads: stalled requests keep holding a handler
    // thread after the client gives up, and must not starve live ones.
    let server = hub.serve("127.0.0.1:0", 64).expect("loopback bind");
    let targets = targets_for(&ids, server.addr());
    let scraper = Scraper::new(scrape_config());

    // Ungated: every cycle pays the full retry budget for every dead
    // target.
    let mut ungated = Vec::new();
    for _ in 0..MEASURED_CYCLES {
        let t = Instant::now();
        let report = scraper.scrape_cycle(&targets);
        ungated.push(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(report.stats.failed, dead);
    }

    // Gated: warm up until the dead targets' breakers open, then
    // measure steady state (skips plus the odd half-open probe —
    // exactly what a long-running daemon pays).
    let mut breakers = BreakerSet::new(BreakerConfig {
        failure_threshold: 2,
        probe_after_cycles: 4,
        max_probe_backoff: 32,
    });
    for _ in 0..2 {
        scraper.scrape_cycle_gated(&targets, &mut breakers);
    }
    let mut gated = Vec::new();
    for _ in 0..MEASURED_CYCLES {
        let t = Instant::now();
        scraper.scrape_cycle_gated(&targets, &mut breakers);
        gated.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let summary = breakers.summary(targets.len());

    let ungated_mean_ms = mean_ms(&ungated);
    let gated_mean_ms = mean_ms(&gated);
    Regime {
        dead_fraction,
        targets: TARGETS,
        dead,
        ungated_mean_ms,
        gated_mean_ms,
        speedup: ungated_mean_ms / gated_mean_ms.max(1e-9),
        quarantined_at_steady_state: summary.open + summary.half_open,
    }
}

fn main() {
    let mut regimes = Vec::new();
    let mut table = String::from("dead% | ungated_ms | gated_ms | speedup | quarantined\n");
    for fraction in [0.0, 0.1, 0.5] {
        let r = run_regime(fraction);
        table.push_str(&format!(
            "{:>4.0}% | {:>10.1} | {:>8.1} | {:>6.2}x | {:>11}\n",
            r.dead_fraction * 100.0,
            r.ungated_mean_ms,
            r.gated_mean_ms,
            r.speedup,
            r.quarantined_at_steady_state,
        ));
        regimes.push(r);
    }
    println!("{table}");
    println!(
        "each dead target costs an ungated cycle its full retry budget\n\
         (attempts × read timeout); once breakers quarantine them the\n\
         cycle only pays for live targets plus decaying half-open probes."
    );

    // With half the fleet dead, gating must visibly beat the ungated
    // scraper, and steady state must have quarantined every dead target.
    let worst = &regimes[2];
    assert_eq!(worst.quarantined_at_steady_state, worst.dead);
    assert!(
        worst.speedup > 1.5,
        "breakers should cut cycle latency with 50% dead (got {:.2}x)",
        worst.speedup
    );

    let result = BenchResult {
        targets: TARGETS,
        measured_cycles: MEASURED_CYCLES,
        regimes,
    };
    bench::save(
        "BENCH_breaker.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
}
