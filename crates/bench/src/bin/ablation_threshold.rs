//! Ablation: LeakProf's criterion-1 threshold. The paper set 10K
//! empirically — "starting at a larger number and slowly reducing it as
//! long as the ratio of true positives remained high". This sweep
//! reproduces that tuning curve: precision falls and recall rises as
//! the threshold drops.

use leakcore::evaluate::evaluate_leakprof_with_threshold;

fn main() {
    let thresholds = [5u64, 10, 20, 40, 80, 160, 320, 640];
    let mut csv = String::from("threshold,reports,true_positives,precision,recall\n");
    let mut table = String::from("threshold | reports | precision | recall\n");
    table.push_str("----------+---------+-----------+-------\n");
    for &t in &thresholds {
        let (row, _) = evaluate_leakprof_with_threshold(0xAB1A7E, 2, t);
        table.push_str(&format!(
            "{t:>9} | {:>7} | {:>8.1}% | {:>5.1}%\n",
            row.reports,
            100.0 * row.precision(),
            100.0 * row.recall()
        ));
        csv.push_str(&format!(
            "{t},{},{},{:.3},{:.3}\n",
            row.reports,
            row.true_positives,
            row.precision(),
            row.recall()
        ));
    }
    println!("{table}");
    println!(
        "expected shape: low thresholds flag transient congestion (lower precision),\n\
         high thresholds miss smaller leaks (lower recall); the knee justifies the\n\
         paper's empirically tuned operating point."
    );
    bench::save("ablation_threshold.csv", &csv);
    bench::save("ablation_threshold.txt", &table);
}
