//! Table IV reproduction: classification of blocking types over all
//! non-terminated goroutines after running every test in the corpus,
//! plus the Section VI-A/B/C pattern breakdown of the channel leaks.

use std::collections::BTreeMap;

use corpus::{Corpus, CorpusConfig, LeakPattern};
use goleak::{BlockKind, Classification};
use leakcore::ci::{CiConfig, CiGate};

fn main() {
    let repo = Corpus::generate(CorpusConfig {
        packages: 900,
        leak_rate: 0.35,
        seed: 0x7AB1E4,
        ..CorpusConfig::default()
    });
    let gate = CiGate::new(CiConfig::default());

    // Run every test; classify every lingering goroutine (like the paper,
    // no deduplication by source location here).
    let mut class = Classification::new();
    for pkg in &repo.packages {
        for outcome in gate.run_package(pkg) {
            for leak in outcome.verdict.all_leaks() {
                class.add_kind(leak.kind);
            }
        }
    }

    let table = class.render_table();
    println!("{table}");
    println!(
        "message-passing fraction: {:.1}% (paper: >80%, select 51%, receive 32%, send 1.7%)\n",
        100.0 * class.message_passing_fraction()
    );
    assert!(
        class.total() > 0,
        "corpus tests must leave lingering goroutines"
    );

    // Section VI pattern mix over unique injected sites (ground truth of
    // what landed in the corpus — the generator draws from the paper's
    // observed distribution and this verifies what materialized).
    let mut by_pattern: BTreeMap<LeakPattern, usize> = BTreeMap::new();
    for t in &repo.truth {
        *by_pattern.entry(t.pattern).or_insert(0) += 1;
    }
    let channel_total: usize = by_pattern
        .iter()
        .filter(|(p, _)| p.is_channel_leak())
        .map(|(_, n)| *n)
        .sum();
    let mut section6 = String::from("Section VI pattern mix (unique sites, channel leaks):\n");
    for (p, n) in &by_pattern {
        if p.is_channel_leak() {
            section6.push_str(&format!(
                "  {:<22} {:>4}  ({:>4.1}%)\n",
                format!("{p:?}"),
                n,
                100.0 * *n as f64 / channel_total.max(1) as f64
            ));
        }
    }
    println!("{section6}");

    // Sanity shape checks mirrored from the paper.
    let select = class.count(BlockKind::Select) + class.count(BlockKind::SelectNoCases);
    let recv = class.count(BlockKind::ChanReceive) + class.count(BlockKind::ChanReceiveNil);
    let send = class.count(BlockKind::ChanSend) + class.count(BlockKind::ChanSendNil);
    println!(
        "shape: select ({select}) > receive ({recv}) >> send ({send})  [paper: 75K > 46K >> 2.5K]"
    );

    bench::save("table4.txt", &format!("{table}\n{section6}"));
}
