//! Bench: what the shard-merge tier costs as the shard count grows.
//!
//! Sharded collection only pays off if folding N shard accumulators
//! back into one fleet view is cheap — in particular, the fold must be
//! **sub-linear in shard count** for a fixed fleet: the work is
//! proportional to the fleet's total (site, instance) mass, which a
//! partition merely splits, so 8 shards must not cost 8× what 2 shards
//! cost.
//!
//! This experiment builds a demo fleet, accumulates several cycles of
//! its profiles, partitions them across N ∈ {2, 4, 8} rendezvous-mapped
//! shard accumulators, and times the full merge-tier fold — snapshot
//! decode, accumulator merge, and ranking, exactly what one
//! `leakprofd fleet` poll or one `leakprofd merge` run pays — for
//! several fleet sizes. Every fold is also checked byte-identical to
//! the whole-fleet ranking. Emits `BENCH_shard.json`.

use std::time::Instant;

use collector::DemoFleet;
use gosim::GoroutineProfile;
use leakprof::{AccumulatorSnapshot, FleetAccumulator, LeakProf};
use serde::Serialize;
use shardmap::ShardMap;

const CYCLES: usize = 3;
const REPS: usize = 7;
const SHARD_COUNTS: [u32; 3] = [2, 4, 8];
const FLEET_SIZES: [usize; 3] = [32, 64, 128];

#[derive(Serialize)]
struct Row {
    instances: usize,
    shards: u32,
    profiles: usize,
    merge_ms: f64,
    identical_to_whole: bool,
}

#[derive(Serialize)]
struct BenchResult {
    cycles: usize,
    reps: usize,
    rows: Vec<Row>,
    /// Per fleet size, merge time at 8 shards over merge time at
    /// 2 shards — the gated sub-linearity ratio (must stay ≤ 3.0).
    scaling_8_over_2: Vec<(usize, f64)>,
}

fn lp() -> LeakProf {
    LeakProf::new(leakprof::Config {
        threshold: 20,
        ast_filter: false,
        top_n: 10,
    })
}

/// `CYCLES` cycles of profiles from a deterministic demo fleet.
fn collect_cycles(instances: usize) -> Vec<GoroutineProfile> {
    let mut demo = DemoFleet::build(instances, 2, 7);
    let mut all = demo.fleet.collect_profiles();
    for _ in 1..CYCLES {
        all.extend(demo.advance_and_republish(1));
    }
    all
}

/// Partitions `profiles` into per-shard accumulators by rendezvous
/// owner and returns their wire snapshots — the merge tier's input.
fn shard_snapshots(profiles: &[GoroutineProfile], n: u32) -> Vec<AccumulatorSnapshot> {
    let map = ShardMap::new(n);
    let mut accs: Vec<FleetAccumulator> = (0..n).map(|_| FleetAccumulator::new()).collect();
    for p in profiles {
        let owner = map.owner(&p.instance).expect("map total") as usize;
        accs[owner].ingest(p);
    }
    accs.iter().map(|a| a.snapshot()).collect()
}

/// One full merge-tier fold: decode every shard snapshot, merge, rank.
fn fold(snaps: &[AccumulatorSnapshot]) -> leakprof::Report {
    let mut acc = FleetAccumulator::new();
    for s in snaps {
        let shard = FleetAccumulator::from_snapshot(s).expect("snapshot restores");
        acc.merge(&shard);
    }
    lp().report_from_accumulator(&acc)
}

fn main() {
    let mut rows = Vec::new();
    let mut scaling = Vec::new();
    let mut table = String::from("instances | shards | profiles | merge_ms | identical\n");
    for &instances in &FLEET_SIZES {
        let profiles = collect_cycles(instances);
        let whole = {
            let mut acc = FleetAccumulator::new();
            for p in &profiles {
                acc.ingest(p);
            }
            serde_json::to_string(&lp().report_from_accumulator(&acc)).expect("serializes")
        };
        let mut by_shards = Vec::new();
        for &n in &SHARD_COUNTS {
            let snaps = shard_snapshots(&profiles, n);
            // Warm once (also the identity check), then time the fold.
            let merged = serde_json::to_string(&fold(&snaps)).expect("serializes");
            let identical = merged == whole;
            let mut samples = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                let t = Instant::now();
                let report = fold(&snaps);
                samples.push(t.elapsed().as_secs_f64() * 1e3);
                assert!(report.profiles_analyzed > 0);
            }
            let merge_ms = samples.iter().sum::<f64>() / REPS as f64;
            table.push_str(&format!(
                "{instances:>9} | {n:>6} | {:>8} | {merge_ms:>8.2} | {identical}\n",
                profiles.len()
            ));
            by_shards.push((n, merge_ms));
            rows.push(Row {
                instances,
                shards: n,
                profiles: profiles.len(),
                merge_ms,
                identical_to_whole: identical,
            });
        }
        let t2 = by_shards[0].1;
        let t8 = by_shards[by_shards.len() - 1].1;
        scaling.push((instances, t8 / t2.max(1e-9)));
    }
    println!("{table}");
    for (instances, ratio) in &scaling {
        println!("fleet {instances}: t(8 shards) / t(2 shards) = {ratio:.2}x");
    }
    println!(
        "\nthe fold's work is the fleet's total (site, instance) mass, which a\n\
         partition only splits — so merge time stays near-flat in shard count."
    );

    // Gates: every fold byte-identical to the whole-fleet ranking, and
    // merge time sub-linear in shard count (4x the shards must cost
    // well under 4x the time).
    assert!(
        rows.iter().all(|r| r.identical_to_whole),
        "a sharded fold diverged from the whole-fleet ranking"
    );
    for (instances, ratio) in &scaling {
        assert!(
            *ratio <= 3.0,
            "merge time grew super-linearly in shard count for fleet {instances}: \
             t(8)/t(2) = {ratio:.2}x"
        );
    }

    let result = BenchResult {
        cycles: CYCLES,
        reps: REPS,
        rows,
        scaling_8_over_2: scaling,
    };
    bench::save(
        "BENCH_shard.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
}
