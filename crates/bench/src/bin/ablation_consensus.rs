//! Ablation: static-tool consensus.
//!
//! The paper concludes that individual static tools are too noisy for
//! CI, but could combinations help? This experiment measures the
//! precision/recall of unions and intersections of the three baselines'
//! findings against corpus ground truth: intersection should trade
//! recall for precision, union the opposite — quantifying how far
//! "ensemble static analysis" remains from dynamic-quality precision.

use std::collections::BTreeSet;

use corpus::{Corpus, CorpusConfig};
use staticlint::{AbsInt, Analyzer, ModelCheck, PathCheck};

type Sites = BTreeSet<(String, u32)>;

fn findings_of(repo: &Corpus, a: &dyn Analyzer) -> Sites {
    let mut out = Sites::new();
    for pkg in &repo.packages {
        let files = pkg.parse();
        for f in a.analyze_files(&files) {
            out.insert((f.loc.file.to_string(), f.loc.line));
        }
    }
    out
}

fn score(name: &str, found: &Sites, truth: &Sites) -> String {
    let tp = found.intersection(truth).count();
    let precision = if found.is_empty() {
        1.0
    } else {
        tp as f64 / found.len() as f64
    };
    let recall = if truth.is_empty() {
        1.0
    } else {
        tp as f64 / truth.len() as f64
    };
    format!(
        "{name:<28} | {:>7} | {:>8.1}% | {:>6.1}%\n",
        found.len(),
        100.0 * precision,
        100.0 * recall
    )
}

fn main() {
    let repo = Corpus::generate(CorpusConfig {
        packages: 500,
        leak_rate: 0.4,
        seed: 0xC0,
        mix: corpus::KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    let truth: Sites = repo
        .truth
        .iter()
        .filter(|t| t.pattern.is_channel_leak())
        .map(|t| (t.file.clone(), t.line))
        .collect();

    let pc = findings_of(&repo, &PathCheck::new());
    let ai = findings_of(&repo, &AbsInt::new());
    let mc = findings_of(&repo, &ModelCheck::new());

    let mut out = String::from("combination                  | reports | precision | recall\n");
    out.push_str(&"-".repeat(64));
    out.push('\n');
    out.push_str(&score("pathcheck", &pc, &truth));
    out.push_str(&score("absint", &ai, &truth));
    out.push_str(&score("modelcheck", &mc, &truth));

    let pc_and_mc: Sites = pc.intersection(&mc).cloned().collect();
    let all_and: Sites = pc_and_mc.intersection(&ai).cloned().collect();
    let union: Sites = pc
        .union(&ai)
        .cloned()
        .collect::<Sites>()
        .union(&mc)
        .cloned()
        .collect();
    let majority: Sites = {
        let mut m = Sites::new();
        for s in &union {
            let votes = [&pc, &ai, &mc].iter().filter(|set| set.contains(s)).count();
            if votes >= 2 {
                m.insert(s.clone());
            }
        }
        m
    };
    out.push_str(&score("pathcheck ∩ modelcheck", &pc_and_mc, &truth));
    out.push_str(&score("all three ∩", &all_and, &truth));
    out.push_str(&score("majority (2 of 3)", &majority, &truth));
    out.push_str(&score("union", &union, &truth));

    println!("{out}");
    println!(
        "reading: unions dilute precision; intersections shed recall without\n\
         necessarily gaining precision (the tools agree on the same plausible-but-\n\
         wrong sites). No static ensemble approaches the dynamic tools' 100%\n\
         precision, supporting the paper's pivot to dynamic analysis."
    );
    bench::save("ablation_consensus.txt", &out);
}
