//! Fig 1 reproduction: resident set size of a production microservice
//! before and after fixing a partial deadlock (paper: 9.2x reduction).

use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};

fn main() {
    const FIX_DAY: u32 = 7;
    const DAYS: u32 = 14;
    let mut f = Fleet::new(FleetConfig {
        ticks_per_day: 48,
        seed: 0xF161,
        ..FleetConfig::default()
    });
    let mut spec = default_service(
        "svc",
        6,
        handlers::timeout_leak("svc", 120_000),
        handlers::timeout_fixed("svc", 120_000),
    );
    spec.arg = HandlerArg::NilCtx;
    spec.peak_rps = 48.0;
    spec.leak_activation = 0.8;
    spec.sample_rate = 16;
    spec.fix_day = Some(FIX_DAY);
    spec.base_rss = 128 * 1024 * 1024;
    f.add_service(spec);
    f.run_days(DAYS);

    // Per-instance series (the figure's "different lines").
    let mut csv = String::from("day,instance,rss_bytes\n");
    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 6];
    for s in f.samples() {
        csv.push_str(&format!("{:.4},{},{}\n", s.day, s.instance, s.rss));
        series[s.instance].push((s.day, s.rss as f64 / 1e9));
    }
    let labelled: Vec<(&str, &[(f64, f64)])> =
        series.iter().map(|s| ("instance", s.as_slice())).collect();
    println!(
        "{}",
        bench::ascii_plot(
            "Fig 1: RSS (GB) over days; fix deploys at day 7",
            &labelled,
            90,
            18
        )
    );

    let peak_before = f
        .samples()
        .iter()
        .filter(|s| s.day < FIX_DAY as f64)
        .map(|s| s.rss)
        .max()
        .unwrap();
    let peak_after = f
        .samples()
        .iter()
        .filter(|s| s.day >= (FIX_DAY + 1) as f64)
        .map(|s| s.rss)
        .max()
        .unwrap();
    let ratio = peak_before as f64 / peak_after as f64;
    println!(
        "peak RSS before fix: {} | after fix: {} | reduction: {ratio:.1}x (paper: 9.2x)",
        bench::human_bytes(peak_before),
        bench::human_bytes(peak_after)
    );
    assert!(
        ratio > 2.0,
        "fix must reduce RSS multiple-fold, got {ratio:.2}x"
    );
    bench::save("fig1_rss.csv", &csv);
    bench::save(
        "fig1_summary.txt",
        &format!(
            "peak_before_bytes={peak_before}\npeak_after_bytes={peak_after}\nreduction={ratio:.2}x\n"
        ),
    );
}
