//! Fig 6 reproduction: blocked-goroutine footprint of a leaky service —
//! a representative instance (top of the paper's figure) and the whole
//! fleet (bottom) — after a regression deploys mid-window, with the
//! LeakProf alert threshold overlaid.

use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};
use leakprof::{Config, LeakProf};

fn main() {
    const REGRESS_DAY: u32 = 2;
    const DAYS: u32 = 8;
    const INSTANCES: usize = 40;
    let threshold = 250u64; // paper: 10K at 1:1 scale; here counts are 1:8 sampled

    let mut f = Fleet::new(FleetConfig {
        ticks_per_day: 48,
        seed: 0xF166,
        ..FleetConfig::default()
    });
    let mut spec = default_service(
        "bigsvc",
        INSTANCES,
        handlers::premature_return_leak("bigsvc", 3_000),
        handlers::premature_return_fixed("bigsvc", 3_000),
    );
    spec.arg = HandlerArg::True;
    spec.leak_activation = 0.35;
    spec.regress_day = Some(REGRESS_DAY);
    f.add_service(spec);

    // Daily profile sweep: record blocked-goroutine counts.
    let mut rep_series = Vec::new(); // representative instance
    let mut fleet_series = Vec::new(); // fleet-wide sum
    let mut csv = String::from("day,rep_instance_blocked,fleet_blocked\n");
    let mut alerted_on_day = None;
    for day in 0..DAYS {
        f.run_days(1);
        let profiles = f.collect_profiles();
        let counts: Vec<u64> = profiles
            .iter()
            .map(|p| p.channel_blocked().count() as u64)
            .collect();
        let rep = counts.iter().copied().max().unwrap_or(0);
        let total: u64 = counts.iter().sum();
        rep_series.push(((day + 1) as f64, rep as f64));
        fleet_series.push(((day + 1) as f64, total as f64));
        csv.push_str(&format!("{},{rep},{total}\n", day + 1));

        // Daily LeakProf run: when does the alert fire?
        if alerted_on_day.is_none() {
            let lp = LeakProf::new(Config {
                threshold,
                ast_filter: false,
                top_n: 5,
            });
            if !lp.analyze(&profiles).suspects.is_empty() {
                alerted_on_day = Some(day + 1);
            }
        }
    }

    let thr_line: Vec<(f64, f64)> = (1..=DAYS).map(|d| (d as f64, threshold as f64)).collect();
    println!(
        "{}",
        bench::ascii_plot(
            "Fig 6 (top): representative instance blocked goroutines vs alert threshold",
            &[("instance max", &rep_series), ("threshold", &thr_line)],
            80,
            14
        )
    );
    println!(
        "{}",
        bench::ascii_plot(
            "Fig 6 (bottom): fleet-wide blocked goroutines",
            &[("fleet total", &fleet_series)],
            80,
            14
        )
    );
    println!(
        "regression deployed at day {REGRESS_DAY}; LeakProf alert fired on day {:?} \
         (paper: leak intercepted once a single instance crossed the 10K threshold;\n\
         here counts are 1:{} sampled)",
        alerted_on_day, 8
    );
    let alert_day = alerted_on_day.expect("the sweep must catch the regression");
    assert!(alert_day >= REGRESS_DAY, "no alert before the regression");
    bench::save("fig6.csv", &csv);
}
