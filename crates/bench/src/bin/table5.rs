//! Table V reproduction: per-service peak memory before and after the
//! leak fix, plus the instance capacity the fix releases.
//!
//! Thirteen services with the paper's instance counts (scaled 1:10 for
//! the largest) run for several virtual days with a leaky handler, the
//! fix deploys mid-window, and the peaks on both sides are measured from
//! the simulated RSS series.

use fleet::{default_service, handlers, Fleet, FleetConfig, HandlerArg};

struct Svc {
    name: &'static str,
    paper_instances: u32,
    instances: usize,
    buf: u64,
    activation: f64,
}

fn main() {
    // Paper Table V service roster (instances scaled down for the sim).
    let roster = [
        Svc {
            name: "S1",
            paper_instances: 5854,
            instances: 12,
            buf: 384000,
            activation: 0.5,
        },
        Svc {
            name: "S2",
            paper_instances: 612,
            instances: 8,
            buf: 48000,
            activation: 0.12,
        },
        Svc {
            name: "S3",
            paper_instances: 199,
            instances: 6,
            buf: 176000,
            activation: 0.4,
        },
        Svc {
            name: "S4",
            paper_instances: 120,
            instances: 6,
            buf: 144000,
            activation: 0.35,
        },
        Svc {
            name: "S5",
            paper_instances: 72,
            instances: 5,
            buf: 240000,
            activation: 0.45,
        },
        Svc {
            name: "S6",
            paper_instances: 66,
            instances: 5,
            buf: 320000,
            activation: 0.6,
        },
        Svc {
            name: "S7",
            paper_instances: 64,
            instances: 5,
            buf: 112000,
            activation: 0.3,
        },
        Svc {
            name: "S8",
            paper_instances: 19,
            instances: 4,
            buf: 72000,
            activation: 0.18,
        },
        Svc {
            name: "S9",
            paper_instances: 18,
            instances: 4,
            buf: 416000,
            activation: 0.7,
        },
        Svc {
            name: "S10",
            paper_instances: 10,
            instances: 3,
            buf: 96000,
            activation: 0.22,
        },
        Svc {
            name: "S11",
            paper_instances: 9,
            instances: 3,
            buf: 104000,
            activation: 0.25,
        },
        Svc {
            name: "S12",
            paper_instances: 6,
            instances: 3,
            buf: 256000,
            activation: 0.55,
        },
        Svc {
            name: "S13",
            paper_instances: 6,
            instances: 3,
            buf: 360000,
            activation: 0.65,
        },
    ];
    const FIX_DAY: u32 = 4;
    const DAYS: u32 = 9;

    let mut f = Fleet::new(FleetConfig {
        ticks_per_day: 48,
        seed: 0x7AB1E5,
        ..FleetConfig::default()
    });
    for s in &roster {
        let mut spec = default_service(
            s.name,
            s.instances,
            handlers::timeout_leak(&s.name.to_lowercase(), s.buf),
            handlers::timeout_fixed(&s.name.to_lowercase(), s.buf),
        );
        spec.arg = HandlerArg::NilCtx;
        spec.peak_rps = 48.0;
        spec.sample_rate = 16;
        spec.leak_activation = s.activation;
        spec.fix_day = Some(FIX_DAY);
        spec.base_rss = 256 * 1024 * 1024;
        f.add_service(spec);
    }
    f.run_days(DAYS);

    let mut out = String::new();
    out.push_str(
        "Service (#inst, paper #inst) | peak before (GB) | peak after (GB) | saved | capacity/inst before->after\n",
    );
    out.push_str(&"-".repeat(100));
    out.push('\n');
    let mut csv = String::from(
        "service,instances,peak_before_gb,peak_after_gb,saved_pct,cap_before_gb,cap_after_gb\n",
    );
    for s in &roster {
        // Service-wide peak = max over ticks of the sum across instances.
        let mut per_tick_before: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut per_tick_after: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut inst_peak_before = 0u64;
        let mut inst_peak_after = 0u64;
        for sample in f.samples().iter().filter(|x| x.service == s.name) {
            let key = (sample.day * 1e4) as u64;
            if sample.day < FIX_DAY as f64 {
                *per_tick_before.entry(key).or_insert(0) += sample.rss;
                inst_peak_before = inst_peak_before.max(sample.rss);
            } else if sample.day >= (FIX_DAY + 1) as f64 {
                *per_tick_after.entry(key).or_insert(0) += sample.rss;
                inst_peak_after = inst_peak_after.max(sample.rss);
            }
        }
        let gb = |b: u64| b as f64 / (1024.0 * 1024.0 * 1024.0);
        let before = per_tick_before.values().copied().max().unwrap_or(0);
        let after = per_tick_after.values().copied().max().unwrap_or(0);
        let saved = 100.0 * (1.0 - after as f64 / before.max(1) as f64);
        // Capacity provisioning: next power-of-two GB above instance peak.
        let cap = |b: u64| -> f64 {
            let g = gb(b);
            let mut c = 1.0;
            while c < g {
                c *= 2.0;
            }
            c
        };
        out.push_str(&format!(
            "{:<4} ({:>2}, {:>4})             | {:>16.2} | {:>15.2} | {:>4.0}% | {:>4.0} -> {:.0} GB\n",
            s.name,
            s.instances,
            s.paper_instances,
            gb(before),
            gb(after),
            saved,
            cap(inst_peak_before),
            cap(inst_peak_after),
        ));
        csv.push_str(&format!(
            "{},{},{:.3},{:.3},{:.1},{:.0},{:.0}\n",
            s.name,
            s.instances,
            gb(before),
            gb(after),
            saved,
            cap(inst_peak_before),
            cap(inst_peak_after)
        ));
    }
    println!("{out}");
    println!(
        "paper Table V shape: every service's peak drops after the fix (9%..78% saved),\n\
         and most services shrink their per-instance capacity reservation."
    );
    bench::save("table5.txt", &out);
    bench::save("table5.csv", &csv);
}
