//! Fig 4 reproduction: the concrete, profile-extracted stack of a
//! goroutine blocked at `transactions/cost.go:8` — the signature
//! LeakProf keys on (`runtime.gopark` over `runtime.chansend1` over the
//! user frame).

use gosim::{Runtime, Val};

fn main() {
    let src = r#"
package transactions

func ComputeCost(err bool) {
	ch := make(chan int)
	go func() {
		sim.Work(3)
		ch <- 1
	}()
	if err {
		return
	}
	disc := <-ch
	_ = disc
}
"#;
    let prog = minigo::compile(src, "transactions/cost.go").expect("listing 1 compiles");
    let mut rt = Runtime::with_seed(0);
    prog.spawn_func(&mut rt, "transactions.ComputeCost", vec![Val::Bool(true)])
        .expect("entry exists");
    rt.run_until_blocked(10_000);

    let profile = rt.goroutine_profile("prod-instance-42");
    let rendered = profile.render();
    println!("{rendered}");

    let g = &profile.goroutines[0];
    let op = leakprof::blocked_op(g).expect("signature detection fires");
    println!(
        "LeakProf signature: kind={} loc={}  (paper Fig 4: blocked at transactions/cost.go:8)",
        op.kind, op.loc
    );
    assert_eq!(op.loc.to_string(), "transactions/cost.go:8");
    bench::save("fig4_stack.txt", &rendered);
}
