//! Ablation: RMS vs mean vs max as LeakProf's impact-ranking metric.
//!
//! The paper chose root-mean-square "for its capability to effectively
//! highlight suspicious operations within individual instances that
//! exhibit significant clusters of blocked goroutines". This experiment
//! constructs two sites with identical totals — a single-instance spike
//! (a real incident) and an evenly spread population (benign churn) —
//! and shows how each metric ranks them.

use gosim::{Frame, Gid, GoStatus, GoroutineProfile, GoroutineRecord, Loc};
use leakprof::{aggregate, rms, Config, SourceIndex};

fn blocked(gid: u64, file: &str, line: u32) -> GoroutineRecord {
    GoroutineRecord {
        gid: Gid(gid),
        name: "svc.handler$1".into(),
        status: GoStatus::ChanSend { nil_chan: false },
        stack: vec![
            Frame::runtime("runtime.gopark"),
            Frame::runtime("runtime.chansend1"),
            Frame::new("svc.handler$1", Loc::new(file, line)),
        ],
        created_by: Frame::new("svc.handler", Loc::new(file, 1)),
        wait_ticks: 50,
        retained_bytes: 8192,
    }
}

fn main() {
    // 20 instances. Site "spike.go:5": 2000 blocked on one instance.
    // Site "flat.go:7": 100 blocked on each instance (same total).
    let mut profiles = Vec::new();
    for i in 0..20u64 {
        let mut gs = Vec::new();
        if i == 0 {
            for g in 0..2000 {
                gs.push(blocked(g, "spike.go", 5));
            }
        }
        for g in 0..100 {
            gs.push(blocked(10_000 + g, "flat.go", 7));
        }
        profiles.push(GoroutineProfile {
            instance: format!("inst-{i}"),
            captured_at: 0,
            goroutines: gs,
        });
    }

    let cfg = Config {
        threshold: 100,
        ast_filter: false,
        top_n: 10,
    };
    let stats = aggregate(&profiles, &cfg, &SourceIndex::new());

    let mut table = String::from("site        | total | max_inst | mean   | rms\n");
    table.push_str("------------+-------+----------+--------+-------\n");
    for s in &stats {
        table.push_str(&format!(
            "{:<11} | {:>5} | {:>8} | {:>6.1} | {:>6.1}\n",
            s.op.loc.to_string(),
            s.total,
            s.max_instance,
            s.mean(),
            s.rms
        ));
    }
    println!("{table}");
    println!(
        "ranking by mean : tie ({}={})",
        stats[0].mean(),
        stats[1].mean()
    );
    println!(
        "ranking by rms  : {} first (rms {:.1} vs {:.1}) — the spike wins, as the paper intends",
        stats[0].op.loc, stats[0].rms, stats[1].rms
    );
    println!(
        "ranking by max  : also favors the spike, but saturates (cannot distinguish a\n\
         100-instance incident from a 1-instance one); rms grows with incident breadth:"
    );
    // Show rms growing with breadth at fixed max.
    let mut growth = String::from("instances_affected,rms\n");
    for k in [1usize, 2, 4, 8, 16] {
        let counts: Vec<u64> = (0..20).map(|i| if i < k { 2000 } else { 0 }).collect();
        growth.push_str(&format!("{k},{:.1}\n", rms(&counts)));
    }
    println!("{growth}");
    assert_eq!(&*stats[0].op.loc.file, "spike.go");
    bench::save("ablation_rms.txt", &table);
    bench::save("ablation_rms_growth.csv", &growth);
}
