//! Bench: what the full distributed-tracing stack costs.
//!
//! `obs_overhead` prices raw span recording; this experiment prices the
//! whole tracing surface a production daemon actually carries: spans
//! with tail-sampling on, the structured event log, the worst-cycle
//! exemplar, and per-cycle trace-context bookkeeping. Two daemons run
//! the same pipeline over the same loopback fleet — one with the stack
//! enabled (tail-sampling on, as shipped), one with both tracing and
//! the event ring disabled — interleaved so clock drift hits both
//! equally. Emits `BENCH_dtrace.json` and enforces the <5% median
//! cycle-latency budget (with a small absolute floor so loopback noise
//! on a ~millisecond cycle cannot fail the gate spuriously).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use collector::{Daemon, DaemonConfig, DemoFleet, ScrapeConfig};
use serde::Serialize;

const INSTANCES: usize = 24;
const WARMUP_CYCLES: usize = 3;
const MEASURED_CYCLES: usize = 31;

/// Relative overhead budget (CI gate).
const MAX_OVERHEAD_PCT: f64 = 5.0;
/// Absolute-delta floor: below this many milliseconds per cycle the
/// relative number is loopback noise, not a regression.
const NOISE_FLOOR_MS: f64 = 3.0;

#[derive(Serialize)]
struct BenchResult {
    instances: usize,
    warmup_cycles: usize,
    measured_cycles: usize,
    tail_sample: bool,
    tracing_off_median_ms: f64,
    tracing_on_median_ms: f64,
    delta_ms: f64,
    overhead_pct: f64,
    spans_recorded: u64,
    spans_dropped: u64,
    events_dropped: u64,
    worst_cycle_trace: Option<String>,
}

fn build_daemon(demo: &DemoFleet, addr: std::net::SocketAddr, enabled: bool) -> Daemon {
    let config = DaemonConfig {
        scrape: ScrapeConfig {
            // Pooled connections for both sides: less dial jitter, so
            // the instrumentation cost is what the comparison sees.
            keepalive: true,
            ..ScrapeConfig::default()
        },
        trace: obs::TraceConfig {
            enabled,
            // The shipped configuration: full detail only for flagged
            // or slow cycles, skeletons otherwise.
            tail_sample: true,
            ..obs::TraceConfig::default()
        },
        events: obs::EventConfig {
            enabled,
            ..obs::EventConfig::default()
        },
        ..DaemonConfig::default()
    };
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: 1,
        ast_filter: false,
        top_n: 10,
    });
    Daemon::new(config, lp, demo.targets(addr)).expect("in-memory daemon")
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let demo = DemoFleet::build(INSTANCES, 2, 13);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    // The daemons only share the fleet server; each owns its scraper,
    // connection pool, and accumulator.
    let on = Arc::new(Mutex::new(build_daemon(&demo, server.addr(), true)));
    let off = Arc::new(Mutex::new(build_daemon(&demo, server.addr(), false)));

    let timed = |daemon: &Arc<Mutex<Daemon>>| {
        let t = Instant::now();
        let report = daemon.lock().expect("daemon poisoned").run_cycle();
        assert_eq!(report.stats.succeeded, INSTANCES, "fleet must stay up");
        t.elapsed().as_secs_f64() * 1e3
    };

    for _ in 0..WARMUP_CYCLES {
        timed(&on);
        timed(&off);
    }
    let mut on_ms = Vec::new();
    let mut off_ms = Vec::new();
    // Interleave so drift (thermal, scheduler) cancels out.
    for _ in 0..MEASURED_CYCLES {
        on_ms.push(timed(&on));
        off_ms.push(timed(&off));
    }

    let tracing_on_median_ms = median_ms(&mut on_ms);
    let tracing_off_median_ms = median_ms(&mut off_ms);
    let delta_ms = tracing_on_median_ms - tracing_off_median_ms;
    let overhead_pct = delta_ms / tracing_off_median_ms.max(1e-9) * 100.0;
    let (spans_recorded, spans_dropped, events_dropped, worst_cycle_trace) = {
        let d = on.lock().expect("daemon poisoned");
        (
            d.tracer().spans_recorded(),
            d.tracer().spans_dropped(),
            d.events().dropped(),
            d.tracer().worst_cycle().map(|w| w.trace_id),
        )
    };

    println!(
        "tracing off: {tracing_off_median_ms:.3} ms/cycle (median of {MEASURED_CYCLES})\n\
         tracing on:  {tracing_on_median_ms:.3} ms/cycle (tail-sampled; {spans_recorded} spans \
         recorded, {spans_dropped} dropped, {events_dropped} events dropped)\n\
         delta:       {delta_ms:+.3} ms ({overhead_pct:+.2}%)"
    );

    assert_eq!(spans_dropped, 0, "ring must hold a full cycle's spans");
    assert!(
        overhead_pct < MAX_OVERHEAD_PCT || delta_ms < NOISE_FLOOR_MS,
        "distributed-tracing overhead {overhead_pct:.2}% ({delta_ms:.3} ms/cycle) exceeds the \
         {MAX_OVERHEAD_PCT}% budget"
    );

    let result = BenchResult {
        instances: INSTANCES,
        warmup_cycles: WARMUP_CYCLES,
        measured_cycles: MEASURED_CYCLES,
        tail_sample: true,
        tracing_off_median_ms,
        tracing_on_median_ms,
        delta_ms,
        overhead_pct,
        spans_recorded,
        spans_dropped,
        events_dropped,
        worst_cycle_trace,
    };
    bench::save(
        "BENCH_dtrace.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
}
