//! Bench: what fleet telemetry costs.
//!
//! Every cycle the daemon appends a batch of points (per-site RMS and
//! totals, per-instance blocked counts, stage latencies, wall time) to
//! the embedded multi-resolution store — through a per-append flushed
//! WAL when durable — and then classifies every site's trend, which
//! reads the newest window back out of the store. This experiment runs
//! the same daemon pipeline over the same loopback fleet with telemetry
//! enabled and disabled, both durable so the daemon's own snapshot WAL
//! cost hits both sides equally, interleaving cycles so clock drift
//! cancels out. Emits `BENCH_ts.json` and enforces the budget: the
//! append+query path must stay under 5% of median cycle latency (with
//! a small absolute floor so loopback noise cannot fail the gate
//! spuriously).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use collector::{Daemon, DaemonConfig, DemoFleet, ScrapeConfig};
use serde::Serialize;

const INSTANCES: usize = 24;
const WARMUP_CYCLES: usize = 3;
const MEASURED_CYCLES: usize = 31;

/// Relative overhead budget (CI gate).
const MAX_OVERHEAD_PCT: f64 = 5.0;
/// Absolute-delta floor: below this many milliseconds per cycle the
/// relative number is loopback noise, not a regression.
const NOISE_FLOOR_MS: f64 = 3.0;

#[derive(Serialize)]
struct BenchResult {
    instances: usize,
    warmup_cycles: usize,
    measured_cycles: usize,
    telemetry_off_median_ms: f64,
    telemetry_on_median_ms: f64,
    delta_ms: f64,
    overhead_pct: f64,
    ts_series: usize,
    points_per_cycle: usize,
}

fn build_daemon(
    demo: &DemoFleet,
    addr: std::net::SocketAddr,
    state_dir: &std::path::Path,
    telemetry: bool,
) -> Daemon {
    let config = DaemonConfig {
        scrape: ScrapeConfig {
            // Pooled connections for both sides: less dial jitter, so
            // the telemetry cost is what the comparison actually sees.
            keepalive: true,
            ..ScrapeConfig::default()
        },
        state_dir: Some(state_dir.to_path_buf()),
        telemetry,
        ..DaemonConfig::default()
    };
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: 1,
        ast_filter: false,
        top_n: 10,
    });
    Daemon::new(config, lp, demo.targets(addr)).expect("durable daemon")
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let root = std::env::temp_dir().join(format!("leaklab-ts-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench state dir");

    let demo = DemoFleet::build(INSTANCES, 2, 13);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    // The daemons only share the fleet server; each owns its scraper,
    // connection pool, accumulator, and state directory.
    let on = Arc::new(Mutex::new(build_daemon(
        &demo,
        server.addr(),
        &root.join("on"),
        true,
    )));
    let off = Arc::new(Mutex::new(build_daemon(
        &demo,
        server.addr(),
        &root.join("off"),
        false,
    )));

    let timed = |daemon: &Arc<Mutex<Daemon>>| {
        let t = Instant::now();
        let report = daemon.lock().expect("daemon poisoned").run_cycle();
        assert_eq!(report.stats.succeeded, INSTANCES, "fleet must stay up");
        t.elapsed().as_secs_f64() * 1e3
    };

    for _ in 0..WARMUP_CYCLES {
        timed(&on);
        timed(&off);
    }
    let mut on_ms = Vec::new();
    let mut off_ms = Vec::new();
    // Interleave so drift (thermal, scheduler) cancels out.
    for _ in 0..MEASURED_CYCLES {
        on_ms.push(timed(&on));
        off_ms.push(timed(&off));
    }

    let telemetry_on_median_ms = median_ms(&mut on_ms);
    let telemetry_off_median_ms = median_ms(&mut off_ms);
    let delta_ms = telemetry_on_median_ms - telemetry_off_median_ms;
    let overhead_pct = delta_ms / telemetry_off_median_ms.max(1e-9) * 100.0;
    let (ts_series, health_sites) = {
        let d = on.lock().expect("daemon poisoned");
        (
            d.status().ts_series,
            d.fleet_health().map_or(0, |h| h.sites.len()),
        )
    };
    // Rough batch size: one rms+total pair per classified site, one
    // blocked count per instance, stage latencies, wall time.
    let points_per_cycle = 2 * health_sites + INSTANCES + 2;

    println!(
        "telemetry off: {telemetry_off_median_ms:.3} ms/cycle (median of {MEASURED_CYCLES})\n\
         telemetry on:  {telemetry_on_median_ms:.3} ms/cycle ({ts_series} series, \
         ~{points_per_cycle} points/cycle)\n\
         delta:         {delta_ms:+.3} ms ({overhead_pct:+.2}%)"
    );

    assert!(ts_series > 0, "telemetry daemon must record series");
    assert!(
        overhead_pct < MAX_OVERHEAD_PCT || delta_ms < NOISE_FLOOR_MS,
        "telemetry overhead {overhead_pct:.2}% ({delta_ms:.3} ms/cycle) exceeds the \
         {MAX_OVERHEAD_PCT}% budget"
    );

    let result = BenchResult {
        instances: INSTANCES,
        warmup_cycles: WARMUP_CYCLES,
        measured_cycles: MEASURED_CYCLES,
        telemetry_off_median_ms,
        telemetry_on_median_ms,
        delta_ms,
        overhead_pct,
        ts_series,
        points_per_cycle,
    };
    bench::save(
        "BENCH_ts.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
    let _ = std::fs::remove_dir_all(&root);
}
