//! Bench: what happens-before race detection costs, at two tiers.
//!
//! **Engine tier** (informational): vector clocks are free when off —
//! every clock join is gated behind the runtime's `hb` flag, and a
//! plain build carries zero access instrumentation (asserted here).
//! The same channel-heavy workload runs under the same seed three
//! ways: plain build with HB off (the baseline every other bench
//! measures), plain build with HB on (pure clock maintenance on sync
//! edges), and race-instrumented build plus detection (the full
//! `racecheck` path). On this worst case — every operation is a
//! synchronization edge — clock joins are a real fraction of the
//! interpreter step, which is exactly why the daemon never runs the
//! detector on the hot path.
//!
//! **Daemon tier** (the CI gate): the deployable claim. A daemon with
//! a warm race tier pays one source-tree fingerprint per cycle; the
//! detector ran once at the cold sync and is answered from cache ever
//! after. Interleaved against an identical daemon with no race tier,
//! the warm median cycle latency must stay within 5% (with a small
//! absolute floor so loopback noise on a ~millisecond cycle cannot
//! fail the gate spuriously). Emits `BENCH_race.json`.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use collector::{Daemon, DaemonConfig, DemoFleet, RaceTierConfig, ScrapeConfig};
use gosim::{Runtime, Val};
use serde::Serialize;

const INSTANCES: usize = 24;
const WARMUP_RUNS: usize = 3;
const MEASURED_RUNS: usize = 31;
/// Relative overhead budget for a warm race tier on the daemon cycle
/// (CI gate).
const MAX_OVERHEAD_PCT: f64 = 5.0;
/// Absolute-delta floor in milliseconds: below this the relative
/// number is scheduler noise, not a regression.
const NOISE_FLOOR_MS: f64 = 3.0;

/// A synchronization-heavy workload: a two-stage pipeline of worker
/// goroutines ping-ponging over channels, plus mutex and WaitGroup
/// traffic — every operation is an HB edge, so this is the worst case
/// for clock maintenance (and, race-compiled, it is race-free, so the
/// detector pass runs over a real access stream without findings). The
/// workers are deliberately unrolled, not spawned in a loop: the
/// name-keyed access model would conflate per-closure locals of
/// loop-spawned twins, and this bench prices the engine, not that
/// over-approximation.
fn workload() -> Vec<(String, String)> {
    let src = "package bench\n\
\n\
func Pipeline() {\n\
\tvar mu sync.Mutex\n\
\tvar wg sync.WaitGroup\n\
\ttotal := 0\n\
\tin := make(chan int, 8)\n\
\tmid := make(chan int, 8)\n\
\tout := make(chan int, 8)\n\
\twg.Add(1)\n\
\tgo func() {\n\
\t\tfor a := 0; a < 400; a++ {\n\
\t\t\tva := <-in\n\
\t\t\tmid <- va\n\
\t\t}\n\
\t\twg.Done()\n\
\t}()\n\
\twg.Add(1)\n\
\tgo func() {\n\
\t\tfor b := 0; b < 400; b++ {\n\
\t\t\tvb := <-in\n\
\t\t\tmid <- vb\n\
\t\t}\n\
\t\twg.Done()\n\
\t}()\n\
\twg.Add(1)\n\
\tgo func() {\n\
\t\tfor c := 0; c < 400; c++ {\n\
\t\t\tvc := <-mid\n\
\t\t\tmu.Lock()\n\
\t\t\ttotal = total + vc\n\
\t\t\tmu.Unlock()\n\
\t\t\tout <- vc\n\
\t\t}\n\
\t\twg.Done()\n\
\t}()\n\
\twg.Add(1)\n\
\tgo func() {\n\
\t\tfor d := 0; d < 400; d++ {\n\
\t\t\tvd := <-mid\n\
\t\t\tmu.Lock()\n\
\t\t\ttotal = total + vd\n\
\t\t\tmu.Unlock()\n\
\t\t\tout <- vd\n\
\t\t}\n\
\t\twg.Done()\n\
\t}()\n\
\tgo func() {\n\
\t\tfor s := 0; s < 800; s++ {\n\
\t\t\tin <- s\n\
\t\t}\n\
\t}()\n\
\tfor r := 0; r < 800; r++ {\n\
\t\t<-out\n\
\t}\n\
\twg.Wait()\n\
\tmu.Lock()\n\
\tsim.Work(total)\n\
\tmu.Unlock()\n\
}\n";
    vec![(src.to_string(), "bench/pipeline.go".to_string())]
}

const ENTRY: &str = "bench.Pipeline";
const TICKS: u64 = 200_000;
const MAX_SLICES: u64 = 2_000_000;

fn run(prog: &gosim::script::Prog, hb: bool) -> (f64, usize) {
    let t = Instant::now();
    let mut rt = Runtime::with_seed(13);
    if hb {
        rt.enable_hb();
    }
    prog.spawn_func(&mut rt, ENTRY, Vec::<Val>::new());
    rt.advance(TICKS, MAX_SLICES);
    let events = rt.take_access_events();
    let n = events.len();
    if hb && n > 0 {
        // The full racecheck path prices detection too.
        let findings = racecheck::detect(&events);
        assert!(
            findings.is_empty(),
            "the pipeline workload is race-free by construction"
        );
    }
    (t.elapsed().as_secs_f64() * 1e3, n)
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

/// Builds an in-memory daemon against the shared loopback fleet, with
/// or without a race tier over `race_dir`.
fn build_daemon(
    demo: &DemoFleet,
    addr: std::net::SocketAddr,
    race_dir: Option<&std::path::Path>,
) -> Daemon {
    let config = DaemonConfig {
        scrape: ScrapeConfig {
            keepalive: true,
            ..ScrapeConfig::default()
        },
        race_tier: race_dir.map(|dir| RaceTierConfig {
            source_dir: dir.to_path_buf(),
            cache_path: dir.join("races.json"),
            run: racecheck::RunConfig::default(),
        }),
        ..DaemonConfig::default()
    };
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: 1,
        ast_filter: false,
        top_n: 10,
    });
    Daemon::new(config, lp, demo.targets(addr)).expect("in-memory daemon")
}

#[derive(Serialize)]
struct BenchResult {
    measured_runs: usize,
    // Daemon-cycle tier (the CI gate): a warm race tier vs no race
    // tier over the same fleet.
    instances: usize,
    race_off_median_ms: f64,
    race_on_median_ms: f64,
    delta_ms: f64,
    overhead_pct: f64,
    cold_sync_ms: f64,
    max_overhead_pct: f64,
    noise_floor_ms: f64,
    // Engine tier (informational): the same interpreted workload with
    // vector clocks off, on, and on + instrumentation + detection.
    ticks: u64,
    hb_off_median_ms: f64,
    hb_on_median_ms: f64,
    detect_median_ms: f64,
    hb_overhead_pct: f64,
    detect_overhead_pct: f64,
    access_events_per_run: usize,
}

fn main() {
    // ---- Engine tier: what vector clocks cost per interpreted run.
    let sources = workload();
    let plain = minigo::compile_many(&sources).expect("workload compiles");
    let raced = minigo::compile_many_race(&sources).expect("workload compiles in race mode");

    // Sanity: the plain build emits no access events at all — with the
    // flag off there is nothing to even skip.
    let (_, n) = run(&plain, false);
    assert_eq!(n, 0, "plain build must carry zero instrumentation");

    for _ in 0..WARMUP_RUNS {
        run(&plain, false);
        run(&plain, true);
        run(&raced, true);
    }
    let mut off_ms = Vec::new();
    let mut on_ms = Vec::new();
    let mut detect_ms = Vec::new();
    let mut access_events = 0usize;
    // Interleave so drift (thermal, scheduler) cancels out.
    for _ in 0..MEASURED_RUNS {
        off_ms.push(run(&plain, false).0);
        on_ms.push(run(&plain, true).0);
        let (ms, n) = run(&raced, true);
        detect_ms.push(ms);
        access_events = n;
    }
    let hb_off_median_ms = median_ms(&mut off_ms);
    let hb_on_median_ms = median_ms(&mut on_ms);
    let detect_median_ms = median_ms(&mut detect_ms);
    let hb_overhead_pct = (hb_on_median_ms - hb_off_median_ms) / hb_off_median_ms.max(1e-9) * 100.0;
    let detect_overhead_pct =
        (detect_median_ms - hb_off_median_ms) / hb_off_median_ms.max(1e-9) * 100.0;

    // ---- Daemon tier: what a race tier costs per collection cycle.
    // The tier pays one full detector run on the cold sync, then a
    // directory fingerprint per warm cycle — the warm number is the
    // production steady state the gate holds.
    let race_dir =
        std::env::temp_dir().join(format!("leakprofd-bench-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&race_dir);
    std::fs::create_dir_all(&race_dir).expect("race dir");
    let (src, rel) = &workload()[0];
    std::fs::write(
        race_dir.join(rel.rsplit('/').next().expect("file name")),
        src,
    )
    .expect("workload source");

    let demo = DemoFleet::build(INSTANCES, 2, 13);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    let with_races = Arc::new(Mutex::new(build_daemon(
        &demo,
        server.addr(),
        Some(&race_dir),
    )));
    let without = Arc::new(Mutex::new(build_daemon(&demo, server.addr(), None)));

    let timed = |daemon: &Arc<Mutex<Daemon>>| {
        let t = Instant::now();
        let report = daemon.lock().expect("daemon poisoned").run_cycle();
        assert_eq!(report.stats.succeeded, INSTANCES, "fleet must stay up");
        t.elapsed().as_secs_f64() * 1e3
    };

    // First cycle with the tier is the cold sync (compile + run +
    // persist); report it separately, it is not steady state.
    let cold_sync_ms = timed(&with_races);
    for _ in 0..WARMUP_RUNS {
        timed(&with_races);
        timed(&without);
    }
    let mut race_on_ms = Vec::new();
    let mut race_off_ms = Vec::new();
    for _ in 0..MEASURED_RUNS {
        race_on_ms.push(timed(&with_races));
        race_off_ms.push(timed(&without));
    }
    let race_on_median_ms = median_ms(&mut race_on_ms);
    let race_off_median_ms = median_ms(&mut race_off_ms);
    let delta_ms = race_on_median_ms - race_off_median_ms;
    let overhead_pct = delta_ms / race_off_median_ms.max(1e-9) * 100.0;
    {
        let d = with_races.lock().expect("daemon poisoned");
        let stats = d.race_tier().expect("tier configured").stats();
        assert_eq!(
            stats.cache_misses, 1,
            "only the cold sync may run the detector"
        );
        assert!(stats.cache_hits > 0, "warm cycles must hit the cache");
    }
    let _ = std::fs::remove_dir_all(&race_dir);

    println!(
        "engine: hb off {hb_off_median_ms:.3} ms/run, hb on {hb_on_median_ms:.3} ms/run \
         ({hb_overhead_pct:+.2}%), +instrumentation+detect {detect_median_ms:.3} ms/run \
         ({detect_overhead_pct:+.2}%, {access_events} access events)\n\
         daemon: race tier off {race_off_median_ms:.3} ms/cycle, warm tier on \
         {race_on_median_ms:.3} ms/cycle ({delta_ms:+.3} ms, {overhead_pct:+.2}%), \
         cold sync {cold_sync_ms:.3} ms"
    );

    assert!(
        overhead_pct < MAX_OVERHEAD_PCT || delta_ms < NOISE_FLOOR_MS,
        "warm race-tier overhead {overhead_pct:.2}% ({delta_ms:.3} ms/cycle) exceeds the \
         {MAX_OVERHEAD_PCT}% budget"
    );

    let result = BenchResult {
        measured_runs: MEASURED_RUNS,
        instances: INSTANCES,
        race_off_median_ms,
        race_on_median_ms,
        delta_ms,
        overhead_pct,
        cold_sync_ms,
        max_overhead_pct: MAX_OVERHEAD_PCT,
        noise_floor_ms: NOISE_FLOOR_MS,
        ticks: TICKS,
        hb_off_median_ms,
        hb_on_median_ms,
        detect_median_ms,
        hb_overhead_pct,
        detect_overhead_pct,
        access_events_per_run: access_events,
    };
    bench::save(
        "BENCH_race.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
}
