//! CI static gate: runs every staticlint pass over the ground-truth
//! corpus and fails when any tool's measured precision or recall drops
//! below the recorded floor in `results/static_gate_floor.json`.
//!
//! The corpus is seeded and the analyses are deterministic, so the
//! measured numbers are exactly reproducible — a drop means a real
//! regression in a pass (or an intentional corpus change, in which case
//! rerun with `--write-floor` and commit the new floor alongside the
//! change that moved it).
//!
//! ```text
//! cargo run --release -p bench --bin static_gate                # gate
//! cargo run --release -p bench --bin static_gate -- --write-floor
//! ```
//!
//! Exit code: 0 when every tool clears its floor, 1 on a regression or
//! a missing floor file, 2 when the floor names a tool that no longer
//! runs.

use std::collections::BTreeMap;
use std::process::ExitCode;

use corpus::{Corpus, CorpusConfig, KindMix};
use leakcore::evaluate::{evaluate_static, render_table3, ToolEval};
use serde::{Deserialize, Serialize};
use staticlint::{AbsInt, Analyzer, Interproc, ModelCheck, PathCheck, RangeClose};

/// Recorded minimums for one tool. Exact measured values at floor-write
/// time; the gate allows only float-noise slack below them.
#[derive(Debug, Serialize, Deserialize)]
struct Floor {
    precision: f64,
    recall: f64,
    reports: usize,
}

const EPS: f64 = 1e-9;

fn main() -> ExitCode {
    let write_floor = std::env::args().any(|a| a == "--write-floor");
    // Concurrency-heavy mix: the gate is about the channel passes, so
    // stack the corpus with the packages they analyze (the census-true
    // mix leaves them mostly idle and the floors toothless).
    let repo = Corpus::generate(CorpusConfig {
        packages: 300,
        leak_rate: 0.35,
        seed: 0x57A71C,
        mix: KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    println!(
        "gate corpus: {} packages, {} ground-truth leak sites\n",
        repo.packages.len(),
        repo.truth.len()
    );

    let tools: Vec<Box<dyn Analyzer>> = vec![
        Box::new(PathCheck::new()),
        Box::new(AbsInt::new()),
        Box::new(ModelCheck::new()),
        Box::new(RangeClose::new()),
        Box::new(Interproc::new()),
    ];
    let rows: Vec<ToolEval> = tools
        .iter()
        .map(|t| evaluate_static(&repo, t.as_ref()))
        .collect();
    println!("{}", render_table3(&rows));

    let measured: BTreeMap<String, Floor> = rows
        .iter()
        .map(|r| {
            (
                r.tool.clone(),
                Floor {
                    precision: r.precision(),
                    recall: r.recall(),
                    reports: r.reports,
                },
            )
        })
        .collect();

    if write_floor {
        bench::save(
            "static_gate_floor.json",
            &serde_json::to_string_pretty(&measured).expect("floor serializes"),
        );
        return ExitCode::SUCCESS;
    }

    let floor_path = bench::results_dir().join("static_gate_floor.json");
    let floors: BTreeMap<String, Floor> = match std::fs::read_to_string(&floor_path) {
        Ok(text) => match serde_json::from_str(&text) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {} is not a floor file: {e}", floor_path.display());
                return ExitCode::from(1);
            }
        },
        Err(e) => {
            eprintln!(
                "error: cannot read {} ({e}); record one with --write-floor",
                floor_path.display()
            );
            return ExitCode::from(1);
        }
    };

    let mut failed = false;
    for (tool, floor) in &floors {
        let Some(m) = measured.get(tool) else {
            eprintln!("FAIL {tool}: floor recorded but the tool no longer runs");
            return ExitCode::from(2);
        };
        let p_ok = m.precision >= floor.precision - EPS;
        let r_ok = m.recall >= floor.recall - EPS;
        println!(
            "{} {tool}: precision {:.4} (floor {:.4}), recall {:.4} (floor {:.4})",
            if p_ok && r_ok { "PASS" } else { "FAIL" },
            m.precision,
            floor.precision,
            m.recall,
            floor.recall
        );
        failed |= !(p_ok && r_ok);
    }
    for tool in measured.keys() {
        if !floors.contains_key(tool) {
            println!("NOTE {tool}: no recorded floor (new tool?); rerun --write-floor to pin it");
        }
    }
    if failed {
        eprintln!("\nstatic gate FAILED: a pass regressed below its recorded floor");
        ExitCode::from(1)
    } else {
        println!("\nstatic gate passed");
        ExitCode::SUCCESS
    }
}
