//! Table II reproduction: prominence of Go concurrency features in the
//! generated monorepo, measured by walking every file's AST.

use corpus::{census, Corpus, CorpusConfig};

fn main() {
    let repo = Corpus::generate(CorpusConfig::default());
    let c = census(&repo);
    let rendered = c.render_table2();
    println!("{rendered}");
    println!("shape checks vs the paper's Table II:");
    println!(
        "  unbuffered dominates buffered allocs: {} vs {} (paper: 3,006 vs 1,623)",
        c.source.chan_unbuffered,
        c.source.chan_size_one + c.source.chan_const_gt1
    );
    println!(
        "  select cases P50/P90/mode: {}/{}/{} (paper: 2/3/2)",
        c.source.select_case_percentile(0.5),
        c.source.select_case_percentile(0.9),
        c.source.select_case_mode()
    );
    println!(
        "  wrapper spawns exist alongside go-keyword spawns: {} vs {} (paper: 5,342 vs 11,136)",
        c.source.wrapper_spawns, c.source.go_keyword_spawns
    );
    bench::save("table2.txt", &rendered);
}
