//! Ablation: wrapper-spawn awareness in static analysis.
//!
//! The paper reports that goroutines spawned through wrapper APIs
//! "severely impede the detection of partial deadlocks unless such API
//! calls are properly recognized", and that maintaining wrapper lists is
//! cumbersome. This experiment measures pathcheck's recall with and
//! without wrapper recognition on a corpus where a fraction of
//! premature-return leaks spawn through `asyncutil.Go`.

use corpus::{Corpus, CorpusConfig};
use leakcore::evaluate::evaluate_static;
use staticlint::pathcheck::{PathCheck, PathCheckConfig};

fn main() {
    let repo = Corpus::generate(CorpusConfig {
        packages: 500,
        leak_rate: 0.4,
        seed: 0x3A77,
        mix: corpus::KindMix::concurrent_heavy(),
        ..CorpusConfig::default()
    });
    let wrapper_truth = repo.truth.iter().filter(|t| t.via_wrapper).count();
    println!(
        "corpus: {} leak sites, {wrapper_truth} spawned via wrappers\n",
        repo.truth.len()
    );

    let blind = evaluate_static(&repo, &PathCheck::new());
    let aware = evaluate_static(
        &repo,
        &PathCheck {
            config: PathCheckConfig {
                follow_wrappers: true,
            },
        },
    );

    let mut out = String::new();
    out.push_str(&format!(
        "pathcheck (wrapper-blind): reports={} precision={:.1}% recall={:.1}%\n",
        blind.reports,
        100.0 * blind.precision(),
        100.0 * blind.recall()
    ));
    out.push_str(&format!(
        "pathcheck (wrapper-aware): reports={} precision={:.1}% recall={:.1}%\n",
        aware.reports,
        100.0 * aware.precision(),
        100.0 * aware.recall()
    ));
    println!("{out}");
    println!(
        "expected: awareness recovers the wrapper-spawned leaks (higher recall),\n\
         demonstrating why the dynamic tools — which see through wrappers for free —\n\
         need no such maintenance."
    );
    assert!(aware.truth_found >= blind.truth_found);
    bench::save("ablation_wrappers.txt", &out);
}
