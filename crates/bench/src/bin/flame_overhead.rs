//! Bench: what flamegraph aggregation costs on the cycle path.
//!
//! `/flame` is rendered on demand, but the worst case an operator can
//! induce is a dashboard polling it every cycle — so this experiment
//! prices exactly that: two identical daemons scrape the same loopback
//! fleet, interleaved, and one of them additionally builds the full
//! flame surface each cycle (trie from the accumulator snapshot,
//! folded-stack text, and the self-contained SVG/HTML document with
//! verdict coloring). The delta is the per-cycle cost of the flame
//! tier at its busiest. Emits `BENCH_flame.json` and enforces the <5%
//! median cycle-latency budget (with a small absolute floor so
//! loopback noise on a ~millisecond cycle cannot fail the gate).

use std::sync::{Arc, Mutex};
use std::time::Instant;

use collector::{build_flame, flame_verdicts, live_weight, Daemon, DaemonConfig, DemoFleet};
use obs::FlameOptions;
use serde::Serialize;

const INSTANCES: usize = 24;
const WARMUP_CYCLES: usize = 3;
const MEASURED_CYCLES: usize = 31;

/// Relative overhead budget (CI gate).
const MAX_OVERHEAD_PCT: f64 = 5.0;
/// Absolute-delta floor: below this many milliseconds per cycle the
/// relative number is loopback noise, not a regression.
const NOISE_FLOOR_MS: f64 = 3.0;

#[derive(Serialize)]
struct BenchResult {
    instances: usize,
    warmup_cycles: usize,
    measured_cycles: usize,
    flame_off_median_ms: f64,
    flame_on_median_ms: f64,
    delta_ms: f64,
    overhead_pct: f64,
    sites: usize,
    stacks: usize,
    blocked_goroutines: u64,
    folded_bytes: usize,
    html_bytes: usize,
}

fn build_daemon(demo: &DemoFleet, addr: std::net::SocketAddr) -> Daemon {
    let config = DaemonConfig {
        scrape: collector::ScrapeConfig {
            // Pooled connections for both sides: less dial jitter, so
            // the flame cost is what the comparison sees.
            keepalive: true,
            ..collector::ScrapeConfig::default()
        },
        ..DaemonConfig::default()
    };
    let lp = leakprof::LeakProf::new(leakprof::Config {
        threshold: 1,
        ast_filter: false,
        top_n: 10,
    });
    Daemon::new(config, lp, demo.targets(addr)).expect("in-memory daemon")
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let demo = DemoFleet::build(INSTANCES, 2, 13);
    let server = demo.hub.serve("127.0.0.1:0", 8).expect("loopback bind");
    // The daemons only share the fleet server; each owns its scraper,
    // connection pool, and accumulator.
    let on = Arc::new(Mutex::new(build_daemon(&demo, server.addr())));
    let off = Arc::new(Mutex::new(build_daemon(&demo, server.addr())));

    let mut folded_bytes = 0usize;
    let mut html_bytes = 0usize;
    let mut stacks = 0usize;
    let mut timed = |daemon: &Arc<Mutex<Daemon>>, flame: bool| {
        let t = Instant::now();
        let mut d = daemon.lock().expect("daemon poisoned");
        let report = d.run_cycle();
        assert_eq!(report.stats.succeeded, INSTANCES, "fleet must stay up");
        if flame {
            // The full on-demand surface, every cycle: trie + folded
            // text + the HTML document with verdict coloring.
            let snap = d.accumulator().snapshot();
            let g = build_flame(&snap, live_weight);
            let folded = g.to_folded();
            let html = g.render_html(&FlameOptions {
                title: "bench".into(),
                verdicts: flame_verdicts(&snap, d.fleet_health()),
                ..FlameOptions::default()
            });
            folded_bytes = folded.len();
            html_bytes = html.len();
            stacks = folded.lines().count();
            assert!(g.total() > 0, "demo fleet has blocked stacks");
        }
        t.elapsed().as_secs_f64() * 1e3
    };

    for _ in 0..WARMUP_CYCLES {
        timed(&on, true);
        timed(&off, false);
    }
    let mut on_ms = Vec::new();
    let mut off_ms = Vec::new();
    // Interleave so drift (thermal, scheduler) cancels out.
    for _ in 0..MEASURED_CYCLES {
        on_ms.push(timed(&on, true));
        off_ms.push(timed(&off, false));
    }

    let flame_on_median_ms = median_ms(&mut on_ms);
    let flame_off_median_ms = median_ms(&mut off_ms);
    let delta_ms = flame_on_median_ms - flame_off_median_ms;
    let overhead_pct = delta_ms / flame_off_median_ms.max(1e-9) * 100.0;
    let (sites, blocked) = {
        let d = on.lock().expect("daemon poisoned");
        let snap = d.accumulator().snapshot();
        let blocked: u64 = snap.sites.iter().map(live_weight).sum();
        (snap.sites.len(), blocked)
    };

    println!(
        "flame off: {flame_off_median_ms:.3} ms/cycle (median of {MEASURED_CYCLES})\n\
         flame on:  {flame_on_median_ms:.3} ms/cycle ({sites} sites, {stacks} stacks, \
         {folded_bytes} B folded, {html_bytes} B html)\n\
         delta:     {delta_ms:+.3} ms ({overhead_pct:+.2}%)"
    );

    assert!(
        overhead_pct < MAX_OVERHEAD_PCT || delta_ms < NOISE_FLOOR_MS,
        "flame overhead {overhead_pct:.2}% ({delta_ms:.3} ms/cycle) exceeds the \
         {MAX_OVERHEAD_PCT}% budget"
    );

    let result = BenchResult {
        instances: INSTANCES,
        warmup_cycles: WARMUP_CYCLES,
        measured_cycles: MEASURED_CYCLES,
        flame_off_median_ms,
        flame_on_median_ms,
        delta_ms,
        overhead_pct,
        sites,
        stacks,
        blocked_goroutines: blocked,
        folded_bytes,
        html_bytes,
    };
    bench::save(
        "BENCH_flame.json",
        &serde_json::to_string_pretty(&result).expect("result serializes"),
    );
}
