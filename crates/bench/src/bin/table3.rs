//! Table III reproduction: measured precision, recall, and offline cost
//! of the three static baselines vs the two dynamic tools, on a corpus
//! with ground-truth leak injections.

use corpus::{Corpus, CorpusConfig};
use leakcore::evaluate::{evaluate_goleak, evaluate_leakprof, evaluate_static, render_table3};
use staticlint::{AbsInt, Interproc, ModelCheck, PathCheck};

fn main() {
    let repo = Corpus::generate(CorpusConfig {
        packages: 600,
        leak_rate: 0.35,
        seed: 0x7AB1E3,
        ..CorpusConfig::default()
    });
    println!(
        "corpus: {} packages, {} ground-truth leak sites\n",
        repo.packages.len(),
        repo.truth.len()
    );

    let mut rows = vec![
        evaluate_static(&repo, &PathCheck::new()),
        evaluate_static(&repo, &AbsInt::new()),
        evaluate_static(&repo, &ModelCheck::new()),
        evaluate_static(&repo, &Interproc::new()),
        evaluate_goleak(&repo),
    ];
    let (lp_row, lp_report) = evaluate_leakprof(0xF1EE7, 2);
    rows.push(lp_row);

    let rendered = render_table3(&rows);
    println!("{rendered}");
    println!("paper Table III: GCatch 51% / Goat 47% / Gomela 34% precision; ");
    println!("GOLEAK 100% (857 reports) and LEAKPROF 72.7% (33 reports); only the");
    println!("dynamic tools are precise enough to deploy. Expected shape here:");
    println!("dynamic precision >> static precision, static recall partial.\n");
    println!(
        "LeakProf report for the fleet slice:\n{}",
        lp_report.render()
    );

    bench::save("table3.txt", &rendered);
    bench::save(
        "table3.json",
        &serde_json::to_string_pretty(&rows).expect("rows serialize"),
    );
}
