//! Minimal in-tree `serde_json` facade.
//!
//! The vendored [`serde`] crate already targets a JSON-shaped [`Value`]
//! data model and owns the parser/printer; this crate provides the
//! familiar `serde_json` entry points on top of it so downstream code is
//! written exactly as it would be against the real crate.

pub use serde::{Error, Map, Value};

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Never fails for workspace types; the `Result` mirrors serde_json's API.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for workspace types; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string_pretty())
}

/// Serializes a value into the [`Value`] data model.
///
/// # Errors
///
/// Never fails for workspace types; the `Result` mirrors serde_json's API.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v: Value = s.parse()?;
    T::from_value(&v)
}

/// Reconstructs a typed value from the [`Value`] data model.
///
/// # Errors
///
/// Returns an [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec_of_tuples() {
        let data: Vec<(String, u64)> = vec![("a".into(), 1), ("b".into(), u64::MAX)];
        let js = to_string(&data).unwrap();
        let back: Vec<(String, u64)> = from_str(&js).unwrap();
        assert_eq!(data, back);
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!(from_str::<Vec<u32>>("not json").is_err());
        assert!(from_str::<Vec<u32>>("{\"a\":1}").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Value = "{\"a\":[1,2]}".parse().unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"));
    }
}
