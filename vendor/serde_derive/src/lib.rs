//! `#[derive(Serialize, Deserialize)]` for the in-tree minimal serde.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote`, which
//! are unavailable in this registry-less build environment) and emits
//! impls of `serde::Serialize` / `serde::Deserialize` over the JSON-shaped
//! `serde::Value` data model.
//!
//! Supported shapes — everything the workspace derives on:
//! * structs with named fields (serialized as objects keyed by field name)
//! * newtype structs `struct X(T)` (transparent, like serde)
//! * tuple structs of arity ≥ 2 (arrays)
//! * unit structs (null)
//! * enums with any mix of unit, newtype, tuple, and struct variants,
//!   in serde's externally-tagged representation
//!
//! Not supported (and unused in this workspace): generic type parameters
//! and `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// `struct X;`
    UnitStruct,
    /// `struct X(T)` — one unnamed field.
    Newtype,
    /// `struct X(T1, .., Tn)`, n ≥ 2.
    TupleStruct(usize),
    /// `struct X { f1: T1, .. }`
    NamedStruct(Vec<String>),
    /// `enum X { .. }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_serialize(&name, &shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    gen_deserialize(&name, &shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parsing

fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) on generic type `{name}` is not supported by the vendored serde_derive");
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            None => (name, Shape::UnitStruct),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => (name, Shape::UnitStruct),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::NamedStruct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n == 1 {
                    (name, Shape::Newtype)
                } else {
                    (name, Shape::TupleStruct(n))
                }
            }
            other => panic!("unexpected token after struct name: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            other => panic!("expected enum body, got {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, got `{other}`"),
    }
}

/// Advances `i` past `#[...]` attributes, doc comments, and visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream at top-level commas. "Top level" accounts for
/// angle-bracket nesting (`BTreeMap<usize, u64>`); parens/brackets/braces
/// arrive as single `Group` tokens so their commas are already hidden.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(tt);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, got {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|p| !p.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            let name = match &part[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, got {other}"),
            };
            i += 1;
            let kind = match part.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Struct(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    if n == 1 {
                        VariantKind::Newtype
                    } else {
                        VariantKind::Tuple(n)
                    }
                }
                other => panic!("unexpected token in variant `{name}`: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// --------------------------------------------------------------- generation

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::NamedStruct(fields) => {
            let mut s = String::from("{ let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\", ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m) }");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(x0) => ::serde::variant(\"{vn}\", ::serde::Serialize::to_value(x0)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::variant(\"{vn}\", ::serde::Value::Array(vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("{ let mut m = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "m.insert(\"{f}\", ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        inner.push_str("::serde::Value::Object(m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::variant(\"{vn}\", {inner}),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn named_struct_ctor(path: &str, fields: &[String], map_var: &str) -> String {
    let mut s = format!("{path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value({map_var}.get(\"{f}\")\
             .unwrap_or(&::serde::Value::Null)).map_err(|e| e.context(\"{f}\"))?,\n"
        ));
    }
    s.push('}');
    s
}

fn tuple_ctor(path: &str, n: usize, arr_var: &str) -> String {
    let items: Vec<String> = (0..n)
        .map(|i| format!("::serde::Deserialize::from_value(&{arr_var}[{i}])?"))
        .collect();
    format!("{path}({})", items.join(", "))
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::Newtype => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => format!(
            "match v {{\n\
             ::serde::Value::Array(xs) if xs.len() == {n} => Ok({ctor}),\n\
             _ => Err(::serde::Error::custom(\"expected array of length {n} for {name}\")),\n\
             }}",
            ctor = tuple_ctor(name, *n, "xs")
        ),
        Shape::NamedStruct(fields) => format!(
            "match v {{\n\
             ::serde::Value::Object(m) => Ok({ctor}),\n\
             _ => Err(::serde::Error::custom(\"expected object for {name}\")),\n\
             }}",
            ctor = named_struct_ctor(name, fields, "m")
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Serde also accepts {"Variant": null} for unit
                        // variants; we only emit the string form.
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)\
                         .map_err(|e| e.context(\"{vn}\"))?)),\n"
                    )),
                    VariantKind::Tuple(n) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => match __payload {{\n\
                         ::serde::Value::Array(xs) if xs.len() == {n} => Ok({ctor}),\n\
                         _ => Err(::serde::Error::custom(\"expected array of length {n} for variant {vn}\")),\n\
                         }},\n",
                        ctor = tuple_ctor(&format!("{name}::{vn}"), *n, "xs")
                    )),
                    VariantKind::Struct(fields) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => match __payload {{\n\
                         ::serde::Value::Object(m2) => Ok({ctor}),\n\
                         _ => Err(::serde::Error::custom(\"expected object for variant {vn}\")),\n\
                         }},\n",
                        ctor = named_struct_ctor(&format!("{name}::{vn}"), fields, "m2")
                    )),
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(::serde::Error::custom(format!(\"unknown unit variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (__tag, __payload) = m.iter().next().expect(\"len checked\");\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::Error::custom(\"expected string or single-key object for {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
