//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// A size specification: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `BTreeSet`s of values from an element strategy.
///
/// The set may come out smaller than the drawn size when the element
/// strategy produces duplicates, matching proptest's behavior.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Bounded retries: duplicates shrink the set rather than loop.
        for _ in 0..target.saturating_mul(4) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_range() {
        let strat = vec(0u64..100, 1..8);
        let mut rng = TestRng::for_case("c", 1, 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn vec_exact_size() {
        let strat = vec(0u64..100, 3);
        let mut rng = TestRng::for_case("c", 2, 0);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng).len(), 3);
        }
    }

    #[test]
    fn btree_set_bounded() {
        let strat = btree_set(0u64..4, 2..6);
        let mut rng = TestRng::for_case("c", 3, 0);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            assert!(s.len() < 6);
            assert!(s.iter().all(|&x| x < 4));
        }
    }
}
