//! Strategy combinators: how test inputs are generated.

use std::ops::Range;
use std::rc::Rc;

use crate::TestRng;

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `f` receives the strategy for the
    /// previous level and returns the strategy for the next, up to
    /// `levels` deep. (`_size`/`_branch` are accepted for proptest API
    /// compatibility; depth alone bounds recursion here.)
    fn prop_recursive<F, S>(
        self,
        levels: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..levels {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Type-erases the strategy for heterogeneous composition.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        crate::box_strategy(self)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    pub(crate) inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ------------------------------------------------------------------ ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// ------------------------------------------------------------------ tuples

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// --------------------------------------------------------------- arbitrary

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy covering the whole domain.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives (used via [`Arbitrary`]).
#[derive(Debug, Clone, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

// -------------------------------------------------------- string patterns

/// String literals act as regex-like generation patterns, supporting the
/// subset the workspace uses: literal characters, `[a-z0-9]` classes with
/// ranges, and `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a literal char.
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<u64>().expect("quantifier lower bound"),
                        n.trim().parse::<u64>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<u64>().expect("exact quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = lo + rng.below(hi - lo + 1);
        for _ in 0..count {
            let idx = rng.below(alphabet.len() as u64) as usize;
            out.push(alphabet[idx]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("t", 1, 0);
        for _ in 0..500 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn pattern_class_with_quantifier() {
        let mut rng = TestRng::for_case("t", 2, 0);
        for _ in 0..200 {
            let s = "[a-c0-1]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '0' | '1')), "{s}");
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = TestRng::for_case("t", 3, 0);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                crate::prop_oneof![
                    (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                    (0u8..10).prop_map(Tree::Leaf),
                ]
            });
        let mut rng = TestRng::for_case("t", 4, 0);
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }
}
