//! Minimal in-tree `proptest` replacement.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use: range/bool/string-pattern strategies, `prop_oneof!`,
//! `prop_map`, `prop_recursive`, `proptest::collection::{vec, btree_set}`,
//! `Just`, and the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from the real crate, chosen for a registry-less build:
//!
//! * **Deterministic**: each test case's RNG is seeded from the test's
//!   source position and case index, so failures always reproduce.
//! * **No shrinking**: a failing case reports its generated inputs
//!   (`Debug`) and the assertion message instead of minimizing.

use std::rc::Rc;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// The per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case failed (carried by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic SplitMix64 RNG driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identity and case index so reruns reproduce.
    pub fn for_case(file: &str, line: u32, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h = (h ^ line as u64).wrapping_mul(0x100_0000_01b3);
        h = (h ^ case as u64).wrapping_mul(0x100_0000_01b3);
        TestRng { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Internal plumbing re-exported for the macros.
pub mod __rt {
    pub use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Runs one test body closure, also trapping panics so the harness
    /// can report the generated inputs before propagating.
    pub fn run_case<F: FnOnce() -> Result<(), TestCaseError> + std::panic::UnwindSafe>(
        f: F,
    ) -> Result<(), String> {
        match std::panic::catch_unwind(f) {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(e.0),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(|s| s.as_str())
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("panic");
                Err(format!("panicked: {msg}"))
            }
        }
    }
}

/// The strategy-driven test harness macro.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by any
/// number of test functions whose arguments use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng =
                        $crate::TestRng::for_case(file!(), line!(), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result = $crate::__rt::run_case(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                Ok(())
                            }
                        )
                    );
                    if let Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}:\n  inputs: {}\n  {}",
                            stringify!($name), __case, config.cases, __inputs, e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::TestCaseError(format!($($fmt)*))
            );
        }
    };
}

/// Fails the current case unless both operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), left, right
                );
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    let msg = format!($($fmt)*);
                    return ::std::result::Result::Err($crate::TestCaseError(format!(
                        "{msg}\n  left: {left:?}\n right: {right:?}"
                    )));
                }
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The conventional glob import: strategies, config, and macros.
pub mod prelude {
    pub use crate::collection;
    /// Alias matching proptest's prelude.
    pub use crate::strategy::Strategy as _;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Shared boxing helper used by [`Strategy::boxed`].
pub(crate) fn box_strategy<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    BoxedStrategy {
        inner: Rc::new(move |rng: &mut TestRng| s.generate(rng)),
    }
}
