//! Minimal in-tree `serde` replacement.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external dependencies are vendored as small, honest
//! re-implementations (see DESIGN.md "External deps"). This crate provides
//! the subset of serde the workspace uses: `Serialize`/`Deserialize`
//! traits over a JSON-shaped [`Value`] data model, derive macros (via the
//! sibling `serde_derive` crate), and impls for the standard types that
//! appear in workspace data structures.
//!
//! The serialized representation matches serde's externally-tagged JSON
//! conventions: structs are objects keyed by field name, newtype structs
//! unwrap to their inner value, unit enum variants are strings, and
//! data-carrying variants are single-key objects.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value: the data model every `Serialize` impl targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (non-negative integers use [`Value::U64`]).
    I64(i64),
    /// A non-negative integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for deterministic output.
    Object(Map),
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts a key, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True when the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates entries mutably in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&String, &mut Value)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }
}

impl Value {
    /// The integral value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The integral value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// The numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// Wraps the error with the field/position it occurred at.
    pub fn context(self, at: &str) -> Error {
        Error(format!("{at}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types serializable to a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the JSON data model.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the JSON data model.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Helper used by derived code: wraps a variant payload in the
/// externally-tagged single-key object form `{"Variant": payload}`.
pub fn variant(name: &str, payload: Value) -> Value {
    let mut m = Map::new();
    m.insert(name, payload);
    Value::Object(m)
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {expected}, got {}",
        got.kind()
    )))
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => type_err("bool", v),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::custom(
                    format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::custom(
                    format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------- strings

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => type_err("string", v),
        }
    }
}

/// Mirrors serde's zero-copy `&'de str` support for the `'static` case so
/// structs holding `&'static str` fields still derive `Deserialize`. Our
/// data model owns its strings, so this leaks the string to obtain the
/// `'static` lifetime — acceptable because the workspace only serializes
/// such types; the impl exists for derive compatibility.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => type_err("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::sync::Arc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(std::sync::Arc::from(s.as_str())),
            _ => type_err("string", v),
        }
    }
}

impl Serialize for std::rc::Rc<str> {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::rc::Rc<str> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(std::rc::Rc::from(s.as_str())),
            _ => type_err("string", v),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::rc::Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::rc::Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(T::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => type_err("array", v),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => type_err("null", v),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+ ; $n:expr))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(xs) if xs.len() == $n => {
                        Ok(($($t::from_value(&xs[$i])?,)+))
                    }
                    _ => type_err(concat!("array of length ", $n), v),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0; 1)
    (A.0, B.1; 2)
    (A.0, B.1, C.2; 3)
    (A.0, B.1, C.2, D.3; 4)
    (A.0, B.1, C.2, D.3, E.4; 5)
}

/// Renders a map key through the data model: strings pass through,
/// integers and unit enum variants (which serialize as strings) become
/// their rendered form — matching serde_json, which accepts any key whose
/// serialization is string-like and errors otherwise.
fn key_to_string(k: &impl Serialize) -> String {
    match k.to_value() {
        Value::Str(s) => s,
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must serialize to a string or integer, got {other}"),
    }
}

/// Parses a map key back: first as the string form (covers `String` and
/// unit enum variants), then as an integer for numeric key types.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    match K::from_value(&Value::Str(s.to_string())) {
        Ok(k) => Ok(k),
        Err(e) => {
            if let Ok(n) = s.parse::<u64>() {
                if let Ok(k) = K::from_value(&Value::U64(n)) {
                    return Ok(k);
                }
            }
            if let Ok(n) = s.parse::<i64>() {
                if let Ok(k) = K::from_value(&Value::I64(n)) {
                    return Ok(k);
                }
            }
            Err(e.context("map key"))
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(k), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => type_err("object", v),
        }
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_value(&self) -> Value {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => type_err("object", v),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------- JSON rendering

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips and
        // always includes a decimal point or exponent.
        format!("{x:?}")
    } else {
        // JSON has no NaN/Inf; serde_json errors here, we emit null.
        "null".to_string()
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&fmt_f64(*x)),
        Value::Str(s) => escape_into(s, out),
        Value::Array(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(x, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(x, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(xs) if !xs.is_empty() => {
            out.push_str("[\n");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(x, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl Value {
    /// Renders as pretty-printed JSON with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

impl fmt::Display for Value {
    /// Renders as compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

// ------------------------------------------------------------ JSON parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > 256 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut xs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                loop {
                    xs.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(xs));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut m = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let val = self.parse_value(depth + 1)?;
                    m.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let mut cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pair.
                            if (0xD800..0xDC00).contains(&cp)
                                && self.bytes.get(self.pos + 1..self.pos + 3) == Some(b"\\u")
                            {
                                let lo_hex = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .ok_or_else(|| self.err("truncated surrogate"))?;
                                let lo_hex = std::str::from_utf8(lo_hex)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let b = self.bytes[start];
                    let len = if b < 0x80 {
                        1
                    } else if b < 0xE0 {
                        2
                    } else if b < 0xF0 {
                        3
                    } else {
                        4
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| self.err("bad utf-8"))?);
                    self.pos += len;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

impl std::str::FromStr for Value {
    type Err = Error;

    fn from_str(s: &str) -> Result<Value, Error> {
        let mut p = Parser::new(s);
        let v = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let src = r#"{"a":[1,-2,3.5,"x\"y",null,true],"b":{"c":false}}"#;
        let v: Value = src.parse().unwrap();
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn big_u64_roundtrips_exactly() {
        let n = u64::MAX;
        let v: Value = n.to_string().parse().unwrap();
        assert_eq!(v, Value::U64(n));
        assert_eq!(u64::from_value(&v).unwrap(), n);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(5u32).to_value(), Value::U64(5));
    }

    #[test]
    fn map_insertion_order_is_preserved() {
        let mut m = Map::new();
        m.insert("z", Value::Null);
        m.insert("a", Value::Bool(true));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn escapes_parse_back() {
        let v = Value::Str("line\nwith\t\"quotes\" and \\ back".into());
        let text = v.to_string();
        let back: Value = text.parse().unwrap();
        assert_eq!(v, back);
    }
}
