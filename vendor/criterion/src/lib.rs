//! Minimal in-tree `criterion` replacement.
//!
//! Implements the slice of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::throughput`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each `b.iter(..)` does one warm-up call, then times
//! `sample_size` calls individually and reports the median (plus
//! throughput when configured). When cargo runs benches in test mode
//! (`cargo test` passes `--test` to `harness = false` targets), every
//! benchmark body executes exactly once so the suite stays fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every target function.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, self.sample_size, self.test_mode, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration so reports include a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark under this group's prefix.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name);
        run_one(
            &id,
            self.criterion.sample_size,
            self.criterion.test_mode,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a parameterized benchmark under this group's prefix.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.test_mode,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (accepted for criterion API compatibility).
    pub fn finish(self) {}
}

/// A benchmark name paired with a parameter value.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

/// How much work one iteration performs, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collects timing samples for one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times the closure `sample_size` times (once in test mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        black_box(f()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(id: &str, sample_size: usize, test_mode: bool, throughput: Option<Throughput>, f: F)
where
    F: FnOnce(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("test-mode ok: {id}");
        return;
    }
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput
        .map(|t| describe_rate(t, median))
        .unwrap_or_default();
    println!("{id:<48} median {}{rate}", describe_duration(median));
}

fn describe_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn describe_rate(t: Throughput, median: Duration) -> String {
    let secs = median.as_secs_f64().max(1e-12);
    let (count, unit) = match t {
        Throughput::Elements(n) => (n, "elem"),
        Throughput::Bytes(n) => (n, "B"),
    };
    let per_sec = count as f64 / secs;
    if per_sec >= 1_000_000.0 {
        format!("  ({:.2} M{unit}/s)", per_sec / 1_000_000.0)
    } else if per_sec >= 1_000.0 {
        format!("  ({:.2} K{unit}/s)", per_sec / 1_000.0)
    } else {
        format!("  ({per_sec:.2} {unit}/s)")
    }
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion {
            sample_size: 5,
            test_mode: false,
        };
        let mut calls = 0;
        c.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        // 1 warm-up + 5 samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 100,
            test_mode: true,
        };
        let mut calls = 0;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("param", 3), &7u32, |b, &x| {
            b.iter(|| calls += x);
        });
        group.finish();
        assert_eq!(calls, 7);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(describe_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(describe_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(
            describe_rate(Throughput::Elements(2_000_000), Duration::from_secs(1))
                .contains("2.00 Melem/s")
        );
    }
}
