/root/repo/target/debug/examples/ci_gate-790ba671ae4ca5d8.d: examples/ci_gate.rs

/root/repo/target/debug/examples/ci_gate-790ba671ae4ca5d8: examples/ci_gate.rs

examples/ci_gate.rs:
