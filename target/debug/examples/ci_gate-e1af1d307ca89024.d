/root/repo/target/debug/examples/ci_gate-e1af1d307ca89024.d: examples/ci_gate.rs Cargo.toml

/root/repo/target/debug/examples/libci_gate-e1af1d307ca89024.rmeta: examples/ci_gate.rs Cargo.toml

examples/ci_gate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
