/root/repo/target/debug/examples/leak_patterns-678ddd10dffeb0dd.d: examples/leak_patterns.rs

/root/repo/target/debug/examples/leak_patterns-678ddd10dffeb0dd: examples/leak_patterns.rs

examples/leak_patterns.rs:
