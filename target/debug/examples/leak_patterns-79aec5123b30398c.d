/root/repo/target/debug/examples/leak_patterns-79aec5123b30398c.d: examples/leak_patterns.rs Cargo.toml

/root/repo/target/debug/examples/libleak_patterns-79aec5123b30398c.rmeta: examples/leak_patterns.rs Cargo.toml

examples/leak_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
