/root/repo/target/debug/examples/production_monitor-5ca73974719ce136.d: examples/production_monitor.rs

/root/repo/target/debug/examples/production_monitor-5ca73974719ce136: examples/production_monitor.rs

examples/production_monitor.rs:
