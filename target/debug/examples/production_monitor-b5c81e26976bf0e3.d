/root/repo/target/debug/examples/production_monitor-b5c81e26976bf0e3.d: examples/production_monitor.rs

/root/repo/target/debug/examples/production_monitor-b5c81e26976bf0e3: examples/production_monitor.rs

examples/production_monitor.rs:
