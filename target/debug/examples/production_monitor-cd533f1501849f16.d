/root/repo/target/debug/examples/production_monitor-cd533f1501849f16.d: examples/production_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libproduction_monitor-cd533f1501849f16.rmeta: examples/production_monitor.rs Cargo.toml

examples/production_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
