/root/repo/target/debug/examples/quickstart-b2ae5a6a94e1c06c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b2ae5a6a94e1c06c: examples/quickstart.rs

examples/quickstart.rs:
