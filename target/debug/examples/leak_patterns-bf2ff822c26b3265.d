/root/repo/target/debug/examples/leak_patterns-bf2ff822c26b3265.d: examples/leak_patterns.rs

/root/repo/target/debug/examples/leak_patterns-bf2ff822c26b3265: examples/leak_patterns.rs

examples/leak_patterns.rs:
