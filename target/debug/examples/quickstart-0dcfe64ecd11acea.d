/root/repo/target/debug/examples/quickstart-0dcfe64ecd11acea.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0dcfe64ecd11acea: examples/quickstart.rs

examples/quickstart.rs:
