/root/repo/target/debug/examples/ci_gate-781a085bf06b06b8.d: examples/ci_gate.rs

/root/repo/target/debug/examples/ci_gate-781a085bf06b06b8: examples/ci_gate.rs

examples/ci_gate.rs:
