/root/repo/target/debug/deps/ablation_threshold-81b6225289415459.d: crates/bench/src/bin/ablation_threshold.rs

/root/repo/target/debug/deps/ablation_threshold-81b6225289415459: crates/bench/src/bin/ablation_threshold.rs

crates/bench/src/bin/ablation_threshold.rs:
