/root/repo/target/debug/deps/end_to_end-2a4c98510c3217a3.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-2a4c98510c3217a3: tests/end_to_end.rs

tests/end_to_end.rs:
