/root/repo/target/debug/deps/bench-071eb9315bf0641e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-071eb9315bf0641e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-071eb9315bf0641e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
