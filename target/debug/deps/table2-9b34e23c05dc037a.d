/root/repo/target/debug/deps/table2-9b34e23c05dc037a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-9b34e23c05dc037a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
