/root/repo/target/debug/deps/ablation_consensus-cf9f7c0f7b9edf68.d: crates/bench/src/bin/ablation_consensus.rs

/root/repo/target/debug/deps/ablation_consensus-cf9f7c0f7b9edf68: crates/bench/src/bin/ablation_consensus.rs

crates/bench/src/bin/ablation_consensus.rs:
