/root/repo/target/debug/deps/fig4-4f6e26addb38c72b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-4f6e26addb38c72b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
