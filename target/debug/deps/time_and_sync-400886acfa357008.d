/root/repo/target/debug/deps/time_and_sync-400886acfa357008.d: crates/gosim/tests/time_and_sync.rs Cargo.toml

/root/repo/target/debug/deps/libtime_and_sync-400886acfa357008.rmeta: crates/gosim/tests/time_and_sync.rs Cargo.toml

crates/gosim/tests/time_and_sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
