/root/repo/target/debug/deps/staticlint-60a32d1161be3bb7.d: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs Cargo.toml

/root/repo/target/debug/deps/libstaticlint-60a32d1161be3bb7.rmeta: crates/staticlint/src/lib.rs crates/staticlint/src/absint.rs crates/staticlint/src/findings.rs crates/staticlint/src/modelcheck.rs crates/staticlint/src/pathcheck.rs crates/staticlint/src/rangeclose.rs crates/staticlint/src/skeleton.rs Cargo.toml

crates/staticlint/src/lib.rs:
crates/staticlint/src/absint.rs:
crates/staticlint/src/findings.rs:
crates/staticlint/src/modelcheck.rs:
crates/staticlint/src/pathcheck.rs:
crates/staticlint/src/rangeclose.rs:
crates/staticlint/src/skeleton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
