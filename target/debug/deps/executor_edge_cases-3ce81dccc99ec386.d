/root/repo/target/debug/deps/executor_edge_cases-3ce81dccc99ec386.d: crates/gosim/tests/executor_edge_cases.rs

/root/repo/target/debug/deps/executor_edge_cases-3ce81dccc99ec386: crates/gosim/tests/executor_edge_cases.rs

crates/gosim/tests/executor_edge_cases.rs:
