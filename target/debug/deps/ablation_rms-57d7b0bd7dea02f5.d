/root/repo/target/debug/deps/ablation_rms-57d7b0bd7dea02f5.d: crates/bench/src/bin/ablation_rms.rs Cargo.toml

/root/repo/target/debug/deps/libablation_rms-57d7b0bd7dea02f5.rmeta: crates/bench/src/bin/ablation_rms.rs Cargo.toml

crates/bench/src/bin/ablation_rms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
