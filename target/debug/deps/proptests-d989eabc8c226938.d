/root/repo/target/debug/deps/proptests-d989eabc8c226938.d: crates/leakprof/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d989eabc8c226938.rmeta: crates/leakprof/tests/proptests.rs Cargo.toml

crates/leakprof/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
