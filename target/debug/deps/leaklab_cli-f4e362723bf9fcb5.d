/root/repo/target/debug/deps/leaklab_cli-f4e362723bf9fcb5.d: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libleaklab_cli-f4e362723bf9fcb5.rlib: crates/cli/src/lib.rs

/root/repo/target/debug/deps/libleaklab_cli-f4e362723bf9fcb5.rmeta: crates/cli/src/lib.rs

crates/cli/src/lib.rs:
